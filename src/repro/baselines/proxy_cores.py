"""Proxy systems standing in for the commercial comparison cores.

Both proxies are ordinary COBRA compositions — a nice demonstration that
the framework expresses predictor design points well beyond the paper's
three (the statistical corrector and perceptron extensions are exercised
here).

- **skylake-proxy**: a large TAGE + statistical corrector + loop predictor
  over a big BTB/bimodal/uBTB stack, with long (128-bit) global history, on
  a 6-wide, 224-entry-ROB core.  Stands in for Intel Skylake.
- **graviton-proxy**: a mid-size 5-table TAGE over BTB/bimodal on a 3-wide,
  128-entry-ROB core.  Stands in for the Cortex-A72-based AWS Graviton.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.components.library import standard_library
from repro.components.tage import default_tables
from repro.core.composer import ComposedPredictor, ComposerConfig, compose
from repro.frontend.config import CoreConfig


def skylake_proxy() -> Tuple[ComposedPredictor, CoreConfig]:
    """A big, aggressive composition on a wide core (Skylake stand-in)."""
    library = standard_library(
        fetch_width=4,
        global_history_bits=128,
        bim_sets=8192,
        btb_sets=1024,
        btb_ways=8,
        ubtb_entries=64,
        loop_entries=512,
        tage_tables=default_tables(
            n_tables=10, n_sets=2048, min_history=4, max_history=128, tag_bits=11
        ),
    )
    predictor = compose(
        "SC3 > LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
        library,
        ComposerConfig(global_history_bits=128),
    )
    core = CoreConfig(
        decode_width=6,
        commit_width=6,
        rob_entries=224,
        fetch_buffer_packets=8,
    )
    return predictor, core


def graviton_proxy() -> Tuple[ComposedPredictor, CoreConfig]:
    """A mid-size composition on a narrower core (Graviton/A72 stand-in)."""
    library = standard_library(
        fetch_width=4,
        global_history_bits=48,
        bim_sets=2048,
        btb_sets=512,
        btb_ways=2,
        tage_tables=default_tables(
            n_tables=5, n_sets=1024, min_history=4, max_history=48, tag_bits=9
        ),
    )
    predictor = compose(
        "TAGE3 > BTB2 > BIM2",
        library,
        ComposerConfig(global_history_bits=48),
    )
    core = CoreConfig(
        decode_width=3,
        commit_width=3,
        rob_entries=128,
        fetch_buffer_packets=4,
    )
    return predictor, core


def proxy_systems() -> List[Tuple[str, Callable, CoreConfig]]:
    """System specs for :func:`repro.eval.runner.run_suite`."""

    def _sky():
        return skylake_proxy()[0]

    def _grav():
        return graviton_proxy()[0]

    return [
        ("skylake-proxy", _sky, skylake_proxy()[1]),
        ("graviton-proxy", _grav, graviton_proxy()[1]),
    ]
