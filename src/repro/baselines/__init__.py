"""Commercial-core proxies for the Table III / Fig. 10 comparison.

The paper compares its COBRA-BOOM variants against Intel Skylake
(c5n.metal) and AWS Graviton (a1.metal) running the same workloads, using
hardware ``perf`` counters.  Those machines (and their undisclosed
predictors) are unavailable; the proxies here are built *with the COBRA
framework itself*, sized and shaped to play the same comparative role: a
large state-of-the-art composition on a wider core ("skylake-proxy") and a
mid-size composition on a moderate core ("graviton-proxy").  See DESIGN.md
for the substitution argument.
"""

from repro.baselines.proxy_cores import (
    graviton_proxy,
    skylake_proxy,
    proxy_systems,
)

__all__ = ["graviton_proxy", "skylake_proxy", "proxy_systems"]
