"""Batch kernels: columnar ports of the custom-walk component lookups.

Hand-written kernels for the components whose lookups are not
closed-form over a declared spec (BTB/MicroBTB allocation+LRU, TAGE's
tagged cascade, the loop predictor).  The simple indexed-counter
families (HBIM, two-level G variants, GTag) get their kernels
*generated* from their :class:`~repro.spec.ComponentSpec` by
:mod:`repro.derive.kernels` instead.  Both implement the same
three-phase protocol the :class:`~repro.kernels.engine.SegmentEngine`
drives:

``lookup(ctx, state)``
    The component's scalar ``lookup`` over every packet in the window at
    once, against the **frozen** tables, consuming and producing
    :class:`~repro.kernels.engine.ColState` grids.  Must stash whatever
    the later phases need in ``ctx.scratch`` (keyed by component name —
    topology names are unique) and must not write any component state.

``mutates(ctx)``
    A boolean column marking packets whose commit-time events cannot be
    replayed from the frozen snapshot.  Every table write in the library
    stores a value derived from *predict-time* metadata (§III-D: updates
    reuse the counters carried in the meta field instead of re-reading the
    table), so a write by itself never invalidates the snapshot — its
    value is already known at predict time and ``commit`` scatters it.
    What does invalidate a packet is a **read-after-dirty-write hazard**:
    its lookup read a table row that an earlier packet's write changed
    (:func:`~repro.kernels.vector_ops.earlier_dirty_same_key`), or an
    event whose effect is not closed-form — an allocation that changes
    which entries later lookups can match, the TAGE use-alt/decay
    counters, a loop exit that retrains confidence.  May over-mark (a
    spurious True only shortens the accepted segment); must never
    under-mark.  Values computed for packets at or beyond the first True
    are garbage by construction and are never used.

``commit(ctx, accepted)``
    Replay the writes of the accepted prefix.  Safe to scatter because the
    hazard cut guarantees every write's value was computed from a row no
    earlier accepted packet had changed; duplicate writes to one row are
    applied in packet order (NumPy fancy assignment is last-wins), which
    only arises when the earlier writes did not change the row.

Update-time reads match the scalar components because the framework hands
updates the *predict-time* history (§III-E, ``bundle.ghist == req_ghist``),
so indices and tags regenerate identically from the context columns.
"""

from __future__ import annotations

import numpy as np

from repro._util import mask
from repro.components.btb import TARGET_BITS
from repro.kernels.vector_ops import (
    counter_is_weak_vec,
    counter_taken_vec,
    earlier_dirty_same_key,
    fold_history_multi,
    forward_saturating,
    hash_pc_multi,
    hash_pc_vec,
    saturating_changes_vec,
    saturating_update_vec,
)


class BTBKernel:
    """Columnar :class:`~repro.components.btb.BTB`."""

    def __init__(self, component):
        self.c = component

    def lookup(self, ctx, state):
        c = self.c
        packet = ctx.aligned // c.fetch_width
        idx = hash_pc_vec(packet, c._index_bits)
        tag = (packet >> c._index_bits) & mask(c.tag_bits)
        way = np.full(ctx.P, -1, dtype=np.int64)
        for w in range(c.n_ways):  # first matching way, like _find_way
            match = (way < 0) & c._valid[idx, w] & (c._tags[idx, w] == tag)
            way[match] = w
        hit = way >= 0
        w_safe = np.maximum(way, 0)
        sv = c._slot_valid[idx, w_safe] & hit[:, None] & ctx.lane_valid
        sj = c._slot_jump[idx, w_safe]
        tg = c._targets[idx, w_safe]
        ctx.scratch[c.name] = (idx, tag, hit, w_safe, sv, sj, tg)
        out = state.copy()
        jmp = sv & sj
        br = sv & ~sj
        out.hit = out.hit | sv
        out.target = np.where(sv, tg, out.target)
        out.is_jump = out.is_jump | jmp
        out.is_branch = np.where(jmp, False, out.is_branch | br)
        out.taken = out.taken | jmp
        return out

    def _dirty(self, ctx):
        c = self.c
        idx, tag, hit, w_safe, sv, sj, tg = ctx.scratch[c.name]
        # The update applies only to a committed taken CFI with a known
        # target; in a pure packet the CFI is always taken.  Rewriting a
        # hit entry with identical slot contents leaves the set untouched;
        # a changed rewrite or an allocation dirties it.
        app = ctx.has_cfi & (ctx.cfi_target >= 0)
        rows = np.arange(ctx.P)
        lane = np.clip(ctx.cfi_lane, 0, ctx.W - 1)
        new_jump = ctx.cfi_is_jal | ctx.cfi_is_jalr
        new_target = ctx.cfi_target & mask(TARGET_BITS)
        unchanged = (
            sv[rows, lane]
            & (sj[rows, lane] == new_jump)
            & (tg[rows, lane] == new_target)
        )
        return app & ~(hit & unchanged)

    def mutates(self, ctx):
        idx = ctx.scratch[self.c.name][0]
        # Every packet reads its set (all ways); writes land in the same
        # set they read, so staleness is per-index.
        return earlier_dirty_same_key(idx, self._dirty(ctx))

    def commit(self, ctx, accepted):
        c = self.c
        idx, tag, hit, w_safe, sv, sj, tg = ctx.scratch[c.name]
        app = (ctx.has_cfi & (ctx.cfi_target >= 0))[:accepted]
        if not app.any():
            return
        lane = np.clip(ctx.cfi_lane, 0, ctx.W - 1)[:accepted]
        new_jump = (ctx.cfi_is_jal | ctx.cfi_is_jalr)[:accepted]
        new_target = (ctx.cfi_target[:accepted] & mask(TARGET_BITS)).astype(
            c._targets.dtype
        )
        hw = np.flatnonzero(app & hit[:accepted])
        if len(hw):
            c._slot_valid[idx[hw], w_safe[hw], lane[hw]] = True
            c._slot_jump[idx[hw], w_safe[hw], lane[hw]] = new_jump[hw]
            c._targets[idx[hw], w_safe[hw], lane[hw]] = new_target[hw]
        # Allocations: the hazard cut leaves at most one per set in the
        # prefix, and no earlier dirty write to it, so the frozen
        # replacement pointer is exact.  An allocation follows any clean
        # same-set rewrites chronologically, matching this ordering.
        al = np.flatnonzero(app & ~hit[:accepted])
        if len(al):
            w = c._replace_ptr[idx[al]]
            c._replace_ptr[idx[al]] = (w + 1) % c.n_ways
            c._valid[idx[al], w] = True
            c._tags[idx[al], w] = tag[al]
            c._slot_valid[idx[al], w, :] = False
            c._slot_valid[idx[al], w, lane[al]] = True
            c._slot_jump[idx[al], w, lane[al]] = new_jump[al]
            c._targets[idx[al], w, lane[al]] = new_target[al]


class MicroBTBKernel:
    """Columnar :class:`~repro.components.btb.MicroBTB`."""

    def __init__(self, component):
        self.c = component

    def lookup(self, ctx, state):
        c = self.c
        tag = (ctx.aligned // c.fetch_width) & mask(c.tag_bits)
        match = c._valid[None, :] & (tag[:, None] == c._tags[None, :])
        hit = match.any(axis=1)
        entry = np.argmax(match, axis=1)  # first matching entry, like _find
        stored = c._cfi_idx[entry]  # absolute lane of the tracked CFI
        is_jump = c._is_jump[entry]
        target = c._targets[entry]
        ctr = c._ctrs[entry].astype(np.int64)
        # Forward the per-entry direction counter: advances (hit branch
        # entry at the committed CFI lane) and fall-through decrements both
        # write from predict-time metadata.  CAM tags stay frozen-exact
        # because allocations cut every later packet.
        at_cfi = ctx.has_cfi & (ctx.cfi_lane == stored)
        advance = hit & ~is_jump & at_cfi
        decrement = hit & ~is_jump & ~ctx.has_cfi & (stored >= ctx.offset)
        hrows = np.flatnonzero(hit)
        key = entry[hrows]
        upd = (advance | decrement)[hrows]
        taken = advance[hrows]
        v0 = ctr[hrows]
        if len(hrows):
            pre, _post, _last = forward_saturating(
                key, upd, taken, v0, c.counter_bits
            )
            ctr = ctr.copy()
            ctr[hrows] = pre
        ctx.scratch[c.name] = (tag, hit, stored, hrows, key, upd, taken, v0)
        out = state.copy()
        in_pkt = hit & (stored >= ctx.offset)
        rows = np.flatnonzero(in_pkt)
        lanes = stored[rows]
        out.hit[rows, lanes] = True
        out.target[rows, lanes] = target[rows]
        jmp = is_jump[rows]
        out.is_jump[rows[jmp], lanes[jmp]] = True
        out.taken[rows[jmp], lanes[jmp]] = True
        br = ~jmp
        out.is_branch[rows[br], lanes[br]] = True
        out.taken[rows[br], lanes[br]] = counter_taken_vec(
            ctr[rows[br]], c.counter_bits
        )
        return out

    def _allocs(self, ctx):
        hit = ctx.scratch[self.c.name][1]
        # A miss allocates only for a taken CFI with a known target; in a
        # pure packet the CFI is always taken.
        return ~hit & ctx.has_cfi & (ctx.cfi_target >= 0)

    def mutates(self, ctx):
        # An allocation changes the CAM contents every later lookup matches
        # against, so everything after one is stale.  Counter movement is
        # forwarded and never cuts.
        alloc = self._allocs(ctx)
        return (np.cumsum(alloc) - alloc) > 0

    def commit(self, ctx, accepted):
        c = self.c
        tag, hit, stored, hrows, key, upd, taken, v0 = ctx.scratch[c.name]
        n = int(np.searchsorted(hrows, accepted))
        if n:
            _pre, post, last = forward_saturating(
                key[:n], upd[:n], taken[:n], v0[:n], c.counter_bits
            )
            sel = last & (post != v0[:n])
            if sel.any():
                c._ctrs[key[:n][sel]] = post[sel].astype(c._ctrs.dtype)
        al = np.flatnonzero(self._allocs(ctx)[:accepted])
        if len(al):  # at most one: every later packet was cut
            p = int(al[0])
            e = c._alloc_ptr
            c._alloc_ptr = (e + 1) % c.n_entries
            c._valid[e] = True
            c._tags[e] = tag[p]
            c._cfi_idx[e] = int(ctx.cfi_lane[p])
            c._is_jump[e] = bool(ctx.cfi_is_jal[p] or ctx.cfi_is_jalr[p])
            c._targets[e] = int(ctx.cfi_target[p])
            c._ctrs[e] = mask(c.counter_bits)


class TAGEKernel:
    """Columnar :class:`~repro.components.tage.TAGE`."""

    def __init__(self, component):
        self.c = component
        cfgs = component.tables
        self._hbs = [cfg.history_bits for cfg in cfgs]
        self._ibs = list(component._index_bits)
        self._tbs = [cfg.tag_bits for cfg in cfgs]
        self._tbs1 = [cfg.tag_bits - 1 for cfg in cfgs]
        self._tag_mask_col = np.asarray(
            component._tag_masks, dtype=np.int64
        )[:, None]

    def lookup(self, ctx, state):
        c = self.c
        P, W = ctx.P, ctx.W
        packet = ctx.fetch_pc // c.fetch_width  # unaligned, as the scalar
        half = packet >> 1
        prov_valid = np.zeros(P, dtype=bool)
        alt_valid = np.zeros(P, dtype=bool)
        prov_ctr = np.zeros((P, W), dtype=np.int64)
        alt_ctr = np.zeros((P, W), dtype=np.int64)
        prov_u = np.zeros(P, dtype=np.int64)
        prov_table = np.zeros(P, dtype=np.int64)
        idx_t = hash_pc_multi(packet, self._ibs) ^ fold_history_multi(
            ctx.req_ghist, self._hbs, self._ibs
        )
        tag_t = (
            hash_pc_multi(half, self._tbs)
            ^ fold_history_multi(ctx.req_ghist, self._hbs, self._tbs)
            ^ (fold_history_multi(ctx.req_ghist, self._hbs, self._tbs1) << 1)
        ) & self._tag_mask_col
        idx_all = []
        hit_all = []
        for t in range(len(c.tables)):
            idx = idx_t[t]
            hit = c._valid[t][idx] & (c._tags[t][idx] == tag_t[t])
            idx_all.append(idx)
            hit_all.append(hit)
            # Running demotion: the previous provider becomes the alternate.
            alt_ctr[hit] = prov_ctr[hit]
            alt_valid = np.where(hit, prov_valid, alt_valid)
            prov_ctr[hit] = c._ctrs[t][idx[hit]]
            prov_u[hit] = c._useful[t][idx[hit]]
            prov_table[hit] = t
            prov_valid = prov_valid | hit
        prov_index = np.stack(idx_all)[prov_table, np.arange(P)]
        base_taken = state.hit & state.taken
        alt_taken = np.where(
            alt_valid[:, None],
            counter_taken_vec(alt_ctr, c.counter_bits),
            base_taken,
        )
        newly = (prov_u == 0)[:, None] & counter_is_weak_vec(
            prov_ctr, c.counter_bits
        )
        taken = counter_taken_vec(prov_ctr, c.counter_bits)
        # The use-alt-on-new-alloc counter is a single saturating counter
        # trained once per newly-allocated disagreeing branch lane, so its
        # in-window trajectory forwards exactly: each packet's lookup reads
        # the value left by every earlier packet's trainings.
        ua_ev = (
            prov_valid[:, None]
            & ctx.upd_cond
            & newly
            & (taken != alt_taken)
        )
        ev_p, ev_l = np.nonzero(ua_ev)  # row-major = chronological
        ua0 = int(c._use_alt_on_na)
        if len(ev_p):
            _, ua_post, _ = forward_saturating(
                np.zeros(len(ev_p), dtype=np.int64),
                np.ones(len(ev_p), dtype=bool),
                alt_taken[ev_p, ev_l] == ctx.rtaken_grid[ev_p, ev_l],
                np.full(len(ev_p), ua0, dtype=np.int64),
                4,
            )
            first_ev = np.searchsorted(ev_p, np.arange(P))
            ua_read = np.where(
                first_ev == 0, ua0, ua_post[np.maximum(first_ev - 1, 0)]
            )
            taken = np.where(
                newly & (ua_read >= 8)[:, None], alt_taken, taken
            )
        else:
            ua_post = None
            if ua0 >= 8:
                taken = np.where(newly, alt_taken, taken)
        ctx.scratch[c.name] = (
            prov_valid,
            prov_table,
            prov_index,
            prov_ctr,
            prov_u,
            alt_taken,
            newly,
            idx_all,
            hit_all,
            ev_p,
            ua_post,
        )
        out = state.copy()
        sel = prov_valid[:, None] & ctx.lane_valid & ~out.is_jump
        out.hit = out.hit | sel
        out.taken = np.where(sel, taken, out.taken)
        return out

    def mutates(self, ctx):
        c = self.c
        (
            prov_valid,
            prov_table,
            prov_index,
            prov_ctr,
            prov_u,
            alt_taken,
            newly,
            idx_all,
            hit_all,
            ev_p,
            ua_post,
        ) = ctx.scratch[c.name]
        prov_taken = counter_taken_vec(prov_ctr, c.counter_bits)
        upd = ctx.upd_cond
        has_br = upd.any(axis=1)
        ctr_moves = (
            saturating_changes_vec(prov_ctr, ctx.rtaken_grid, c.counter_bits)
            & upd
        ).any(axis=1)
        disagree = (prov_taken != alt_taken) & upd
        u_agree = prov_taken == ctx.rtaken_grid
        u_moves = (
            disagree
            & np.where(
                u_agree,
                prov_u[:, None] < mask(c.u_bits),
                prov_u[:, None] > 0,
            )
        ).any(axis=1)
        dirty = has_br & prov_valid & (ctr_moves | u_moves)
        # Usefulness decay fires every u_decay_period counted updates; the
        # boundary packet goes scalar and performs the actual decay.
        update_seq = c._update_count + np.cumsum(has_br)
        decay = has_br & (update_seq % c.u_decay_period == 0)
        # Counter/usefulness writes land at the provider's (table, index);
        # only packets that hit that table row read it.
        hazard = np.zeros(ctx.P, dtype=bool)
        for t in range(len(c.tables)):
            hazard |= hit_all[t] & earlier_dirty_same_key(
                idx_all[t], dirty & (prov_table == t)
            )
        return decay | hazard

    def commit(self, ctx, accepted):
        c = self.c
        (
            prov_valid,
            prov_table,
            prov_index,
            prov_ctr,
            prov_u,
            alt_taken,
            newly,
            idx_all,
            hit_all,
            ev_p,
            ua_post,
        ) = ctx.scratch[c.name]
        upd = ctx.upd_cond[:accepted]
        has_br = upd.any(axis=1)
        # The scalar update increments the decay clock once per committed
        # packet that carries at least one resolved branch.
        c._update_count += int(has_br.sum())
        if ua_post is not None:
            n_ev = int(np.searchsorted(ev_p, accepted))
            if n_ev:
                c._use_alt_on_na = int(ua_post[n_ev - 1])
        act = has_br & prov_valid[:accepted]
        if not act.any():
            return
        prov_taken = counter_taken_vec(prov_ctr[:accepted], c.counter_bits)
        rt = ctx.rtaken_grid[:accepted]
        disagree = (prov_taken != alt_taken[:accepted]) & upd
        for t in range(len(c.tables)):
            rows = np.flatnonzero(act & (prov_table[:accepted] == t))
            if not len(rows):
                continue
            pi = prov_index[:accepted][rows]
            p_i, l_i = np.nonzero(upd[rows])
            new = saturating_update_vec(
                prov_ctr[:accepted][rows][p_i, l_i],
                rt[rows][p_i, l_i],
                c.counter_bits,
            )
            c._ctrs[t][pi[p_i], l_i] = new.astype(c._ctrs[t].dtype)
            # Usefulness trains once per disagreeing lane from the same
            # metadata value; the last lane's write is the survivor.
            d = disagree[rows]
            any_d = d.any(axis=1)
            if any_d.any():
                rr = np.flatnonzero(any_d)
                last = ctx.W - 1 - np.argmax(d[rr][:, ::-1], axis=1)
                agree = prov_taken[rows][rr, last] == rt[rows][rr, last]
                new_u = saturating_update_vec(
                    prov_u[:accepted][rows][rr], agree, c.u_bits
                )
                c._useful[t][pi[rr]] = new_u.astype(c._useful[t].dtype)


class LoopKernel:
    """Columnar :class:`~repro.components.loop.LoopPredictor`.

    The loop predictor tracks at most one candidate per packet, so its
    per-window work is inherently ``O(P)`` rather than ``O(P*W)``.  Rather
    than approximate its five-field state machine (trip/conf/commit/spec/
    zero-streak, all coupled through the exit path) with scans and cut on
    the hard cases, the kernel grids the entry matches columnarly and then
    *replays the scalar state machine exactly* over the window's loop
    events — lookup, fire, and train per packet, in the scalar driver's
    order — against a private copy of each touched entry.  Every pure
    packet is then exact by construction: retraining exits, direction
    flips, and overflow invalidations all forward.  The kernel never cuts;
    allocations and repairs only occur on mispredicted packets, which end
    the segment before they commit.  ``commit`` re-runs the simulation
    over the accepted prefix and writes back the final entry states.
    """

    def __init__(self, component):
        self.c = component

    def lookup(self, ctx, state):
        c = self.c
        branch_pc = ctx.aligned[:, None] + np.arange(ctx.W)[None, :]
        idx = hash_pc_vec(branch_pc, c._index_bits)
        tag = (branch_pc >> c._index_bits) & mask(c.tag_bits)
        ematch = c._valid[idx] & (c._tags[idx] == tag)
        cand_lanes = state.hit & state.is_branch & ctx.lane_valid & ematch
        train_grid = ematch & ctx.upd_cond
        # Row-major nonzero order is chronological: packets in time order,
        # lanes in scalar iteration order within a packet.
        p_c, l_c = np.nonzero(cand_lanes)
        p_t, l_t = np.nonzero(train_grid)
        ctx.scratch[c.name] = (
            p_c.tolist(),
            l_c.tolist(),
            idx[p_c, l_c].tolist(),
            ctx.rtaken_grid[p_c, l_c].tolist(),
            ctx.upd_cond[p_c, l_c].tolist(),
            p_t.tolist(),
            idx[p_t, l_t].tolist(),
            ctx.rtaken_grid[p_t, l_t].tolist(),
        )
        preds, _ = self._simulate(ctx, ctx.P)
        out = state.copy()
        for p, lane, predicted in preds:
            out.hit[p, lane] = True
            out.taken[p, lane] = predicted
        return out

    def _simulate(self, ctx, limit):
        """Replay the scalar loop state machine over packets ``< limit``.

        Returns ``(preds, entries)``: the (row, lane, taken) predictions
        the scalar lookups would make, and the final simulated state of
        every touched entry keyed by index.
        """
        c = self.c
        p_c, l_c, e_c, rt_c, upd_c, p_t, e_t, rt_t = ctx.scratch[c.name]
        iter_top = mask(c.iter_bits)
        conf_threshold = c.CONF_THRESHOLD
        conf_max = c.CONF_MAX
        # entry -> [valid, direction, trip, spec, commit, conf, zstreak]
        entries = {}

        def load(e):
            s = entries.get(e)
            if s is None:
                s = [
                    True,
                    bool(c._direction[e]),
                    int(c._trip[e]),
                    int(c._spec_iter[e]),
                    int(c._commit_iter[e]),
                    int(c._conf[e]),
                    int(c._zero_streak[e]),
                ]
                entries[e] = s
            return s

        preds = []
        i = j = 0
        nc = len(p_c)
        nt = len(p_t)
        while i < nc or j < nt:
            p = min(
                p_c[i] if i < nc else limit, p_t[j] if j < nt else limit
            )
            if p >= limit:
                break
            # Lookup + fire: the first candidate lane whose entry is still
            # valid (an in-window overflow may have invalidated it).
            fired = False
            while i < nc and p_c[i] == p:
                if not fired:
                    s = load(e_c[i])
                    if s[0]:
                        fired = True
                        spec = s[3]
                        if s[5] >= conf_threshold and s[2] > 0:
                            body = s[1]
                            preds.append(
                                (
                                    p,
                                    l_c[i],
                                    (not body) if spec == s[2] else body,
                                )
                            )
                        if upd_c[i]:
                            s[3] = (
                                min(spec + 1, iter_top)
                                if rt_c[i] == s[1]
                                else 0
                            )
                i += 1
            # Commit-time training, every matched committed branch lane.
            while j < nt and p_t[j] == p:
                s = load(e_t[j])
                if not s[0]:
                    j += 1
                    continue
                if rt_t[j] == s[1]:  # loop body
                    count = s[4] + 1
                    if count > iter_top:
                        s[0] = False  # iteration overflow: untrackable
                    else:
                        s[4] = count
                        s[6] = 0
                else:  # loop exit: trip-count training
                    observed = s[4]
                    if observed == s[2] and observed > 0:
                        s[5] = min(s[5] + 1, conf_max)
                    else:
                        s[2] = observed
                        s[5] = 1 if observed > 0 else 0
                    s[4] = 0
                    if observed == 0:
                        streak = s[6] + 1
                        if streak >= 3:
                            # Allocation-polarity flip (see _train).
                            s[1] = not s[1]
                            s[2] = 0
                            s[5] = 0
                            s[3] = 0
                            s[6] = 0
                        else:
                            s[6] = streak
                    else:
                        s[6] = 0
                j += 1
        return preds, entries

    def mutates(self, ctx):
        return np.zeros(ctx.P, dtype=bool)

    def commit(self, ctx, accepted):
        c = self.c
        _, entries = self._simulate(ctx, accepted)
        for e, s in entries.items():
            c._valid[e] = s[0]
            c._direction[e] = s[1]
            c._trip[e] = s[2]
            c._spec_iter[e] = s[3]
            c._commit_iter[e] = s[4]
            c._conf[e] = s[5]
            c._zero_streak[e] = s[6]
