"""Vectorized columnar prediction kernels.

Batch ports of the table-based component lookups that predict whole
branch segments between mispredicts in one numpy pass over
:class:`~repro.workloads.traces.BranchTrace` columns.  Components opt in
through :meth:`~repro.core.interface.PredictorComponent.columnar_kernel`
(the CON009 capability, mirroring ``branchless_inert``/CON008); the
replay backend falls back to the scalar walker automatically whenever a
predictor carries a kernel-less component, telemetry, or a stale
no-replay history window.
"""

from repro.kernels.engine import (
    SegmentEngine,
    engine_for,
    state_from_vectors,
    state_matches_vector,
    stimulus_context,
)

__all__ = [
    "SegmentEngine",
    "engine_for",
    "state_from_vectors",
    "state_matches_vector",
    "stimulus_context",
]
