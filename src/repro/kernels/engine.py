"""The columnar segment engine: batch-predict branch segments between
mispredicts.

The scalar replay walker (:func:`repro.backends.replay.drive_columns`)
steps packet by packet through Python component code.  This engine instead
takes a *window* of upcoming branch records, reconstructs every fetch
packet the walker would form, evaluates the composed topology over all of
them in one vectorized pass against the **frozen** component tables, and
accepts the maximal prefix of *pure* packets — packets that are neither
mispredicted nor would write any component state.  Pure packets need no
table writes at all: committing them only advances counts, the global
history register, and a handful of managed counters (loop iteration
counts, the TAGE update counter), all reproducible with closed-form
arithmetic.  The first impure packet — a mispredict, an allocation, any
counter movement — cuts the segment and is re-run through the scalar
predict/resolve/commit path, so update ordering, repair semantics, and
no-replay stale-history windows stay exactly the scalar code's.

Correctness hinges on one induction: packet ``q``'s vectorized values are
exact as long as every packet before it is pure (no state changed, so the
frozen tables are still current), and the first non-pure packet is
therefore detected exactly; garbage computed for packets *after* it can
never move the cut earlier.  Over-marking a packet as state-changing is
always safe — it only shortens the accepted prefix — so the per-kernel
``mutates`` rules may be conservative where exactness is expensive.

Eligibility is per-composition (:func:`engine_for`): every component must
advertise a kernel via ``columnar_kernel()`` (capability CON009, the
columnar sibling of ``branchless_inert``/CON008), the topology must be
override-only, and the composition must not use local/path history or CFI
serialization.  Anything else falls back to the scalar walker.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.topology import Arbitrate, Leaf, Override, TopologyNode
from repro.workloads.traces import (
    TYPE_CALL,
    TYPE_COND,
    TYPE_JAL,
    TYPE_JALR,
    TYPE_RET,
)
from repro.kernels.vector_ops import rolling_histories


class ColState:
    """Columnar :class:`~repro.core.prediction.SlotPrediction` grids.

    One row per fetch packet, one column per *absolute* lane of the
    aligned fetch group (lane = pc - aligned_base).  Lanes below a
    packet's entry offset are outside the packet; kernels must gate
    writes with ``ctx.lane_valid`` so those lanes keep the fall-through
    default, exactly as the scalar vectors never materialize them.
    ``target`` uses -1 for the scalar ``None``.
    """

    __slots__ = ("hit", "is_branch", "is_jump", "taken", "target")

    @classmethod
    def fallthrough(cls, packets: int, width: int) -> "ColState":
        state = cls.__new__(cls)
        state.hit = np.zeros((packets, width), dtype=bool)
        state.is_branch = np.zeros((packets, width), dtype=bool)
        state.is_jump = np.zeros((packets, width), dtype=bool)
        state.taken = np.zeros((packets, width), dtype=bool)
        state.target = np.full((packets, width), -1, dtype=np.int64)
        return state

    def copy(self) -> "ColState":
        clone = ColState.__new__(ColState)
        clone.hit = self.hit.copy()
        clone.is_branch = self.is_branch.copy()
        clone.is_jump = self.is_jump.copy()
        clone.taken = self.taken.copy()
        clone.target = self.target.copy()
        return clone


def merge_by_hit_vec(winner: ColState, fallback: ColState) -> ColState:
    """Columnar :func:`repro.core.topology.merge_by_hit`."""
    sel = winner.hit
    merged = ColState.__new__(ColState)
    merged.hit = np.where(sel, winner.hit, fallback.hit)
    merged.is_branch = np.where(sel, winner.is_branch, fallback.is_branch)
    merged.is_jump = np.where(sel, winner.is_jump, fallback.is_jump)
    merged.taken = np.where(sel, winner.taken, fallback.taken)
    merged.target = np.where(sel, winner.target, fallback.target)
    return merged


class TraceColumns:
    """Numpy views over the branch-trace columns the engine consumes."""

    __slots__ = ("pcs", "types", "taken", "targets", "slot_targets", "n_records")

    @classmethod
    def from_trace(cls, trace) -> "TraceColumns":
        cols = cls.__new__(cls)
        cols.pcs = np.asarray(trace.pcs, dtype=np.int64)
        cols.types = np.asarray(trace.types)
        cols.taken = np.asarray(trace.taken, dtype=bool)
        cols.targets = np.asarray(trace.targets, dtype=np.int64)
        cols.slot_targets = np.asarray(trace.slot_targets, dtype=np.int64)
        cols.n_records = len(cols.pcs)
        return cols


class SegmentContext:
    """Everything one engine window computes about its fetch packets.

    Built by :meth:`SegmentEngine._build_context` from ``K`` consecutive
    branch records; kernels read the per-packet columns at lookup time and
    the record grids at mutation time, stashing per-component scratch in
    ``scratch`` between the two phases.
    """

    __slots__ = (
        "P", "W", "scratch",
        # per-packet lookup columns
        "fetch_pc", "aligned", "offset", "lane_valid", "req_ghist",
        # per-packet record grids (absolute lanes)
        "cond_grid", "rtaken_grid", "upd_cond",
        # architectural-cut columns
        "has_cfi", "cfi_lane", "cfi_is_cond", "cfi_is_jal", "cfi_is_jalr",
        "cfi_static_target", "cfi_target",
        # accounting (cumulative through packet p, inclusive)
        "first_k", "instr_incl", "branches_incl", "pos_incl", "jumps_incl",
        "next_fp", "rolled", "n_records",
    )


#: Returned when the engine accepts nothing (the caller falls back to the
#: scalar walker for at least one packet).  ``impure_next`` reports *why*
#: the segment ended: True means the packet at the stop position is known
#: to mispredict or write state, so the caller should walk exactly that
#: packet through the scalar path rather than re-attempt the engine on it.
class EngineResult:
    __slots__ = (
        "packets", "records", "instructions", "branches", "next_pc",
        "impure_next",
    )

    def __init__(
        self, packets, records, instructions, branches, next_pc,
        impure_next=False,
    ):
        self.packets = packets
        self.records = records
        self.instructions = instructions
        self.branches = branches
        self.next_pc = next_pc
        self.impure_next = impure_next


_NO_PROGRESS = EngineResult(0, 0, 0, 0, 0)
_NO_PROGRESS_IMPURE = EngineResult(0, 0, 0, 0, 0, impure_next=True)


class _VecLeaf:
    __slots__ = ("kernel", "latency")

    def __init__(self, kernel, latency: int):
        self.kernel = kernel
        self.latency = latency

    def evaluate(self, ctx: SegmentContext, depth: int) -> List[Optional[ColState]]:
        out = self.kernel.lookup(ctx, ColState.fallthrough(ctx.P, ctx.W))
        staged: List[Optional[ColState]] = [None] * depth
        for d in range(self.latency, depth + 1):
            staged[d - 1] = out
        return staged


class _VecOverride:
    __slots__ = ("kernel", "latency", "lo")

    def __init__(self, kernel, latency: int, lo):
        self.kernel = kernel
        self.latency = latency
        self.lo = lo

    def evaluate(self, ctx: SegmentContext, depth: int) -> List[Optional[ColState]]:
        staged = self.lo.evaluate(ctx, depth)
        predict_in = _first_available_vec(staged, self.latency, ctx)
        out = self.kernel.lookup(ctx, predict_in)
        result = list(staged)
        prev_below = prev_merged = None
        for d in range(self.latency, depth + 1):
            below = staged[d - 1]
            if below is None:
                result[d - 1] = out
            elif below is prev_below:
                result[d - 1] = prev_merged
            else:
                prev_below = below
                prev_merged = merge_by_hit_vec(out, below)
                result[d - 1] = prev_merged
        return result


def _first_available_vec(
    staged: List[Optional[ColState]], stage: int, ctx: SegmentContext
) -> ColState:
    for d in range(stage, 0, -1):
        state = staged[d - 1]
        if state is not None:
            return state
    return ColState.fallthrough(ctx.P, ctx.W)


def _vectorize(node: TopologyNode):
    """Mirror a scalar topology with kernel-backed nodes, or None."""
    if isinstance(node, Leaf):
        kernel = node.component.columnar_kernel()
        if kernel is None:
            return None
        return _VecLeaf(kernel, node.component.latency)
    if isinstance(node, Override):
        lo = _vectorize(node.lo)
        if lo is None:
            return None
        kernel = node.hi.columnar_kernel()
        if kernel is None:
            return None
        return _VecOverride(kernel, node.hi.latency, lo)
    assert isinstance(node, Arbitrate)
    return None  # learned selection is not vectorized yet


def _collect_kernels(node) -> List[object]:
    if isinstance(node, _VecLeaf):
        return [node.kernel]
    return _collect_kernels(node.lo) + [node.kernel]


def engine_for(predictor) -> Optional["SegmentEngine"]:
    """Build a segment engine for ``predictor``, or None when ineligible.

    The gate mirrors the ``drive_columns`` preconditions plus the
    columnar-specific ones: override-only topology, kernels for every
    component, matching fetch widths, a <=64-bit global history (the
    rolling-history builder's register width), and no local/path history
    (their providers are not columnarized).  A component that declares a
    :class:`repro.spec.ComponentSpec` must also declare batch-replay
    eligibility there: a spec whose kernel class is ``"none"`` disowns
    any reachable ``columnar_kernel``, so the engine refuses it even if
    one exists (SPEC006 keeps the two in agreement for the shipped
    library).  Spec-less third-party components fall back to kernel
    presence alone.  Telemetry and stale-history windows are runtime
    conditions checked by the driver, not here.
    """
    config = predictor.config
    if config.serialize_cfi or config.global_history_bits > 64:
        return None
    if predictor._uses_local or predictor._uses_path:
        return None
    if not predictor.branchless_inert:
        return None
    for component in predictor.components:
        width = getattr(component, "fetch_width", None)
        if width is not None and width != config.fetch_width:
            return None
        try:
            spec = component.spec()
        except Exception:
            spec = None
        if spec is not None and spec.kernel == "none":
            return None
    root = _vectorize(predictor.topology)
    if root is None:
        return None
    return SegmentEngine(predictor, root)


class SegmentEngine:
    """Vectorized pure-packet evaluator for one composed predictor."""

    def __init__(self, predictor, root):
        self.predictor = predictor
        self.root = root
        self.kernels = _collect_kernels(root)
        self.width = predictor.config.fetch_width
        self.depth = predictor.depth
        self.ghist_bits = predictor.config.global_history_bits
        #: Average accepted records per attempt below which the driver
        #: should disengage the engine.  An attempt's numpy overhead is
        #: roughly flat per kernel while the scalar walk it replaces costs
        #: one Python predict/commit round per component, so cheap
        #: compositions (few kernels) need longer pure segments to
        #: amortize an attempt than deep ones do.
        self.engage_min = max(8.0, 48.0 / max(len(self.kernels), 1))

    # ------------------------------------------------------------------
    def _build_context(
        self, cols: TraceColumns, pc0: int, bi: int, k: int, ghist0: int
    ) -> SegmentContext:
        W = self.width
        bpc = cols.pcs[bi : bi + k]
        btype = cols.types[bi : bi + k]
        btaken = cols.taken[bi : bi + k]
        btgt = cols.targets[bi : bi + k]
        K = len(bpc)
        is_cond = btype == TYPE_COND
        rec_idx = np.arange(K)

        # --- packetization: group records exactly as the walker fetches.
        # tr[k]: the record transfers control somewhere other than pc + 1
        # (the walker only ends a packet on such a transfer or at the span
        # boundary; degenerate taken-to-next-pc transfers keep walking).
        tr = btgt != bpc + 1
        last_tr_excl = np.empty(K, dtype=np.int64)
        last_tr_excl[0] = -1
        if K > 1:
            np.maximum.accumulate(
                np.where(tr, rec_idx, -1)[:-1], out=last_tr_excl[1:]
            )
        seq_start = np.where(
            last_tr_excl >= 0, btgt[np.maximum(last_tr_excl, 0)], pc0
        )
        # The fetch PC of the packet holding record k: the sequential-run
        # start if the record sits in the run's first packet, else the
        # aligned base of the record's own fetch group.
        first_boundary = seq_start - seq_start % W + W
        pkt_start = np.where(bpc < first_boundary, seq_start, bpc - bpc % W)
        new_pkt = np.empty(K, dtype=bool)
        new_pkt[0] = True
        if K > 1:
            new_pkt[1:] = tr[:-1] | (pkt_start[1:] != pkt_start[:-1])
        pid = np.cumsum(new_pkt) - 1
        P = int(pid[-1]) + 1
        first_k = np.flatnonzero(new_pkt)
        last_k = np.empty(P, dtype=np.int64)
        last_k[:-1] = first_k[1:] - 1
        last_k[-1] = K - 1

        ctx = SegmentContext.__new__(SegmentContext)
        ctx.P, ctx.W = P, W
        ctx.scratch = {}
        ctx.n_records = K
        ctx.first_k = first_k
        ctx.fetch_pc = pkt_start[first_k]
        ctx.aligned = ctx.fetch_pc - ctx.fetch_pc % W
        ctx.offset = ctx.fetch_pc % W
        ctx.lane_valid = np.arange(W)[None, :] >= ctx.offset[:, None]
        lane = bpc - ctx.aligned[pid]

        # --- instruction accounting (cumulative, inclusive of packet p).
        prev_end = np.empty(K, dtype=np.int64)
        prev_end[0] = pc0
        prev_end[1:] = btgt[:-1]
        cum_instr = np.cumsum(bpc - prev_end + 1)
        end_tr = tr[last_k]
        # A packet whose last record falls through runs on to the span end;
        # the driver resumes from next_fp, so the trailing plains are
        # charged here and never recounted.
        trailing = np.where(end_tr, 0, ctx.aligned + W - (bpc[last_k] + 1))
        ctx.instr_incl = cum_instr[last_k] + trailing
        ctx.next_fp = np.where(end_tr, btgt[last_k], ctx.aligned + W)
        ctx.branches_incl = np.cumsum(is_cond)[last_k]

        # --- architectural cut: the first taken record is the packet's CFI
        # (for pure packets it coincides with the predicted cut).
        first_taken = np.minimum.reduceat(
            np.where(btaken, rec_idx, K), first_k
        )
        ctx.has_cfi = first_taken < K
        safe_ft = np.minimum(first_taken, K - 1)
        ctx.cfi_lane = np.where(ctx.has_cfi, lane[safe_ft], -1)
        cfi_type = btype[safe_ft]
        ctx.cfi_is_cond = ctx.has_cfi & (cfi_type == TYPE_COND)
        ctx.cfi_is_jal = ctx.has_cfi & (
            (cfi_type == TYPE_JAL) | (cfi_type == TYPE_CALL)
        )
        ctx.cfi_is_jalr = ctx.has_cfi & (
            (cfi_type == TYPE_JALR) | (cfi_type == TYPE_RET)
        )
        ctx.cfi_static_target = np.where(
            ctx.has_cfi, cols.slot_targets[bpc[safe_ft]], -1
        )
        ctx.jumps_incl = np.cumsum(ctx.cfi_is_jal | ctx.cfi_is_jalr)

        # --- update gating: committed br_mask covers conditional records at
        # or before the packet's cut (everything the walker fetched).
        upd_rec = is_cond & (rec_idx <= first_taken[pid])

        ctx.cond_grid = np.zeros((P, W), dtype=bool)
        ctx.cond_grid[pid[is_cond], lane[is_cond]] = True
        ctx.rtaken_grid = np.zeros((P, W), dtype=bool)
        ctx.rtaken_grid[pid, lane] = btaken
        ctx.upd_cond = np.zeros((P, W), dtype=bool)
        ctx.upd_cond[pid[upd_rec], lane[upd_rec]] = True

        # --- rolling global history: the register value each packet's
        # lookup observes, and the value to restore after the last accepted
        # packet.
        outcome_count = np.cumsum(upd_rec)
        ctx.pos_incl = outcome_count[last_k]
        ctx.rolled = rolling_histories(
            ghist0, btaken[upd_rec], self.ghist_bits
        )
        pos_before = np.empty(P, dtype=np.int64)
        pos_before[0] = 0
        pos_before[1:] = ctx.pos_incl[:-1]
        ctx.req_ghist = ctx.rolled[pos_before]
        ctx.cfi_target = None  # filled after topology evaluation
        return ctx

    # ------------------------------------------------------------------
    def run(
        self, cols: TraceColumns, pc0: int, bi: int, k: int, budget: int
    ) -> EngineResult:
        """Accept the longest pure-packet prefix of the next ``k`` records.

        Commits everything the scalar walker would have committed for those
        packets (counts, global history, managed component state) and
        returns the accepted extent; accepting zero packets has no side
        effects at all.
        """
        predictor = self.predictor
        ctx = self._build_context(cols, pc0, bi, k, predictor._global.read())
        P = ctx.P
        # Never accept the window's final packet unless the trace ends with
        # it: later records could still extend it.
        max_packets = P if bi + ctx.n_records == cols.n_records else P - 1
        if max_packets <= 0:
            return _NO_PROGRESS

        staged = self.root.evaluate(ctx, self.depth)
        final = staged[-1]
        if final is None:  # pragma: no cover - depth >= root latency
            final = ColState.fallthrough(P, ctx.W)

        # The walker resolves only direction mispredicts on conditional
        # records, and it checks every record it walks — including records
        # beyond a degenerate (taken-to-pc+1) cut.
        wrong = ((final.taken != ctx.rtaken_grid) & ctx.cond_grid).any(axis=1)

        # The committed cfi_target: static targets for conditional/JAL CFIs
        # (pre-decode recomputes them), the composed prediction for JALR
        # (replay never corrects targets, so the BTB learns the predicted
        # one, exactly as the scalar path does).
        rows = np.arange(P)
        lane = np.clip(ctx.cfi_lane, 0, ctx.W - 1)
        ctx.cfi_target = np.where(
            ctx.cfi_is_jalr, final.target[rows, lane], ctx.cfi_static_target
        )

        mutating = wrong
        for kernel in self.kernels:
            mutating = mutating | kernel.mutates(ctx)

        impure = np.flatnonzero(mutating)
        accepted = int(impure[0]) if len(impure) else P
        impure_at = accepted
        accepted = min(accepted, max_packets)
        accepted = min(
            accepted, int(np.searchsorted(ctx.instr_incl, budget, side="right"))
        )
        # Whether the packet the scalar walker resumes at is known-impure
        # (rather than the stop being a window/budget artifact).
        impure_next = accepted == impure_at and impure_at < P
        if accepted <= 0:
            return _NO_PROGRESS_IMPURE if impure_next else _NO_PROGRESS

        last = accepted - 1
        predictor._global.restore(int(ctx.rolled[int(ctx.pos_incl[last])]))
        stats = predictor.stats
        stats.predictions += accepted
        stats.committed_packets += accepted
        stats.committed_branches += int(ctx.pos_incl[last])
        stats.committed_jumps += int(ctx.jumps_incl[last])
        for kernel in self.kernels:
            kernel.commit(ctx, accepted)
        records = (
            ctx.n_records if accepted == P else int(ctx.first_k[accepted])
        )
        return EngineResult(
            packets=accepted,
            records=records,
            instructions=int(ctx.instr_incl[last]),
            branches=int(ctx.branches_incl[last]),
            next_pc=int(ctx.next_fp[last]),
            impure_next=impure_next,
        )


# ----------------------------------------------------------------------
# CON009 stimulus support: a minimal lookup-only context so the contract
# harness can compare kernel.lookup against the scalar lookup slot by slot.
# ----------------------------------------------------------------------
def stimulus_context(
    fetch_pcs: List[int], ghists: List[int], width: int
) -> SegmentContext:
    """A lookup-phase context with no records (empty update grids)."""
    P = len(fetch_pcs)
    ctx = SegmentContext.__new__(SegmentContext)
    ctx.P, ctx.W = P, width
    ctx.scratch = {}
    ctx.fetch_pc = np.asarray(fetch_pcs, dtype=np.int64)
    ctx.aligned = ctx.fetch_pc - ctx.fetch_pc % width
    ctx.offset = ctx.fetch_pc % width
    ctx.lane_valid = np.arange(width)[None, :] >= ctx.offset[:, None]
    ctx.req_ghist = np.asarray(ghists, dtype=np.uint64)
    ctx.cond_grid = np.zeros((P, width), dtype=bool)
    ctx.rtaken_grid = np.zeros((P, width), dtype=bool)
    ctx.upd_cond = np.zeros((P, width), dtype=bool)
    ctx.has_cfi = np.zeros(P, dtype=bool)
    ctx.cfi_lane = np.full(P, -1, dtype=np.int64)
    return ctx


def state_from_vectors(vectors, ctx: SegmentContext) -> ColState:
    """Encode scalar predict_in vectors into absolute-lane grids."""
    state = ColState.fallthrough(ctx.P, ctx.W)
    for p, vector in enumerate(vectors):
        off = int(ctx.offset[p])
        for i, slot in enumerate(vector.slots):
            lane = off + i
            state.hit[p, lane] = slot.hit
            state.is_branch[p, lane] = slot.is_branch
            state.is_jump[p, lane] = slot.is_jump
            state.taken[p, lane] = slot.taken
            state.target[p, lane] = -1 if slot.target is None else slot.target
    return state


def state_matches_vector(
    state: ColState, p: int, offset: int, vector
) -> Tuple[bool, str]:
    """Compare one packet row of ``state`` against a scalar output vector."""
    for i, slot in enumerate(vector.slots):
        lane = offset + i
        got = (
            bool(state.hit[p, lane]),
            bool(state.is_branch[p, lane]),
            bool(state.is_jump[p, lane]),
            bool(state.taken[p, lane]),
            int(state.target[p, lane]),
        )
        want = (
            bool(slot.hit),
            bool(slot.is_branch),
            bool(slot.is_jump),
            bool(slot.taken),
            -1 if slot.target is None else int(slot.target),
        )
        if got != want:
            return False, (
                f"slot {i}: kernel {got} != scalar {want} "
                f"(hit/is_branch/is_jump/taken/target)"
            )
    return True, ""
