"""Columnar ports of the scalar bit-manipulation helpers in :mod:`repro._util`.

Each function mirrors its scalar namesake bit for bit over numpy arrays, so
the batch kernels in :mod:`repro.kernels.components` compute exactly the
indices, tags, and counter decisions the scalar components would.  The
scalar helpers remain the reference implementations; the test suite and the
CON009 contract rule hold these ports to them.
"""

from __future__ import annotations

import numpy as np

from repro._util import mask


def fold_history_vec(
    history: np.ndarray, history_bits: int, folded_bits: int
) -> np.ndarray:
    """Vectorized :func:`repro._util.fold_history` over a uint64 column.

    The scalar version loops ``while history``; XORing a fixed
    ``ceil(history_bits / folded_bits)`` chunk count is equivalent because
    exhausted histories contribute zero chunks.
    """
    if folded_bits <= 0:
        return np.zeros(np.shape(history), dtype=np.int64)
    h = history.astype(np.uint64) & np.uint64(mask(min(history_bits, 64)))
    chunk = np.uint64(mask(folded_bits))
    shift = np.uint64(folded_bits)
    folded = np.zeros(np.shape(history), dtype=np.uint64)
    for _ in range((history_bits + folded_bits - 1) // folded_bits):
        folded ^= h & chunk
        h >>= shift
    return folded.astype(np.int64)


def fold_history_multi(
    history: np.ndarray, history_bits, folded_bits
) -> np.ndarray:
    """:func:`fold_history_vec` for T ``(history_bits, folded_bits)`` pairs.

    Stacks the per-table chunk loops into one ``(T, P)`` sweep: tables
    whose chunks are exhausted shift to zero and XOR nothing, so running
    every table for the longest table's chunk count is exact.  Batching
    matters because TAGE folds three quantities for each of its tables
    per window — per-table calls dominate small-window attempts.
    """
    pairs = list(zip(history_bits, folded_bits))
    hmask = np.array(
        [mask(min(int(hb), 64)) for hb, _ in pairs], dtype=np.uint64
    )
    chunk = np.array(
        [mask(int(fb)) if fb > 0 else 0 for _, fb in pairs], dtype=np.uint64
    )
    shift = np.array(
        [int(fb) if fb > 0 else 63 for _, fb in pairs], dtype=np.uint64
    )
    h = np.asarray(history, dtype=np.uint64)[None, :] & hmask[:, None]
    folded = np.zeros_like(h)
    rounds = max(
        (int(hb) + int(fb) - 1) // int(fb)
        for hb, fb in pairs
        if fb > 0
    )
    ck = chunk[:, None]
    sh = shift[:, None]
    for _ in range(rounds):
        folded ^= h & ck
        h >>= sh
    return folded.astype(np.int64)


def hash_pc_multi(pc: np.ndarray, bits) -> np.ndarray:
    """:func:`hash_pc_vec` for T bit widths at once, returning ``(T, P)``."""
    b = np.asarray(bits, dtype=np.int64)[:, None]
    m = np.array(
        [mask(int(x)) if x > 0 else 0 for x in bits], dtype=np.int64
    )[:, None]
    p = np.asarray(pc, dtype=np.int64)[None, :]
    bs = np.maximum(b, 1)  # avoid 0-bit shifts; the zero mask wins anyway
    return (p ^ (p >> bs) ^ (p >> (2 * bs))) & m


def hash_pc_vec(pc: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized :func:`repro._util.hash_pc` over an int64 column."""
    if bits <= 0:
        return np.zeros(np.shape(pc), dtype=np.int64)
    h = pc ^ (pc >> bits) ^ (pc >> (2 * bits))
    return h & mask(bits)


def counter_taken_vec(counter: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized :func:`repro._util.counter_taken` (MSB decision)."""
    return ((counter >> (bits - 1)) & 1).astype(bool)


def counter_is_weak_vec(counter: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized :func:`repro._util.counter_is_weak`."""
    c = counter.astype(np.int64)
    mid_hi = 1 << (bits - 1)
    return (c == mid_hi) | (c == mid_hi - 1)


def saturating_changes_vec(
    counter: np.ndarray, taken: np.ndarray, bits: int
) -> np.ndarray:
    """Whether :func:`repro._util.saturating_update` would move the counter."""
    c = counter.astype(np.int64)
    return np.where(taken, c < mask(bits), c > 0)


def saturating_update_vec(
    counter: np.ndarray, taken: np.ndarray, bits: int
) -> np.ndarray:
    """Vectorized :func:`repro._util.saturating_update`."""
    c = counter.astype(np.int64)
    return np.where(taken, np.minimum(c + 1, mask(bits)), np.maximum(c - 1, 0))


def earlier_dirty_same_key(keys: np.ndarray, dirty: np.ndarray) -> np.ndarray:
    """Read-after-dirty-write hazards along a column of table indices.

    ``out[i]`` is True when some earlier position ``j < i`` with
    ``keys[j] == keys[i]`` has ``dirty[j]`` set: position ``i`` would read a
    table row an earlier packet's replayed write has changed, so the frozen
    snapshot it was predicted from is stale.  Positions are chronological
    (packet order); a stable argsort groups equal keys without reordering
    time.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(keys, kind="stable")
    d = dirty[order].astype(np.int64)
    excl = np.cumsum(d) - d
    sk = keys[order]
    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    group_start[1:] = sk[1:] != sk[:-1]
    # ``excl`` is non-decreasing, so a running max of its value at each
    # group start yields the per-group baseline.
    base = np.maximum.accumulate(np.where(group_start, excl, 0))
    out = np.empty(n, dtype=bool)
    out[order] = (excl - base) > 0
    return out


#: Sentinel bounds for the clamp-function monoid in
#: :func:`forward_saturating`; wider than any counter range.
_BIG = np.int64(1) << np.int64(40)


def forward_saturating(keys, upd, taken, v0, bits):
    """Forward saturating-counter values through a chronological event chain.

    Each event reads one counter (identified by ``keys``) and, when
    ``upd`` is set, steps it ``clip(v ± 1, 0, top)`` toward ``taken``.
    ``v0`` carries the counter's frozen (pre-window) value per event.
    Returns ``(pre, post, last)``: the value each event *reads* (what the
    scalar predictor would have seen at that point), the value after the
    event, and a mask of each key's final event — ``post[last]`` is the
    counter's end-of-window value.

    The step functions ``v -> min(hi, max(lo, v + a))`` form a monoid
    under composition, so a segmented Hillis-Steele scan over the events
    of each key (stable argsort keeps them chronological) computes every
    exclusive prefix in ``O(n log n)`` without per-key loops.
    """
    n = len(keys)
    if n == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, np.zeros(0, dtype=bool)
    top = mask(bits)
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    group_start[1:] = sk[1:] != sk[:-1]
    step_dir = np.where(taken[order], 1, -1)
    is_upd = upd[order]
    # Element i holds the *previous* event's step (identity at group
    # starts), so the inclusive scan yields exclusive prefixes.
    a = np.zeros(n, dtype=np.int64)
    lo = np.full(n, -_BIG)
    hi = np.full(n, _BIG)
    shifted = ~group_start[1:] & is_upd[:-1]
    a[1:] = np.where(shifted, step_dir[:-1], 0)
    lo[1:] = np.where(shifted, 0, -_BIG)
    hi[1:] = np.where(shifted, top, _BIG)
    pos = np.arange(n)
    g0 = np.maximum.accumulate(np.where(group_start, pos, 0))
    step = 1
    while step < n:
        src = pos - step
        valid = src >= g0
        vs = np.maximum(src, 0)
        # Compose: the function ending at src applies first, then ours.
        na = np.where(valid, a[vs] + a, a)
        nlo = np.where(valid, np.minimum(hi, np.maximum(lo, lo[vs] + a)), lo)
        nhi = np.where(valid, np.minimum(hi, np.maximum(lo, hi[vs] + a)), hi)
        a, lo, hi = na, nlo, nhi
        step <<= 1
    pre_sorted = np.minimum(hi, np.maximum(lo, v0[order] + a))
    pre = np.empty(n, dtype=np.int64)
    pre[order] = pre_sorted
    post = np.where(
        upd,
        np.minimum(np.maximum(pre + np.where(taken, 1, -1), 0), top),
        pre,
    )
    group_last = np.empty(n, dtype=bool)
    group_last[:-1] = group_start[1:]
    group_last[-1] = True
    last = np.zeros(n, dtype=bool)
    last[order[group_last]] = True
    return pre, post, last


def rolling_histories(
    ghist0: int, outcome_bits: np.ndarray, history_bits: int
) -> np.ndarray:
    """Global-history register value after every prefix of ``outcome_bits``.

    ``R[i]`` is the shift register (LSB = newest outcome, as
    :meth:`~repro.core.history.GlobalHistoryProvider.speculate` maintains
    it) after the first ``i`` outcomes have been shifted into ``ghist0``.
    Requires ``history_bits <= 64``; the engine's eligibility gate enforces
    that.
    """
    m = len(outcome_bits)
    ext = np.zeros(64 + m, dtype=np.uint64)
    ext[:64] = (np.uint64(ghist0) >> np.arange(63, -1, -1, dtype=np.uint64)) & np.uint64(1)
    if m:
        ext[64:] = outcome_bits.astype(np.uint64)
    # rolled[i] = sum_t ext[63 + i - t] << t for t < history_bits: a
    # sliding 64-bit window, weighted so the newest outcome is the LSB.
    windows = np.lib.stride_tricks.sliding_window_view(ext, 64)
    t = np.arange(63, -1, -1)
    weights = np.where(t < history_bits, np.uint64(1) << t.astype(np.uint64), np.uint64(0))
    return windows @ weights
