"""Cycle-level model of the host core (fetch unit + simplified backend).

The fetch unit reproduces Fig. 6's structure: the COBRA-generated predictor
pipeline is queried at Fetch-0; staged predictions redirect fetch as they
arrive (1-cycle uBTB redirects at Fetch-1, the BTB at Fetch-2, backing
predictors at Fetch-3); pre-decode corrects bogus predictions and supplies
direct targets; the RAS (kept from the host core, §IV-C) predicts returns;
accepted packets enter the fetch buffer and the history file.

The backend dispatches up to 4 instructions per cycle into a 128-entry ROB,
computes completion times with a dependency-driven timing model (idealized
issue bandwidth), resolves branches in order, and commits up to 4 per
cycle.  Branch resolution compares the frontend's *followed* path against
the architectural oracle; a mismatch flushes younger state, repairs the
predictor through the composer, and redirects fetch.

Instruction-kind semantics on the wrong path come from real instruction
memory (fetch reads the same program image the oracle executes), so
wrong-path fetches pollute speculative predictor state exactly as they
would in hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.components.ras import RasSnapshot, ReturnAddressStack
from repro.core.composer import ComposedPredictor, PreDecodedSlot, PredictResult
from repro.core.prediction import PacketCache, packet_span, predecode_slot
from repro.frontend.caches import DataCacheModel, InstructionCacheModel
from repro.frontend.config import CoreConfig
from repro.frontend.oracle import OracleStream
from repro.isa.instructions import Instruction, NUM_REGS, Opcode
from repro.isa.program import Program

_KIND_CORRECT = 0
_KIND_WRONG = 1
_KIND_PREDICATED = 2


@dataclass
class CoreStats:
    """Measurements collected over one run (the FireSim out-of-band
    profiler analogue)."""

    cycles: int = 0
    committed_instructions: int = 0
    committed_predicated: int = 0
    committed_branches: int = 0
    committed_jumps: int = 0
    branch_mispredicts: int = 0
    target_mispredicts: int = 0
    flushes: int = 0
    fetch_packets: int = 0
    fetch_bubble_cycles: int = 0
    decode_starved_cycles: int = 0
    stage_redirects: Dict[int, int] = field(default_factory=dict)
    sfb_converted: int = 0
    repair_walk_cycles: int = 0
    icache_stall_cycles: int = 0
    #: Direction mispredicts per static branch PC (site profiling).
    mispredicts_by_pc: Dict[int, int] = field(default_factory=dict)
    #: Committed executions per static branch PC.
    executions_by_pc: Dict[int, int] = field(default_factory=dict)
    #: Telemetry summary payload (``CoreConfig.telemetry``); None when the
    #: collector is not attached.  JSON-canonical, see
    #: :meth:`repro.telemetry.TelemetryCollector.summary`.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ipc(self) -> float:
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """Conditional-branch direction mispredicts per kilo-instruction."""
        if not self.committed_instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.committed_instructions

    @property
    def total_mpki(self) -> float:
        """All control mispredicts (direction + indirect target) per KI."""
        if not self.committed_instructions:
            return 0.0
        misses = self.branch_mispredicts + self.target_mispredicts
        return 1000.0 * misses / self.committed_instructions

    @property
    def branch_accuracy(self) -> float:
        if not self.committed_branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.committed_branches


@dataclass(slots=True)
class _RobEntry:
    seq: int
    pc: int
    instr: Instruction
    ftq_id: int
    slot_idx: int
    kind: int
    record: Optional[object]
    oracle_index: Optional[int]
    followed_next_pc: int
    complete_cycle: int
    needs_resolution: bool
    ends_packet: bool
    is_halt: bool
    resolved: bool = False
    flushed: bool = False


@dataclass(slots=True)
class _DispatchSlot:
    pc: int
    instr: Instruction
    slot_idx: int
    followed_next_pc: int
    ends_packet: bool


class _BufferedPacket:
    __slots__ = ("ftq_id", "fetch_pc", "slots", "pos")

    def __init__(self, ftq_id: int, fetch_pc: int, slots: List[_DispatchSlot]):
        self.ftq_id = ftq_id
        self.fetch_pc = fetch_pc
        self.slots = slots
        self.pos = 0


class _InFlightFetch:
    __slots__ = ("result", "age", "followed_next_pc", "stage_next")

    def __init__(self, result: PredictResult, stage_next: Tuple[int, ...]):
        self.result = result
        self.age = 0
        #: ``stage_next[d - 1]`` is the fetch PC the stage-``d`` prediction
        #: directs the frontend to.  Precomputed once at issue so the staged
        #: redirect check does not re-scan the prediction vector every cycle
        #: the bundle sits in the fetch pipeline.
        self.stage_next = stage_next
        if len(stage_next) == 1:
            # A single-stage pipeline has no later stage to override the
            # fetched path, and its stage-1 answer IS the final one — which
            # pre-decode has already corrected within the same fetch cycle.
            # Follow the corrected PC, or bogus raw predictions (e.g. a BTB
            # hit on a non-CFI slot) would steer fetch down a path the ROB
            # never learns about.
            self.followed_next_pc = result.next_fetch_pc
        else:
            self.followed_next_pc = stage_next[0]


_NOP = Instruction(Opcode.NOP)


class Core:
    """A program + a composed predictor + the core model = one experiment."""

    def __init__(
        self,
        program: Program,
        predictor: ComposedPredictor,
        config: Optional[CoreConfig] = None,
        max_oracle_instructions: int = 50_000_000,
        trace: Optional[object] = None,
    ):
        self.config = config or CoreConfig()
        if predictor.config.fetch_width != self.config.fetch_width:
            raise ValueError(
                "predictor and core disagree on fetch width: "
                f"{predictor.config.fetch_width} vs {self.config.fetch_width}"
            )
        self.program = program
        self.predictor = predictor
        self.oracle = OracleStream(program, max_oracle_instructions)
        self.dcache = DataCacheModel(self.config.cache)
        ic = self.config.icache
        self.icache = (
            InstructionCacheModel(
                ic.n_sets, ic.n_ways, ic.line_words, ic.miss_penalty,
                ic.prefetch_next_line,
            )
            if ic.enabled
            else None
        )
        self.ras = ReturnAddressStack(self.config.ras_depth)
        self.stats = CoreStats()
        self.telemetry = None
        if self.config.telemetry or trace is not None:
            from repro.telemetry import TelemetryCollector

            self.telemetry = TelemetryCollector(trace=trace)
            self.predictor.attach_telemetry(self.telemetry)

        self._cycle = 0
        self._fetch_pc = program.entry
        self._fetch_stall_until = 0
        self._in_flight: Deque[_InFlightFetch] = deque()
        self._fetch_buffer: Deque[_BufferedPacket] = deque()
        self._rob: Deque[_RobEntry] = deque()
        self._resolve_queue: Deque[_RobEntry] = deque()
        self._reg_ready = [0] * NUM_REGS
        self._next_correct_pc = program.entry
        self._oracle_pos = 0
        self._pred_skip_target: Optional[int] = None
        self._seq = 0
        self._running = True
        self._last_commit_cycle = 0
        # Per-ftq RAS bookkeeping: snapshot before the packet's RAS action,
        # and the slot at which the action happened (None if none).
        self._ras_snaps: Dict[int, Tuple[RasSnapshot, Optional[int]]] = {}
        self._sfb_pcs = (
            self._find_sfb_branches() if self.config.sfb_enabled else frozenset()
        )
        # Remaining instructions to commit per in-flight packet.
        self._packet_remaining: Dict[int, int] = {}
        # Per-PC fetch memoization (the program is immutable during a run):
        # pre-decoded slots, whole pre-decoded packets (the PacketCache
        # shared with the trace-driven backends), and dispatch-slot lists
        # keyed by (fetch_pc, length, followed next PC).
        self._memo = self.config.fetch_memoization
        self._predecode_cache: Dict[int, PreDecodedSlot] = {}
        self._packets = PacketCache(self._predecode_slot, self.config.fetch_width)
        self._dispatch_cache: Dict[Tuple[int, int, int], List[_DispatchSlot]] = {}

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def _find_sfb_branches(self) -> frozenset:
        """PCs of branches eligible for SFB predication (§VI-C).

        A short forwards branch skips a small run of simple instructions:
        the shadow must contain no control flow and no HALT, so the skipped
        instructions can execute as predicated no-ops.
        """
        eligible = set()
        for pc, instr in enumerate(self.program.instructions):
            distance = instr.forward_distance(pc)
            if distance is None or distance > self.config.sfb_max_distance:
                continue
            shadow = self.program.instructions[pc + 1 : pc + distance]
            if any(s.is_control_flow or s.op is Opcode.HALT for s in shadow):
                continue
            eligible.add(pc)
        return frozenset(eligible)

    def _predecode_slot(self, pc: int) -> PreDecodedSlot:
        if not self._memo:
            # Benchmarking mode: bypass every memoization layer, including
            # the shared ``lru_cache``, so the unoptimized path is measurable.
            return predecode_slot.__wrapped__(
                self.program.fetch(pc), pc in self._sfb_pcs
            )
        cached = self._predecode_cache.get(pc)
        if cached is not None:
            return cached
        slot = predecode_slot(self.program.fetch(pc), pc in self._sfb_pcs)
        self._predecode_cache[pc] = slot
        return slot


    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        self._cycle += 1
        self.stats.cycles = self._cycle
        self._commit()
        if not self._running:
            return
        self._resolve()
        self._dispatch()
        self._advance_fetch()

    def run(
        self,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        deadlock_limit: int = 20_000,
    ) -> CoreStats:
        """Simulate until the program halts or a cap is reached."""
        while self._running:
            self.step()
            if max_instructions is not None and (
                self.stats.committed_instructions >= max_instructions
            ):
                break
            if max_cycles is not None and self._cycle >= max_cycles:
                break
            if self._cycle - self._last_commit_cycle > deadlock_limit:
                raise RuntimeError(
                    f"no commit for {deadlock_limit} cycles at cycle "
                    f"{self._cycle} (pc={self._fetch_pc}, rob={len(self._rob)}, "
                    f"buffer={len(self._fetch_buffer)}, "
                    f"in_flight={len(self._in_flight)})"
                )
        self.stats.repair_walk_cycles = self.predictor.repair_stats.walk_cycles
        if self.telemetry is not None:
            self.stats.telemetry = self.telemetry.summary()
        return self.stats

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        committed = 0
        while committed < self.config.commit_width and self._rob:
            entry = self._rob[0]
            if entry.complete_cycle > self._cycle:
                break
            if entry.needs_resolution and not entry.resolved:
                break
            self._rob.popleft()
            committed += 1
            self._last_commit_cycle = self._cycle
            if entry.kind == _KIND_CORRECT:
                self.stats.committed_instructions += 1
                if entry.instr.is_cond_branch and entry.pc not in self._sfb_pcs:
                    self.stats.committed_branches += 1
                    self.stats.executions_by_pc[entry.pc] = (
                        self.stats.executions_by_pc.get(entry.pc, 0) + 1
                    )
                elif entry.instr.is_cond_branch:
                    self.stats.sfb_converted += 1
                elif entry.instr.is_jump:
                    self.stats.committed_jumps += 1
                self.oracle.trim(entry.oracle_index)
            elif entry.kind == _KIND_PREDICATED:
                self.stats.committed_predicated += 1
            else:  # pragma: no cover - protected by flush logic
                raise AssertionError("wrong-path instruction reached commit")
            if entry.ends_packet:
                self.predictor.commit_packet(entry.ftq_id)
                self._ras_snaps.pop(entry.ftq_id, None)
                self._packet_remaining.pop(entry.ftq_id, None)
            if entry.is_halt:
                self._running = False
                return

    # ------------------------------------------------------------------
    # Resolve
    # ------------------------------------------------------------------
    def _resolve(self) -> None:
        while self._resolve_queue:
            entry = self._resolve_queue[0]
            if entry.flushed:
                self._resolve_queue.popleft()
                continue
            if entry.complete_cycle + self.config.branch_resolve_delay > self._cycle:
                break
            self._resolve_queue.popleft()
            entry.resolved = True
            if entry.kind != _KIND_CORRECT:
                continue  # wrong-path resolutions never steer the machine
            record = entry.record
            if record.next_pc == entry.followed_next_pc:
                continue
            self._handle_mispredict(entry)
            break  # at most one flush per cycle

    def _handle_mispredict(self, entry: _RobEntry) -> None:
        record = entry.record
        if entry.instr.is_cond_branch:
            actual_taken = record.taken
            actual_target = record.next_pc if record.taken else None
            is_direction = True
            self.stats.branch_mispredicts += 1
            self.stats.mispredicts_by_pc[entry.pc] = (
                self.stats.mispredicts_by_pc.get(entry.pc, 0) + 1
            )
        else:
            actual_taken = True
            actual_target = record.next_pc
            is_direction = False
            self.stats.target_mispredicts += 1
        response = self.predictor.resolve_mispredict(
            entry.ftq_id,
            entry.slot_idx,
            actual_taken,
            actual_target,
            is_direction_mispredict=is_direction,
        )
        self.stats.flushes += 1

        # Flush younger ROB entries.
        while self._rob and self._rob[-1].seq > entry.seq:
            victim = self._rob.pop()
            victim.flushed = True
        entry.ends_packet = True
        self._packet_remaining.pop(entry.ftq_id, None)

        # Flush frontend state at or after the mispredicting packet.
        while self._fetch_buffer and self._fetch_buffer[-1].ftq_id >= entry.ftq_id:
            self._fetch_buffer.pop()
        self._in_flight.clear()

        self._restore_ras(entry)

        # Rewind the oracle window and the correct-path cursor.
        self._oracle_pos = entry.oracle_index + 1
        self._next_correct_pc = record.next_pc
        self._pred_skip_target = None

        # Redirect fetch (replay mode adds history-repair bubbles, §VI-B).
        self._fetch_pc = record.next_pc
        self._fetch_stall_until = (
            self._cycle
            + self.config.redirect_penalty
            + response.extra_redirect_bubbles
        )

    def _restore_ras(self, entry: _RobEntry) -> None:
        """Undo RAS pushes/pops younger than the mispredict point."""
        own = self._ras_snaps.get(entry.ftq_id)
        if own is not None:
            snapshot, action_slot = own
            if action_slot is not None and action_slot > entry.slot_idx:
                self.ras.restore(snapshot)
                self._drop_ras_snaps(entry.ftq_id, inclusive=False)
                self._ras_snaps[entry.ftq_id] = (snapshot, None)
                return
        oldest: Optional[Tuple[RasSnapshot, Optional[int]]] = None
        oldest_id = None
        for ftq_id, (snapshot, action_slot) in self._ras_snaps.items():
            if ftq_id > entry.ftq_id and action_slot is not None:
                if oldest_id is None or ftq_id < oldest_id:
                    oldest_id = ftq_id
                    oldest = (snapshot, action_slot)
        if oldest is not None:
            self.ras.restore(oldest[0])
        self._drop_ras_snaps(entry.ftq_id, inclusive=False)

    def _drop_ras_snaps(self, ftq_id: int, inclusive: bool) -> None:
        limit = ftq_id - 1 if inclusive else ftq_id
        for key in [k for k in self._ras_snaps if k > limit]:
            del self._ras_snaps[key]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        dispatched = 0
        while (
            dispatched < self.config.decode_width
            and self._fetch_buffer
            and len(self._rob) < self.config.rob_entries
        ):
            packet = self._fetch_buffer[0]
            slot = packet.slots[packet.pos]
            self._dispatch_slot(packet, slot)
            dispatched += 1
            packet.pos += 1
            if packet.pos >= len(packet.slots):
                self._fetch_buffer.popleft()
        if dispatched == 0 and not self._fetch_buffer:
            self.stats.decode_starved_cycles += 1

    def _dispatch_slot(self, packet: _BufferedPacket, slot: _DispatchSlot) -> None:
        instr = slot.instr
        kind = _KIND_WRONG
        record = None
        oracle_index = None

        if self._pred_skip_target is not None:
            if slot.pc == self._pred_skip_target:
                self._pred_skip_target = None
            else:
                kind = _KIND_PREDICATED
        if kind != _KIND_PREDICATED and slot.pc == self._next_correct_pc:
            rec = self.oracle.get(self._oracle_pos)
            if rec is not None and rec.pc == slot.pc:
                kind = _KIND_CORRECT
                record = rec
                oracle_index = self._oracle_pos
                self._oracle_pos += 1
                self._next_correct_pc = rec.next_pc
                if (
                    self.config.sfb_enabled
                    and slot.pc in self._sfb_pcs
                    and rec.taken
                ):
                    # Predicate the shadow: dispatch it as no-ops instead of
                    # redirecting (§VI-C).
                    self._pred_skip_target = rec.next_pc

        complete = self._timing_model(instr, record)
        needs_resolution = kind == _KIND_CORRECT and (
            (instr.is_cond_branch and slot.pc not in self._sfb_pcs)
            or instr.op is Opcode.JALR
        )
        entry = _RobEntry(
            seq=self._seq,
            pc=slot.pc,
            instr=instr,
            ftq_id=packet.ftq_id,
            slot_idx=slot.slot_idx,
            kind=kind,
            record=record,
            oracle_index=oracle_index,
            followed_next_pc=slot.followed_next_pc,
            complete_cycle=complete,
            needs_resolution=needs_resolution,
            ends_packet=slot.ends_packet,
            is_halt=(instr.op is Opcode.HALT and kind == _KIND_CORRECT),
        )
        self._seq += 1
        self._rob.append(entry)
        if needs_resolution:
            self._resolve_queue.append(entry)

    def _timing_model(self, instr: Instruction, record) -> int:
        ready = self._cycle + self.config.issue_latency
        for reg in (instr.rs1, instr.rs2):
            if reg:
                ready = max(ready, self._reg_ready[reg])
        latency = instr.latency
        if record is not None and record.mem_addr is not None:
            if instr.op is Opcode.LD:
                latency += self.dcache.load_penalty(record.mem_addr)
            else:
                self.dcache.store_touch(record.mem_addr)
        complete = ready + latency
        if instr.rd:
            self._reg_ready[instr.rd] = complete
        return complete

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def _advance_fetch(self) -> None:
        width = self.config.fetch_width
        redirected = False

        # Advance in-flight bundles one stage, oldest first, never letting a
        # bundle overtake its predecessor (a blocked final stage backs the
        # pipeline up).
        prev_age = self.predictor.depth + 1
        for bundle in self._in_flight:
            bundle.age = min(bundle.age + 1, prev_age - 1, self.predictor.depth)
            prev_age = bundle.age

        # Staged redirect checks: a later, more powerful prediction
        # overrides the path fetch followed (§IV-B, Alpha-21264 style).
        for position, bundle in enumerate(self._in_flight):
            if bundle.age < 2:
                continue
            stage = bundle.age
            if stage >= self.predictor.depth:
                new_next = bundle.result.next_fetch_pc
            else:
                new_next = bundle.stage_next[stage - 1]
            if new_next != bundle.followed_next_pc:
                bundle.followed_next_pc = new_next
                self._internal_redirect(position, bundle, new_next, stage)
                redirected = True
                break

        # Retire the oldest bundle into the fetch buffer.
        if (
            self._in_flight
            and self._in_flight[0].age >= self.predictor.depth
            and len(self._fetch_buffer) < self.config.fetch_buffer_packets
        ):
            bundle = self._in_flight.popleft()
            self._fetch_buffer.append(self._make_packet(bundle))

        # Issue a new fetch.
        if redirected or self._cycle < self._fetch_stall_until:
            self.stats.fetch_bubble_cycles += 1
            return
        if self._in_flight and self._in_flight[-1].age < 1:
            self.stats.fetch_bubble_cycles += 1
            return
        if len(self._in_flight) >= self.predictor.depth + 1:
            self.stats.fetch_bubble_cycles += 1
            return
        if not self.predictor.can_predict:
            self.stats.fetch_bubble_cycles += 1
            return
        if self.icache is not None:
            penalty = self.icache.fetch_penalty(self._fetch_pc)
            if penalty > 0:
                # Miss: the line is being refilled; fetch retries after the
                # penalty (the tag is already allocated, so the retry hits).
                self._fetch_stall_until = self._cycle + penalty
                self.stats.icache_stall_cycles += penalty
                self.stats.fetch_bubble_cycles += 1
                return
        self._issue_fetch()

    def _internal_redirect(
        self, position: int, bundle: _InFlightFetch, new_next: int, stage: int
    ) -> None:
        """A later-stage prediction overrides the fetched path."""
        while len(self._in_flight) > position + 1:
            self._in_flight.pop()
        walk = self.predictor.squash_after(bundle.result.ftq_id)
        self.stats.repair_walk_cycles += walk
        # Undo RAS actions of the squashed younger packets.
        oldest_id = None
        oldest_snap = None
        for ftq_id, (snapshot, action_slot) in self._ras_snaps.items():
            if ftq_id > bundle.result.ftq_id and action_slot is not None:
                if oldest_id is None or ftq_id < oldest_id:
                    oldest_id = ftq_id
                    oldest_snap = snapshot
        if oldest_snap is not None:
            self.ras.restore(oldest_snap)
        self._drop_ras_snaps(bundle.result.ftq_id, inclusive=False)
        self._fetch_pc = new_next
        self.stats.stage_redirects[stage] = (
            self.stats.stage_redirects.get(stage, 0) + 1
        )

    def _issue_fetch(self) -> None:
        fetch_pc = self._fetch_pc
        if self._memo:
            slots = self._packets.packet(fetch_pc)[0]
        else:
            width = packet_span(fetch_pc, self.config.fetch_width)
            slots = [self._predecode_slot(fetch_pc + i) for i in range(width)]
        ras_top = self.ras.peek()
        snapshot = self.ras.snapshot()
        result = self.predictor.predict(fetch_pc, slots, ras_top)
        action_slot: Optional[int] = None
        cfi = result.cut
        if cfi is not None and cfi < result.fetched_len:
            info = slots[cfi]
            if result.final.slots[cfi].redirects:
                if info.is_call:
                    self.ras.push(fetch_pc + cfi + 1)
                    action_slot = cfi
                elif info.is_ret:
                    self.ras.pop()
                    action_slot = cfi
        self._ras_snaps[result.ftq_id] = (snapshot, action_slot)
        fetch_width = self.config.fetch_width
        stage_next = tuple(
            vector.next_fetch_pc(fetch_width) for vector in result.staged
        )
        bundle = _InFlightFetch(result, stage_next)
        self._in_flight.append(bundle)
        self._fetch_pc = bundle.followed_next_pc
        self.stats.fetch_packets += 1

    def _make_packet(self, bundle: _InFlightFetch) -> _BufferedPacket:
        result = bundle.result
        count = result.fetched_len
        self._packet_remaining[result.ftq_id] = count
        key = (result.fetch_pc, count, result.next_fetch_pc)
        slots = self._dispatch_cache.get(key) if self._memo else None
        if slots is None:
            slots = []
            for i in range(count):
                pc = result.fetch_pc + i
                instr = self.program.fetch(pc) or _NOP
                last = i == count - 1
                followed = result.next_fetch_pc if last else pc + 1
                slots.append(
                    _DispatchSlot(
                        pc=pc,
                        instr=instr,
                        slot_idx=i,
                        followed_next_pc=followed,
                        ends_packet=last,
                    )
                )
            if self._memo:
                # Dispatch slots are immutable once built (per-packet dispatch
                # progress lives on _BufferedPacket), so identical packets can
                # share one slot list.
                self._dispatch_cache[key] = slots
        return _BufferedPacket(result.ftq_id, result.fetch_pc, slots)
