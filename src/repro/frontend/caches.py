"""Cache timing models: two-level data cache and an instruction cache.

Only load latency matters to the backend model (stores retire without
stalling commit in BOOM's LSU for our purposes), so the data-cache model
returns an *extra latency* per access: 0 for an L1 hit, the L2 penalty for
an L1 miss that hits L2, and the memory penalty otherwise.  LRU replacement
at both levels, allocate-on-miss.

The instruction cache models Table II's "8-way 32 KB ICache,
next-line prefetcher": a fetch that misses stalls the fetch unit for the
refill latency, and every demand access prefetches the next line — which
makes sequential code effectively free and puts the (small) cost on taken
branches to cold lines.  Synthetic workload footprints fit L1-I, so the
model mainly charges cold-start; it exists so the frontend is complete and
the prefetcher's effect is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.frontend.config import CacheConfig


class _SetAssocCache:
    """Minimal LRU set-associative tag store."""

    def __init__(self, n_sets: int, n_ways: int):
        self.n_sets = n_sets
        self.n_ways = n_ways
        # Per-set list of tags in LRU order (index -1 = most recent).
        self._sets: List[List[int]] = [[] for _ in range(n_sets)]

    def access(self, line_addr: int) -> bool:
        """Touch a line; return True on hit."""
        index = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        if len(ways) >= self.n_ways:
            ways.pop(0)
        ways.append(tag)
        return False

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()


@dataclass
class CacheStats:
    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0


@dataclass
class ICacheStats:
    accesses: int = 0
    misses: int = 0
    prefetches: int = 0


class DataCacheModel:
    """L1 + L2 load-latency model over word addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._l1 = _SetAssocCache(config.l1_sets, config.l1_ways)
        self._l2 = _SetAssocCache(config.l2_sets, config.l2_ways)
        self.stats = CacheStats()

    def load_penalty(self, word_addr: int) -> int:
        """Extra cycles beyond the L1 hit latency for this load."""
        line = word_addr // self.config.line_words
        self.stats.accesses += 1
        if self._l1.access(line):
            return 0
        self.stats.l1_misses += 1
        if self._l2.access(line):
            return self.config.l2_hit_penalty
        self.stats.l2_misses += 1
        return self.config.memory_penalty

    def store_touch(self, word_addr: int) -> None:
        """Stores allocate without stalling the pipeline model."""
        line = word_addr // self.config.line_words
        if not self._l1.access(line):
            self._l2.access(line)

    def reset(self) -> None:
        self._l1.reset()
        self._l2.reset()
        self.stats = CacheStats()


class InstructionCacheModel:
    """L1-I with next-line prefetch; returns stall cycles per fetch."""

    def __init__(
        self,
        n_sets: int = 64,
        n_ways: int = 8,
        line_words: int = 8,
        miss_penalty: int = 10,
        prefetch_next_line: bool = True,
    ):
        self.line_words = line_words
        self.miss_penalty = miss_penalty
        self.prefetch_next_line = prefetch_next_line
        self._tags = _SetAssocCache(n_sets, n_ways)
        self.stats = ICacheStats()

    def fetch_penalty(self, fetch_pc: int) -> int:
        """Stall cycles to deliver the line holding ``fetch_pc``."""
        line = fetch_pc // self.line_words
        self.stats.accesses += 1
        hit = self._tags.access(line)
        if self.prefetch_next_line:
            # The prefetcher runs regardless of hit/miss; its fill is free
            # by the time a sequential fetch arrives.
            if not self._tags.access(line + 1):
                self.stats.prefetches += 1
        if hit:
            return 0
        self.stats.misses += 1
        return self.miss_penalty

    def reset(self) -> None:
        self._tags.reset()
        self.stats = ICacheStats()
