"""Core configuration (Table II of the paper).

Defaults mirror the evaluated BOOM configuration: 16-byte (4-instruction)
fetch, 4-wide decode/commit, 128-entry ROB, 32 KB L1 data cache with a
512 KB L2 behind it.  The TLBs, FP pipelines, and load/store queues of
Table II are not separately modelled (they do not interact with branch
prediction); the issue model is an idealized dependency-driven scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Two-level data-cache model parameters (word-addressed)."""

    l1_sets: int = 64
    l1_ways: int = 8
    l2_sets: int = 1024
    l2_ways: int = 8
    line_words: int = 8
    l2_hit_penalty: int = 14
    memory_penalty: int = 80


@dataclass(frozen=True)
class ICacheConfig:
    """Instruction-cache model parameters (Table II: 8-way 32 KB, next-line
    prefetcher).  ``enabled=False`` models an ideal instruction supply."""

    enabled: bool = True
    n_sets: int = 64
    n_ways: int = 8
    line_words: int = 8
    miss_penalty: int = 10
    prefetch_next_line: bool = True


@dataclass(frozen=True)
class CoreConfig:
    """Host-core parameters (Table II analogue)."""

    fetch_width: int = 4
    decode_width: int = 4
    commit_width: int = 4
    rob_entries: int = 128
    fetch_buffer_packets: int = 6
    ras_depth: int = 32
    #: Cycles from dispatch to earliest issue.
    issue_latency: int = 1
    #: Extra cycles between a branch completing and its resolution reaching
    #: the frontend.
    branch_resolve_delay: int = 1
    #: Cycles of fetch silence after a backend redirect (on top of any
    #: history-replay bubbles reported by the composer).
    redirect_penalty: int = 1
    #: Short-forwards-branch (hammock) predication (§VI-C).
    sfb_enabled: bool = False
    sfb_max_distance: int = 8
    #: Memoize pre-decode and fetch-packet construction per PC.  Programs
    #: are immutable during a run, so this is result-neutral; the flag
    #: exists so benchmarks can measure the hot-path speedup it buys.
    fetch_memoization: bool = True
    #: Attach a :class:`repro.telemetry.TelemetryCollector` to the composed
    #: predictor and publish its summary on ``CoreStats.telemetry``.
    #: Result-neutral: telemetry observes events but never perturbs them.
    telemetry: bool = False
    cache: CacheConfig = field(default_factory=CacheConfig)
    icache: ICacheConfig = field(default_factory=ICacheConfig)
