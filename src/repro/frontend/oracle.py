"""The architectural oracle stream with rewind support.

The interpreter defines the correct dynamic path.  The speculative core
consumes oracle records at dispatch time; when a misprediction flushes
younger instructions, their records must be re-issued, so the stream keeps
a window of records from the oldest uncommitted index forward.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.interpreter import DynInstr, Interpreter
from repro.isa.program import Program


class OracleStream:
    """Random-access window over the architectural instruction stream."""

    def __init__(self, program: Program, max_instructions: int = 50_000_000):
        self._interp = Interpreter(program)
        self._gen = self._interp.run(max_instructions)
        self._buffer: List[Optional[DynInstr]] = []
        self._base = 0  # oracle index of _buffer[0]
        self._trimmed = 0  # logical trim point (may run ahead of _base)
        self._exhausted = False

    def get(self, index: int) -> Optional[DynInstr]:
        """Record at oracle index ``index``, or None past the end."""
        if index < self._trimmed:
            raise IndexError(
                f"oracle index {index} already trimmed (base {self._trimmed})"
            )
        while index - self._base >= len(self._buffer):
            if self._exhausted:
                return None
            try:
                self._buffer.append(next(self._gen))
            except StopIteration:
                self._exhausted = True
                return None
        return self._buffer[index - self._base]

    #: Committed records are dropped in chunks: deleting a list prefix is
    #: O(window), so per-instruction trims would make commit quadratic in
    #: the window size.  Chunking amortizes the cost to O(1) per record.
    _TRIM_CHUNK = 1024

    def trim(self, index: int) -> None:
        """Discard records below ``index`` (they are committed).

        Trims are batched: the records logically below ``index`` are
        immediately inaccessible to ``get`` but may be physically retained
        until a chunk's worth has accumulated.
        """
        if index > self._trimmed:
            self._trimmed = index
        if index - self._base < self._TRIM_CHUNK:
            return
        drop = min(index - self._base, len(self._buffer))
        del self._buffer[:drop]
        self._base += drop

    @property
    def memory(self):
        """Final architectural memory (valid once fully executed)."""
        return self._interp.memory
