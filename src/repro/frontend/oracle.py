"""The architectural oracle stream with rewind support.

The interpreter defines the correct dynamic path.  The speculative core
consumes oracle records at dispatch time; when a misprediction flushes
younger instructions, their records must be re-issued, so the stream keeps
a window of records from the oldest uncommitted index forward.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.interpreter import DynInstr, Interpreter
from repro.isa.program import Program


class OracleStream:
    """Random-access window over the architectural instruction stream."""

    def __init__(self, program: Program, max_instructions: int = 50_000_000):
        self._interp = Interpreter(program)
        self._gen = self._interp.run(max_instructions)
        self._buffer: List[Optional[DynInstr]] = []
        self._base = 0  # oracle index of _buffer[0]
        self._exhausted = False

    def get(self, index: int) -> Optional[DynInstr]:
        """Record at oracle index ``index``, or None past the end."""
        if index < self._base:
            raise IndexError(
                f"oracle index {index} already trimmed (base {self._base})"
            )
        while index - self._base >= len(self._buffer):
            if self._exhausted:
                return None
            try:
                self._buffer.append(next(self._gen))
            except StopIteration:
                self._exhausted = True
                return None
        return self._buffer[index - self._base]

    def trim(self, index: int) -> None:
        """Discard records below ``index`` (they are committed)."""
        if index <= self._base:
            return
        drop = min(index - self._base, len(self._buffer))
        del self._buffer[:drop]
        self._base += drop

    @property
    def memory(self):
        """Final architectural memory (valid once fully executed)."""
        return self._interp.memory
