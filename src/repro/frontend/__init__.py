"""The host core: a BOOM-like speculative superscalar machine model.

The paper integrates COBRA-generated predictors into the BOOM out-of-order
core and evaluates them with FPGA-accelerated simulation (§IV-C, §V).  This
package is the substitute substrate: a cycle-level model of a 4-wide fetch
unit with a staged prediction pipeline, redirect logic, pre-decode, RAS,
fetch buffer, and a simplified out-of-order backend (dependency-driven
completion times, in-order commit, branch resolution with flush/redirect).

It captures the phenomena the paper's evaluation turns on — prediction
latency bubbles, superscalar fetch cuts, wrong-path speculative history
corruption and repair, commit-time updates — without modelling the full
BOOM microarchitecture (see DESIGN.md for the substitution argument).
"""

from repro.frontend.config import CoreConfig, CacheConfig
from repro.frontend.caches import DataCacheModel
from repro.frontend.core import Core, CoreStats
from repro.frontend.oracle import OracleStream

__all__ = [
    "CoreConfig",
    "CacheConfig",
    "DataCacheModel",
    "Core",
    "CoreStats",
    "OracleStream",
]
