"""Spec-derived table runtime: storage executed from a :class:`TableSpec`.

A :class:`DerivedTable` is the phase-2 counterpart of the declarative
spec layer: where :mod:`repro.spec` *describes* a storage structure and
the SPEC analyzer *verifies* the description against a hand
implementation, a ``DerivedTable`` *is* the implementation — allocation,
row selection, closed-form update application, and storage accounting
are all executed from the :class:`~repro.spec.TableSpec`, so they cannot
drift from it.

What the runtime covers:

- **Allocation**: one numpy array per :class:`~repro.spec.FieldSpec`,
  shaped ``(ways, entries)`` for multi-way tables and ``(entries,)``
  otherwise, with a trailing lane axis when ``count > 1`` (one lane per
  fetch slot).  Dtypes follow the field width: 1-bit fields are boolean,
  fields up to 8 bits are ``uint8``, wider fields are ``int64``.
- **Row selection**: :meth:`row` evaluates the table's declared
  :meth:`IndexFn.compute <repro.spec.IndexFn.compute>` closed form;
  :meth:`way_of` applies the library's way-selection hash.
- **Closed-form updates**: :meth:`train` applies the
  ``saturating-counter`` rule (inc/dec with bounds), :meth:`roll` the
  ``shift-register`` rule.  Both write through to the arrays, so scalar
  components delegate their ``on_update`` bodies here.
- **Entry packing**: :meth:`pack_entry` / :meth:`unpack_entry` assemble
  a row's fields into one LSB-first integer — the payload layout the RTL
  emitter (:mod:`repro.derive.rtl`) gives the memory array.
- **Storage accounting**: :func:`derived_storage` builds a component's
  :class:`~repro.core.interface.StorageReport` from its spec, correct by
  construction.

Update rules outside :data:`~repro.spec.CLOSED_FORM_UPDATES`
(``allocate-on-miss``, ``exact-event``) have no closed form; components
keep those event paths hand-written but still store their state in the
derived arrays, so storage and geometry stay spec-owned.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro._util import hash_pc, mask, saturating_update, shift_in
from repro.core.interface import StorageReport
from repro.spec import ComponentSpec, FieldSpec, TableSpec


def field_dtype(field: FieldSpec) -> type:
    """Numpy dtype for one spec field: bool / uint8 / int64 by width."""
    if field.bits == 1:
        return np.bool_
    if field.bits <= 8:
        return np.uint8
    return np.int64


def field_shape(table: TableSpec, field: FieldSpec) -> Tuple[int, ...]:
    """Canonical array shape for ``field`` inside ``table``."""
    shape: Tuple[int, ...] = (
        (table.ways, table.entries) if table.ways > 1 else (table.entries,)
    )
    if field.count > 1:
        shape = shape + (field.count,)
    return shape


class DerivedTable:
    """Runtime storage structure generated from a :class:`TableSpec`."""

    def __init__(
        self, spec: TableSpec, init: Optional[Mapping[str, int]] = None
    ):
        self.spec = spec
        self._init = dict(init or {})
        self._fields: Dict[str, FieldSpec] = {f.name: f for f in spec.fields}
        self._arrays: Dict[str, np.ndarray] = {}
        for field in spec.fields:
            value = self._init.get(field.name, 0)
            self._arrays[field.name] = np.full(
                field_shape(spec, field), value, dtype=field_dtype(field)
            )
        # Hot-path constants: train()/roll()/row() sit on the scalar
        # per-branch update path, so resolve what the spec implies once.
        self._sole_field = (
            spec.fields[0].name if len(spec.fields) == 1 else None
        )
        self._sole_bits = spec.fields[0].bits
        self._multiway = spec.ways > 1
        self._is_counter = spec.update == "saturating-counter"
        self._compute = spec.index.compute if spec.index is not None else None

    # -- array access --------------------------------------------------
    def _only_field(self) -> str:
        if len(self._fields) != 1:
            raise KeyError(
                f"table {self.spec.name!r} has {len(self._fields)} fields; "
                f"name one explicitly"
            )
        return next(iter(self._fields))

    def data(self, field: Optional[str] = None) -> np.ndarray:
        """The raw array for ``field`` in its canonical shape."""
        return self._arrays[field or self._only_field()]

    def lanes(self, field: Optional[str] = None) -> np.ndarray:
        """2-D ``(entries, count)`` view of a single-way laned field."""
        arr = self.data(field)
        if self.spec.ways > 1:
            raise ValueError(
                f"table {self.spec.name!r} is multi-way; lanes() is for "
                f"per-packet laned tables"
            )
        return arr.reshape(self.spec.entries, -1)

    def flat(self, field: Optional[str] = None) -> np.ndarray:
        """1-D ``(ways * entries,)`` view (row-major by way)."""
        return self.data(field).reshape(-1)

    # -- row selection -------------------------------------------------
    def row(
        self, fetch_pc: int, ghist: int = 0, lhist: int = 0, phist: int = 0
    ) -> int:
        """The row the spec's :class:`IndexFn` closed form selects."""
        compute = self._compute
        index = (
            compute(fetch_pc, ghist, lhist, phist)
            if compute is not None
            else None
        )
        if index is None:
            scheme = self.spec.index.scheme if self.spec.index else None
            raise ValueError(
                f"table {self.spec.name!r} declares scheme "
                f"{scheme!r}: no closed-form row"
            )
        return index

    def way_of(self, branch_pc: int) -> int:
        """Way-selection hash for multi-way tables (identity for 1 way)."""
        ways = self.spec.ways
        return hash_pc(branch_pc, max(1, (ways - 1).bit_length())) % ways

    # -- closed-form updates -------------------------------------------
    def _cell(self, field: str, row: int, way: int, lane: Optional[int]):
        arr = self._arrays[field]
        if self._multiway:
            key = (way, row) if lane is None else (way, row, lane)
        else:
            key = row if lane is None else (row, lane)
        return arr, key

    def train(
        self,
        row: int,
        taken: bool,
        *,
        field: Optional[str] = None,
        lane: Optional[int] = None,
        way: int = 0,
        counter: Optional[int] = None,
    ) -> int:
        """Apply the ``saturating-counter`` rule to one cell.

        ``counter`` is the predict-time value carried in the metadata
        (§III-D: updates avoid a second read port); when omitted the
        current cell is read instead.
        """
        if not self._is_counter:
            raise ValueError(
                f"table {self.spec.name!r} declares update "
                f"{self.spec.update!r}, not saturating-counter"
            )
        if field is None and self._sole_field is not None:
            name, bits = self._sole_field, self._sole_bits
        else:
            name = field or self._only_field()
            bits = self._fields[name].bits
        arr, key = self._cell(name, row, way, lane)
        if counter is None:
            counter = int(arr[key])
        value = saturating_update(counter, taken, bits)
        arr[key] = value
        return value

    def roll(
        self,
        row: int,
        taken: bool,
        *,
        field: Optional[str] = None,
        lane: Optional[int] = None,
        way: int = 0,
        current: Optional[int] = None,
    ) -> int:
        """Apply the ``shift-register`` rule (shift in one outcome bit).

        Declared shift-register tables and hand-written ``exact-event``
        protocols (which re-shift from metadata on repair) both use this
        closed form; ``current`` overrides the cell read for the latter.
        """
        if field is None and self._sole_field is not None:
            name, bits = self._sole_field, self._sole_bits
        else:
            name = field or self._only_field()
            bits = self._fields[name].bits
        arr, key = self._cell(name, row, way, lane)
        if current is None:
            current = int(arr[key])
        value = shift_in(current, taken, bits)
        arr[key] = value
        return value

    # -- entry packing -------------------------------------------------
    @property
    def entry_bits(self) -> int:
        return self.spec.entry_bits

    def pack_entry(self, row: int, way: int = 0) -> int:
        """One row's fields packed LSB-first, lane-major within a field."""
        packed = 0
        shift = 0
        for field in self.spec.fields:
            arr, key = self._cell(field.name, row, way, None)
            values = np.atleast_1d(arr[key])
            for value in values:
                packed |= (int(value) & mask(field.bits)) << shift
                shift += field.bits
        return packed

    def unpack_entry(self, packed: int) -> Dict[str, object]:
        """Inverse of :meth:`pack_entry` (lists for ``count > 1``)."""
        out: Dict[str, object] = {}
        shift = 0
        for field in self.spec.fields:
            values = []
            for _ in range(field.count):
                values.append((packed >> shift) & mask(field.bits))
                shift += field.bits
            out[field.name] = values if field.count > 1 else values[0]
        return out

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Refill every field with its declared initial value, in place."""
        for field in self.spec.fields:
            self._arrays[field.name].fill(self._init.get(field.name, 0))

    @property
    def storage_bits(self) -> int:
        return self.spec.total_bits


def derived_storage(
    name: str,
    spec: ComponentSpec,
    *,
    access_bits: Optional[int] = None,
    zero_keys: Tuple[str, ...] = (),
) -> StorageReport:
    """A component's :class:`StorageReport`, correct by construction.

    Totals and breakdown come from :meth:`ComponentSpec.storage_report`;
    ``access_bits`` defaults to the sum of entry widths (one entry read
    per table per prediction, the energy model's unit).  ``zero_keys``
    adds zero-bit breakdown entries for structures a variant elides
    (e.g. the two-level G variants' level-1 table) so breakdown keys stay
    stable across variants.
    """
    report = spec.storage_report(name)
    breakdown = dict(report.breakdown)
    for key in zero_keys:
        breakdown.setdefault(key, 0)
    if access_bits is None:
        access_bits = sum(table.entry_bits for table in spec.tables)
    return StorageReport(
        name,
        sram_bits=report.sram_bits,
        flop_bits=report.flop_bits,
        breakdown=breakdown,
        access_bits=access_bits,
    )
