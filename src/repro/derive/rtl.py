"""Per-table Verilog emission from :class:`TableSpec`/:class:`IndexFn`.

The third leg of the derivation layer: where :mod:`repro.derive.tables`
executes a spec in Python and :mod:`repro.derive.kernels` vectorizes it,
this module renders it as structural Verilog-2001 — one module per
declared table, with

- a **memory array** sized ``entries * ways`` rows of ``entry_bits``
  (the :class:`~repro.spec.FieldSpec` packing, LSB-first, matching
  :meth:`DerivedTable.pack_entry <repro.derive.tables.DerivedTable.pack_entry>`);
- the **index hash**: the declared :class:`~repro.spec.IndexFn` closed
  form (``hash_pc``, folded-history XOR, gshare/gselect combinations,
  raw low history bits) as combinational assigns, so the read row is
  computed inside the table module exactly as the Python runtime
  computes it;
- a **read port** (``rdata`` for the hashed row) and an **update port**
  (``wen``/``waddr``/``wdata``), plus the closed-form next-state helper
  the update rule implies: a saturating inc/dec function for
  ``saturating-counter`` tables, a shift-in function for
  ``shift-register`` tables.  ``allocate-on-miss`` and ``exact-event``
  tables get the raw write port with the rule noted — their update walks
  are component-specific, like their Python counterparts.

``custom``-indexed tables take the row as an input port (the hash has no
declared closed form); ``none``-indexed (CAM) tables omit the read index
entirely.  :mod:`repro.rtl.verilog` instantiates these modules inside
each component's unit module.
"""

from __future__ import annotations

from typing import List, Optional

from repro._util import is_power_of_two, log2_exact
from repro.spec import IndexFn, TableSpec

#: Fetch-PC width of the shared buses (mirrors ``repro.rtl.verilog``).
PC_BITS = 30


def table_module_name(component_name: str, table: TableSpec) -> str:
    return f"{component_name}_{table.name}_table"


def history_port(fn: Optional[IndexFn]) -> Optional[tuple]:
    """``(port_name, width)`` of the history input a table needs, if any."""
    if fn is None:
        return None
    if fn.scheme in ("ghist", "gshare", "ghist_raw"):
        return ("ghist", fn.history_bits)
    if fn.scheme == "gselect":
        return ("ghist", max(1, fn.index_bits // 2))
    if fn.scheme == "lhist":
        return ("lhist", fn.history_bits)
    if fn.scheme in ("phist", "pshare"):
        return ("phist", fn.history_bits)
    return None


def _uses_pc(fn: Optional[IndexFn]) -> bool:
    return fn is not None and fn.scheme in (
        "pc",
        "gshare",
        "gselect",
        "lhist",
        "pshare",
    )


def _pc_key_expr(fn: IndexFn) -> str:
    """The hashed PC key: packet number or raw branch PC."""
    if fn.key == "packet" and fn.fetch_width > 1:
        assert is_power_of_two(fn.fetch_width)
        return f"(pc >> {log2_exact(fn.fetch_width)})"
    return "pc"


def _hash_pc_expr(key: str, bits: int) -> str:
    """``hash_pc``: the PC folded onto ``bits`` by two shifted XORs."""
    return f"({key} ^ ({key} >> {bits}) ^ ({key} >> {2 * bits}))"

def _fold_expr(port: str, history_bits: int, bits: int) -> str:
    """``fold_history``: XOR of ``bits``-wide chunks of the register."""
    if history_bits <= bits:
        return port
    chunks = []
    lo = 0
    while lo < history_bits:
        hi = min(history_bits, lo + bits) - 1
        chunks.append(f"{port}[{hi}:{lo}]")
        lo += bits
    return "(" + " ^ ".join(chunks) + ")"


def _index_hash_lines(fn: IndexFn, index_bits: int) -> List[str]:
    """Combinational assigns computing ``rindex`` from the closed form."""
    decl = f"    wire [{index_bits - 1}:0] rindex ="
    if fn.scheme == "pc":
        return [f"{decl} {_hash_pc_expr(_pc_key_expr(fn), index_bits)};"]
    if fn.scheme == "ghist":
        return [f"{decl} {_fold_expr('ghist', fn.history_bits, index_bits)};"]
    if fn.scheme == "gshare":
        return [
            f"{decl} {_hash_pc_expr(_pc_key_expr(fn), index_bits)}",
            f"        ^ {_fold_expr('ghist', fn.history_bits, index_bits)};",
        ]
    if fn.scheme == "gselect":
        hist_part = index_bits // 2
        pc_part = index_bits - hist_part
        pc_hash = _hash_pc_expr(_pc_key_expr(fn), pc_part)
        return [
            f"    wire [{pc_part - 1}:0] pc_hash = {pc_hash};",
            f"{decl} {{pc_hash, ghist[{hist_part - 1}:0]}};",
        ]
    if fn.scheme == "ghist_raw":
        low = min(fn.history_bits, index_bits)
        return [f"{decl} ghist[{low - 1}:0];"]
    if fn.scheme == "lhist":
        pc_bits = max(index_bits - 2, 1)
        return [
            f"{decl} {_fold_expr('lhist', fn.history_bits, index_bits)}",
            f"        ^ {_hash_pc_expr(_pc_key_expr(fn), pc_bits)};",
        ]
    if fn.scheme == "phist":
        return [f"{decl} {_fold_expr('phist', fn.history_bits, index_bits)};"]
    assert fn.scheme == "pshare", fn.scheme
    return [
        f"{decl} {_hash_pc_expr(_pc_key_expr(fn), index_bits)}",
        f"        ^ {_fold_expr('phist', fn.history_bits, index_bits)};",
    ]


def _update_helper_lines(table: TableSpec) -> List[str]:
    """The closed-form next-state function the update rule implies."""
    field = table.fields[0]
    bits = field.bits
    if table.update == "saturating-counter":
        top = (1 << bits) - 1
        return [
            f"    // saturating-counter closed form ({bits}-bit lanes)",
            f"    function [{bits - 1}:0] ctr_next;",
            f"        input [{bits - 1}:0] cur;",
            "        input taken;",
            "        begin",
            f"            ctr_next = taken ? (cur == {bits}'d{top} ? cur"
            " : cur + 1'b1)",
            f"                             : (cur == {bits}'d0 ? cur"
            " : cur - 1'b1);",
            "        end",
            "    endfunction",
        ]
    if table.update == "shift-register":
        return [
            f"    // shift-register closed form ({bits}-bit register)",
            f"    function [{bits - 1}:0] hist_next;",
            f"        input [{bits - 1}:0] cur;",
            "        input taken;",
            "        begin",
            f"            hist_next = {{cur[{bits - 2}:0], taken}};"
            if bits > 1
            else "            hist_next = taken;",
            "        end",
            "    endfunction",
        ]
    return [
        f"    // update rule {table.update!r}: write walk is"
        " component-specific",
    ]


def emit_table_module(component_name: str, table: TableSpec) -> str:
    """One Verilog module realizing a declared table."""
    fn = table.index
    rows = table.entries * table.ways
    addr_bits = max(1, (rows - 1).bit_length())
    entry_bits = table.entry_bits
    fields = ", ".join(
        f"{f.name}[{f.bits}]" + (f" x{f.count}" if f.count > 1 else "")
        for f in table.fields
    )
    ports: List[str] = ["    input  wire clk,"]
    if _uses_pc(fn):
        ports.append(f"    input  wire [{PC_BITS - 1}:0] pc,")
    hist = history_port(fn)
    if hist is not None:
        ports.append(f"    input  wire [{hist[1] - 1}:0] {hist[0]},")
    body: List[str] = []
    scheme = fn.scheme if fn is not None else "none"
    if scheme == "custom":
        ports.append(f"    input  wire [{fn.index_bits - 1}:0] rindex,")
        body.append("    // custom index hash: computed by the component")
    elif scheme == "none":
        body.append(
            "    // fully associative (CAM): match logic is"
            " component-specific"
        )
    else:
        body.extend(_index_hash_lines(fn, fn.index_bits))
    if scheme != "none":
        ports.append(f"    output wire [{entry_bits - 1}:0] rdata,")
        body.append("    assign rdata = mem[rindex];")
    ports.extend(
        [
            "    // update port",
            "    input  wire wen,",
            f"    input  wire [{addr_bits - 1}:0] waddr,",
            f"    input  wire [{entry_bits - 1}:0] wdata",
        ]
    )
    helper = _update_helper_lines(table)
    lines = [
        f"// {table.kind} table {table.name!r}: {table.entries} entries x "
        f"{table.ways} way(s), {entry_bits}-bit entries ({fields})",
        f"module {table_module_name(component_name, table)} (",
        *ports,
        ");",
        f"    reg [{entry_bits - 1}:0] mem [0:{rows - 1}];",
        *body,
        *helper,
        "    always @(posedge clk) begin",
        "        if (wen) mem[waddr] <= wdata;",
        "    end",
        "endmodule",
        "",
    ]
    return "\n".join(lines)


def table_instance_lines(component_name: str, table: TableSpec) -> List[str]:
    """Wires + instantiation of a table module inside its unit module."""
    fn = table.index
    entry_bits = table.entry_bits
    rows = table.entries * table.ways
    addr_bits = max(1, (rows - 1).bit_length())
    scheme = fn.scheme if fn is not None else "none"
    conns = [".clk(clk)"]
    if _uses_pc(fn):
        conns.append(".pc(fetch_pc)")
    hist = history_port(fn)
    if hist is not None:
        port, width = hist
        conns.append(f".{port}({port}[{width - 1}:0])")
    lines = []
    if scheme == "custom":
        lines.append(
            f"    wire [{fn.index_bits - 1}:0] {table.name}_rindex;"
            " // component hash"
        )
        conns.append(f".rindex({table.name}_rindex)")
    if scheme != "none":
        lines.append(f"    wire [{entry_bits - 1}:0] {table.name}_rdata;")
        conns.append(f".rdata({table.name}_rdata)")
    lines.extend(
        [
            f"    wire {table.name}_wen;",
            f"    wire [{addr_bits - 1}:0] {table.name}_waddr;",
            f"    wire [{entry_bits - 1}:0] {table.name}_wdata;",
        ]
    )
    conns.extend(
        [
            f".wen({table.name}_wen)",
            f".waddr({table.name}_waddr)",
            f".wdata({table.name}_wdata)",
        ]
    )
    name = table_module_name(component_name, table)
    lines.append(f"    {name} u_{table.name} ({', '.join(conns)});")
    return lines
