"""Spec-derived execution: tables, kernels, and RTL generated from specs.

Phase 2 of the declarative spec layer (:mod:`repro.spec`).  PR 8 made
every component *declare* its table geometry, index closed forms, and
update-rule classes, and verified the declarations against the hand
implementations (SPEC001-008).  This package *executes* the
declarations, so one spec drives every layer that used to be hand-kept
in sync:

- :mod:`repro.derive.tables` — the :class:`DerivedTable` scalar runtime:
  allocation, ``IndexFn``-backed row selection, closed-form update
  application, field packing, and storage accounting, all from a
  :class:`~repro.spec.TableSpec`.
- :mod:`repro.derive.kernels` — generated columnar kernels
  parameterizing the :mod:`repro.kernels.vector_ops` primitives from the
  spec (replacing the hand-written HBIM/two-level/GTag kernel classes).
- :mod:`repro.derive.rtl` — per-table Verilog modules (memory array,
  index hash, update port) consumed by :mod:`repro.rtl.verilog`.
- :mod:`repro.derive.reference` — frozen pre-refactor scalar
  implementations: the oracle side of analyzer rule SPEC009 and the
  fuzzer's ``derive`` leg, keeping the migration differentially gated.
- :mod:`repro.derive.coverage` — the CI gate asserting the migrated
  families actually route through this package.

Components in the migrated families hold their state in
``component.derived_tables`` (a dict of table name →
:class:`DerivedTable`); custom-hash components (TAGE, ITTAGE, loop, BTB)
keep hand-written walks but consume the same spec-first API.
"""

from repro.derive.coverage import (
    DERIVED_BASES,
    assert_derived_coverage,
    derivation_problems,
    kernel_is_derived,
)
from repro.derive.kernels import derived_kernel
from repro.derive.reference import twin_dims, twin_pair
from repro.derive.tables import DerivedTable, derived_storage

__all__ = [
    "DERIVED_BASES",
    "DerivedTable",
    "assert_derived_coverage",
    "derivation_problems",
    "derived_kernel",
    "derived_storage",
    "kernel_is_derived",
    "twin_dims",
    "twin_pair",
]
