"""Spec-derived columnar kernels: batch execution generated from specs.

PR 6 hand-ported each table component's lookup/update loop to a numpy
batch kernel; PR 8 made every component declare the geometry and index
closed forms those ports re-encoded.  This module closes the loop: for
any component whose trained table is closed-form (``saturating-counter``
update, engine-drivable :class:`~repro.spec.IndexFn`), the kernel is
*generated* from the spec, parameterizing the same
:mod:`repro.kernels.vector_ops` primitives (vectorized index hashes,
segmented counter forwarding) the hand ports used.

Two kernel shapes cover the migrated families, selected by the trained
table's declared PC key:

``key == "packet"`` → :class:`LaneCounterKernel`
    One row read per fetch packet, one counter lane per fetch slot
    (HBIM and its index-scheme variants; GTag).  An optional
    ``allocate-on-miss`` tag table gates the row: only tag-hit packets
    predict and train, and — per the library's tagged-hit semantics —
    a gated table claims only non-jump lanes, while an ungated base
    table claims every slot (§III-F).  Tag hashes have no declared
    closed form, so a gated component supplies its vectorized tag
    column through a ``tag_columns(ctx)`` hook (the columnar analogue
    of the scalar custom-hash hooks).

``key == "branch_pc"`` → :class:`CandidateCounterKernel`
    One candidate branch per packet — the first incoming
    hit-and-branch lane — reads one counter from a multi-way pattern
    table (two-level GAg/GAp).  Way selection uses the library's
    way-of hash; the row comes from the ``ghist_raw`` closed form.

Both shapes follow the engine's three-phase protocol (see
:mod:`repro.kernels.components`): every write's value derives from
predict-time metadata, so counters forward exactly through the window
(:func:`~repro.kernels.vector_ops.forward_saturating`) and ``mutates``
never cuts.  Allocations only happen on mispredicted packets, which end
the segment before they commit, so gate tags stay frozen-exact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import mask
from repro.kernels.vector_ops import (
    counter_taken_vec,
    fold_history_vec,
    forward_saturating,
    hash_pc_vec,
)
from repro.spec import IndexFn, TableSpec

#: IndexFn schemes :func:`index_columns` vectorizes.
VECTOR_SCHEMES = frozenset({"pc", "ghist", "gshare", "gselect", "ghist_raw"})


def index_columns(fn: IndexFn, ctx) -> np.ndarray:
    """Vectorized :meth:`IndexFn.compute` over a segment context.

    Evaluates the declared closed form once per packet in the window,
    using the packet-aligned PC column (``ctx.aligned``) — for
    ``key == "packet"`` the scalar form divides the fetch PC down to the
    packet number, which equals ``aligned // fetch_width``.
    """
    bits = fn.index_bits
    if fn.scheme == "ghist_raw":
        low = ctx.req_ghist & np.uint64(mask(fn.history_bits))
        return low.astype(np.int64) & mask(bits)
    pc = ctx.aligned // fn.fetch_width if fn.key == "packet" else ctx.aligned
    if fn.scheme == "pc":
        return hash_pc_vec(pc, bits)
    if fn.scheme == "ghist":
        return fold_history_vec(ctx.req_ghist, fn.history_bits, bits)
    if fn.scheme == "gshare":
        return hash_pc_vec(pc, bits) ^ fold_history_vec(
            ctx.req_ghist, fn.history_bits, bits
        )
    if fn.scheme == "gselect":
        hist_part = bits // 2
        pc_part = bits - hist_part
        low = (ctx.req_ghist & np.uint64(mask(hist_part))).astype(np.int64)
        return (hash_pc_vec(pc, pc_part) << hist_part) | low
    raise ValueError(f"no vectorized closed form for scheme {fn.scheme!r}")


class LaneCounterKernel:
    """Generated packet-keyed laned-counter kernel (HBIM family, GTag)."""

    def __init__(
        self,
        component,
        counters: TableSpec,
        tags: Optional[TableSpec] = None,
    ):
        self.c = component
        self.counters = counters
        self.tags = tags
        table = component.derived_tables[counters.name]
        self._ctr = table.lanes()
        self._bits = counters.fields[0].bits
        if tags is not None:
            gate = component.derived_tables[tags.name]
            self._gate_valid = gate.data("valid")
            self._gate_tag = gate.data("tag")

    def lookup(self, ctx, state):
        c = self.c
        idx = index_columns(self.counters.index, ctx)
        rows = self._ctr[idx].astype(np.int64)
        # Forward every live (row, lane) counter through the window: the
        # value each packet reads equals the scalar sequential value, so
        # counter movement never cuts a segment — updates come from
        # predict-time metadata, and allocations (gated tables) only
        # happen on mispredicted packets, which end the segment.
        if self.tags is not None:
            tag = c.tag_columns(ctx)
            hit = self._gate_valid[idx] & (self._gate_tag[idx] == tag)
            hrows = np.flatnonzero(hit)
            key = (
                idx[hrows, None] * ctx.W + np.arange(ctx.W)[None, :]
            ).ravel()
            upd = ctx.upd_cond[hrows].ravel()
            taken = ctx.rtaken_grid[hrows].ravel()
            v0 = rows[hrows].ravel()
            if len(hrows):
                pre, _post, _last = forward_saturating(
                    key, upd, taken, v0, self._bits
                )
                rows = rows.copy()
                rows[hrows] = pre.reshape(len(hrows), ctx.W)
        else:
            # Ungated: every row is live, so skip the gather/scatter.
            hit = None
            hrows = None
            key = (idx[:, None] * ctx.W + np.arange(ctx.W)[None, :]).ravel()
            upd = ctx.upd_cond.ravel()
            taken = ctx.rtaken_grid.ravel()
            v0 = rows.ravel()
            pre, _post, _last = forward_saturating(
                key, upd, taken, v0, self._bits
            )
            rows = pre.reshape(ctx.P, ctx.W)
        ctx.scratch[c.name] = (hrows, key, upd, taken, v0)
        out = state.copy()
        # A gated (tagged) table claims only its non-jump hit lanes; an
        # ungated base table provides a direction for every slot.
        if self.tags is not None:
            sel = hit[:, None] & ctx.lane_valid & ~out.is_jump
            out.hit = out.hit | sel
        else:
            sel = ctx.lane_valid & ~out.is_jump
            out.hit = out.hit | ctx.lane_valid
        out.taken = np.where(
            sel, counter_taken_vec(rows, self._bits), out.taken
        )
        return out

    def mutates(self, ctx):
        return np.zeros(ctx.P, dtype=bool)

    def commit(self, ctx, accepted):
        hrows, key, upd, taken, v0 = ctx.scratch[self.c.name]
        if hrows is None:
            n = accepted * ctx.W
        else:
            n = int(np.searchsorted(hrows, accepted)) * ctx.W
        if n == 0:
            return
        _pre, post, last = forward_saturating(
            key[:n], upd[:n], taken[:n], v0[:n], self._bits
        )
        sel = last & (post != v0[:n])
        if sel.any():
            kk = key[:n][sel]
            self._ctr[kk // ctx.W, kk % ctx.W] = post[sel].astype(
                self._ctr.dtype
            )


class CandidateCounterKernel:
    """Generated branch-keyed pattern-counter kernel (two-level GAg/GAp)."""

    def __init__(self, component, counters: TableSpec):
        self.c = component
        self.counters = counters
        table = component.derived_tables[counters.name]
        self._table = table
        self._flat = table.flat()
        self._bits = counters.fields[0].bits

    def lookup(self, ctx, state):
        c = self.c
        ct = self.counters
        cand_grid = state.hit & state.is_branch & ctx.lane_valid
        has_cand = cand_grid.any(axis=1)
        cand = np.argmax(cand_grid, axis=1)  # first candidate lane
        branch_pc = ctx.aligned + cand
        way_bits = max(1, (ct.ways - 1).bit_length())
        way = hash_pc_vec(branch_pc, way_bits) % ct.ways
        index = index_columns(ct.index, ctx)
        key_all = way * ct.entries + index
        ctr = self._flat[key_all].astype(np.int64)
        # One pattern counter read + trained per candidate packet, from
        # predict-time metadata: forward it through the window.
        rows = np.arange(ctx.P)
        crows = np.flatnonzero(has_cand)
        key = key_all[crows]
        upd = (has_cand & ctx.upd_cond[rows, cand])[crows]
        taken = ctx.rtaken_grid[rows, cand][crows]
        v0 = ctr[crows]
        if len(crows):
            pre, _post, _last = forward_saturating(
                key, upd, taken, v0, self._bits
            )
            ctr = ctr.copy()
            ctr[crows] = pre
        ctx.scratch[c.name] = (crows, key, upd, taken, v0)
        out = state.copy()
        out.hit[crows, cand[crows]] = True
        out.taken[crows, cand[crows]] = counter_taken_vec(
            ctr[crows], self._bits
        )
        return out

    def mutates(self, ctx):
        return np.zeros(ctx.P, dtype=bool)

    def commit(self, ctx, accepted):
        crows, key, upd, taken, v0 = ctx.scratch[self.c.name]
        n = int(np.searchsorted(crows, accepted))
        if n == 0:
            return
        _pre, post, last = forward_saturating(
            key[:n], upd[:n], taken[:n], v0[:n], self._bits
        )
        sel = last & (post != v0[:n])
        if sel.any():
            self._flat[key[:n][sel]] = post[sel].astype(self._flat.dtype)


def derived_kernel(component):
    """The generated columnar kernel for a spec-carrying component.

    Returns None when the spec declares no kernel (``kernel == "none"``:
    local/path-history schemes, the two-level P variants) or when the
    trained table's shape falls outside the generated families — the
    caller then falls back to a hand-written kernel or the scalar path.

    The kernel is generated from the spec the component was *built*
    from (the ``_spec`` cached at construction, when present), not the
    live ``spec()`` hook: state layout is fixed at construction, and a
    shadowed declaration must not silently re-wire the runtime.
    """
    spec = getattr(component, "_spec", None)
    if spec is None:
        spec = component.spec()
    if spec is None or spec.kernel == "none":
        return None
    trained = [t for t in spec.tables if t.update == "saturating-counter"]
    if len(trained) != 1:
        return None
    counters = trained[0]
    if (
        counters.index is None
        or counters.index.scheme not in VECTOR_SCHEMES
        or len(counters.fields) != 1
    ):
        return None
    gates = [t for t in spec.tables if t.update == "allocate-on-miss"]
    if counters.index.key == "packet":
        tags = gates[0] if gates else None
        if tags is not None and not hasattr(component, "tag_columns"):
            return None
        return LaneCounterKernel(component, counters, tags)
    if counters.index.key == "branch_pc" and not gates:
        return CandidateCounterKernel(component, counters)
    return None
