"""Frozen pre-refactor scalar implementations (the SPEC009 oracle side).

The PR that introduced :mod:`repro.derive` migrated the indexed-counter
families — HBIM and its index-scheme variants, the two-level GAg/GAp/
PAg/PAp organizations, and GTag — onto the spec-derived runtime.  This
module keeps verbatim copies of the superseded hand implementations so
the migration stays *differentially* gated forever, the same way the
backend (PR 4), kernel (PR 6), and spec (PR 8) migrations were:

- analyzer rule SPEC009 drives a fresh derived component and its frozen
  reference twin through the seeded contract stimulus and requires
  bit-identical prediction/metadata/event logs;
- the fuzzer's ``derive`` oracle does the same on fuzz-drawn sizings.

These classes are deliberately *not* exported from the component
library: they declare no spec, carry no kernel, and exist only as
behavioral oracles.  Do not "fix" or modernize them — their value is
that they do not change.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._util import (
    counter_taken,
    fold_history,
    hash_pc,
    log2_exact,
    mask,
    saturating_update,
    shift_in,
)
from repro.components.base import IndexScheme, MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import (
    InterfaceError,
    PredictorComponent,
    StorageReport,
)
from repro.core.prediction import PredictionVector


class ReferenceHBIM(PredictorComponent):
    """Verbatim pre-derive :class:`~repro.components.bimodal.HBIM`."""

    def __init__(
        self,
        name: str,
        latency: int = 2,
        n_sets: int = 2048,
        fetch_width: int = 4,
        index: str = "pc",
        history_bits: int = 0,
        counter_bits: int = 2,
    ):
        self._scheme = IndexScheme(index, log2_exact(n_sets), history_bits)
        self._codec = MetaCodec([("ctr", counter_bits, fetch_width)])
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=self._scheme.uses_global_history,
            uses_local_history=self._scheme.uses_local_history,
        )
        self.uses_path_history = self._scheme.uses_path_history
        if self._scheme.uses_global_history:
            self.required_ghist_bits = history_bits
        elif self._scheme.uses_local_history:
            self.required_lhist_bits = history_bits
        elif self.uses_path_history:
            self.required_phist_bits = history_bits
        if latency < 2 and self.uses_path_history:
            raise InterfaceError(
                f"{name}: path history arrives at the end of cycle 1"
            )
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.counter_bits = counter_bits
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self._table = np.full(
            (n_sets, fetch_width), self._weak_nt, dtype=np.uint8
        )

    def _index(
        self, req_pc: int, ghist: int, lhist: int, phist: int = 0
    ) -> int:
        packet_pc = req_pc - (req_pc % self.fetch_width)
        return self._scheme.index(
            packet_pc // self.fetch_width, ghist, lhist, phist
        )

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        row = self._table[
            self._index(req.fetch_pc, req.ghist, req.lhist, req.phist)
        ].tolist()
        out = predict_in[0].copy()
        offset = req.fetch_pc % self.fetch_width
        for slot_idx, slot in enumerate(out.slots):
            counter = row[offset + slot_idx]
            slot.hit = True
            if not slot.is_jump:
                slot.taken = counter_taken(counter, self.counter_bits)
        meta = self._codec.pack(
            ctr=row if self.fetch_width > 1 else row[0]
        )
        return out, meta

    def on_update(self, bundle: UpdateBundle) -> None:
        if not any(bundle.br_mask):
            return
        counters = self._codec.unpack(bundle.meta)["ctr"]
        if self.fetch_width == 1:
            counters = [counters]
        index = self._index(
            bundle.fetch_pc, bundle.ghist, bundle.lhist, bundle.phist
        )
        offset = bundle.fetch_pc % self.fetch_width
        row = self._table[index]
        for slot_idx, is_branch in enumerate(bundle.br_mask):
            if not is_branch:
                continue
            lane = offset + slot_idx
            taken = bundle.taken_mask[slot_idx]
            row[lane] = saturating_update(
                int(counters[lane]), taken, self.counter_bits
            )

    def storage(self) -> StorageReport:
        bits = self.n_sets * self.fetch_width * self.counter_bits
        return StorageReport(
            self.name,
            sram_bits=bits,
            breakdown={"counters": bits},
            access_bits=self.fetch_width * self.counter_bits,
        )

    def reset(self) -> None:
        self._table.fill(self._weak_nt)


class ReferenceTwoLevel(PredictorComponent):
    """Verbatim pre-derive :class:`~repro.components.twolevel.TwoLevel`."""

    VARIANTS = ("GAg", "GAp", "PAg", "PAp")

    def __init__(
        self,
        name: str,
        latency: int = 3,
        variant: str = "PAg",
        fetch_width: int = 4,
        history_bits: int = 10,
        l1_entries: int = 256,
        l2_sets_per_table: int = 1024,
        l2_tables: int = 16,
        counter_bits: int = 2,
    ):
        if variant not in self.VARIANTS:
            raise InterfaceError(
                f"{name}: unknown two-level variant {variant!r}; "
                f"choose from {self.VARIANTS}"
            )
        if (1 << history_bits) > l2_sets_per_table:
            raise InterfaceError(
                f"{name}: pattern table ({l2_sets_per_table} sets) cannot "
                f"index {history_bits} history bits"
            )
        lane_bits = max(1, (fetch_width - 1).bit_length())
        self._codec = MetaCodec(
            [
                ("cand_valid", 1),
                ("lane", lane_bits),
                ("hist", history_bits),
                ("ctr", counter_bits),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=variant.startswith("G"),
        )
        if variant.startswith("G"):
            self.required_ghist_bits = history_bits
        self.variant = variant
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.l1_entries = l1_entries
        self._l1_index_bits = log2_exact(l1_entries)
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self._l1 = np.zeros(l1_entries, dtype=np.int64)
        self.l2_tables = l2_tables if variant.endswith("p") else 1
        self.l2_sets = l2_sets_per_table
        self._l2_index_bits = log2_exact(l2_sets_per_table)
        self._l2 = np.full(
            (self.l2_tables, l2_sets_per_table), self._weak_nt, dtype=np.uint8
        )

    def _l1_index(self, branch_pc: int) -> int:
        return hash_pc(branch_pc, self._l1_index_bits)

    def _level1_history(self, branch_pc: int, ghist: int) -> int:
        if self.variant.startswith("G"):
            return ghist & mask(self.history_bits)
        return int(self._l1[self._l1_index(branch_pc)]) & mask(
            self.history_bits
        )

    def _l2_slot(self, branch_pc: int, history: int) -> Tuple[int, int]:
        table = (
            hash_pc(branch_pc, max(1, (self.l2_tables - 1).bit_length()))
            % self.l2_tables
        )
        index = history & mask(self._l2_index_bits)
        return table, index

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            branch_pc = req.fetch_pc + lane
            history = self._level1_history(branch_pc, req.ghist)
            table, index = self._l2_slot(branch_pc, history)
            counter = int(self._l2[table, index])
            out.slots[lane].hit = True
            out.slots[lane].taken = counter_taken(counter, self.counter_bits)
            meta = self._codec.pack(
                cand_valid=1, lane=lane, hist=history, ctr=counter
            )
            return out, meta
        return out, self._codec.pack(cand_valid=0, lane=0, hist=0, ctr=0)

    def _meta(self, bundle: UpdateBundle):
        fields = self._codec.unpack(bundle.meta)
        if not fields["cand_valid"]:
            return None
        lane = int(fields["lane"])
        if lane >= len(bundle.br_mask) or not bundle.br_mask[lane]:
            return None
        return lane, int(fields["hist"]), int(fields["ctr"])

    def fire(self, bundle: UpdateBundle) -> None:
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, _, _ = info
        index = self._l1_index(bundle.fetch_pc + lane)
        self._l1[index] = shift_in(
            int(self._l1[index]), bundle.taken_mask[lane], self.history_bits
        )

    def on_repair(self, bundle: UpdateBundle) -> None:
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, _ = info
        self._l1[self._l1_index(bundle.fetch_pc + lane)] = history

    def on_mispredict(self, bundle: UpdateBundle) -> None:
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, _ = info
        corrected = shift_in(
            history, bundle.taken_mask[lane], self.history_bits
        )
        self._l1[self._l1_index(bundle.fetch_pc + lane)] = corrected

    def on_update(self, bundle: UpdateBundle) -> None:
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, counter = info
        taken = bundle.taken_mask[lane]
        table, index = self._l2_slot(bundle.fetch_pc + lane, history)
        self._l2[table, index] = saturating_update(
            counter, taken, self.counter_bits
        )

    def storage(self) -> StorageReport:
        l1_bits = (
            0
            if self.variant.startswith("G")
            else self.l1_entries * self.history_bits
        )
        l2_bits = self.l2_tables * self.l2_sets * self.counter_bits
        return StorageReport(
            self.name,
            sram_bits=l1_bits + l2_bits,
            breakdown={"l1_histories": l1_bits, "l2_patterns": l2_bits},
            access_bits=self.history_bits + self.counter_bits,
        )

    def reset(self) -> None:
        self._l1.fill(0)
        self._l2.fill(self._weak_nt)


class ReferenceGTag(PredictorComponent):
    """Verbatim pre-derive :class:`~repro.components.gtag.GTag`."""

    def __init__(
        self,
        name: str,
        latency: int = 3,
        n_sets: int = 512,
        fetch_width: int = 4,
        history_bits: int = 16,
        tag_bits: int = 10,
        counter_bits: int = 2,
    ):
        self._codec = MetaCodec(
            [("hit", 1), ("ctr", counter_bits, fetch_width)]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
        )
        self.required_ghist_bits = history_bits
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        self.counter_bits = counter_bits
        self._index_bits = log2_exact(n_sets)
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self._valid = np.zeros(n_sets, dtype=bool)
        self._tags = np.zeros(n_sets, dtype=np.int64)
        self._ctrs = np.full(
            (n_sets, fetch_width), self._weak_nt, dtype=np.uint8
        )

    def _index_tag(self, fetch_pc: int, ghist: int) -> Tuple[int, int]:
        packet = (fetch_pc - (fetch_pc % self.fetch_width)) // self.fetch_width
        folded = fold_history(ghist, self.history_bits, self._index_bits)
        index = hash_pc(packet, self._index_bits) ^ folded
        tag = (
            (packet >> 2)
            ^ fold_history(ghist, self.history_bits, self.tag_bits)
        ) & mask(self.tag_bits)
        return index, tag

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        index, tag = self._index_tag(req.fetch_pc, req.ghist)
        out = predict_in[0].copy()
        hit = bool(self._valid[index]) and int(self._tags[index]) == tag
        row = self._ctrs[index]
        if hit:
            offset = req.fetch_pc % self.fetch_width
            for slot_idx, slot in enumerate(out.slots):
                if slot.is_jump:
                    continue
                slot.hit = True
                slot.taken = counter_taken(
                    int(row[offset + slot_idx]), self.counter_bits
                )
        meta = self._codec.pack(hit=int(hit), ctr=row.tolist())
        return out, meta

    def on_update(self, bundle: UpdateBundle) -> None:
        if not any(bundle.br_mask):
            return
        fields = self._codec.unpack(bundle.meta)
        index, tag = self._index_tag(bundle.fetch_pc, bundle.ghist)
        offset = bundle.fetch_pc % self.fetch_width
        was_hit = bool(fields["hit"])
        if was_hit:
            counters = fields["ctr"]
            row = self._ctrs[index]
            for slot_idx, is_branch in enumerate(bundle.br_mask):
                if is_branch:
                    lane = offset + slot_idx
                    row[lane] = saturating_update(
                        int(counters[lane]),
                        bundle.taken_mask[slot_idx],
                        self.counter_bits,
                    )
        elif bundle.mispredicted:
            self._valid[index] = True
            self._tags[index] = tag
            self._ctrs[index, :] = self._weak_nt
            for slot_idx, is_branch in enumerate(bundle.br_mask):
                if is_branch:
                    lane = offset + slot_idx
                    taken = bundle.taken_mask[slot_idx]
                    self._ctrs[index, lane] = (
                        self._weak_nt + 1 if taken else self._weak_nt
                    )

    def storage(self) -> StorageReport:
        counter_bits = self.n_sets * self.fetch_width * self.counter_bits
        tag_bits = self.n_sets * (self.tag_bits + 1)
        return StorageReport(
            self.name,
            sram_bits=counter_bits + tag_bits,
            breakdown={"counters": counter_bits, "tags": tag_bits},
            access_bits=self.fetch_width * self.counter_bits
            + self.tag_bits
            + 1,
        )

    def reset(self) -> None:
        self._valid.fill(False)
        self._tags.fill(0)
        self._ctrs.fill(self._weak_nt)


# ----------------------------------------------------------------------
# Twin registry
# ----------------------------------------------------------------------
def twin_dims(component: PredictorComponent):
    """Stimulus dimensions for a twin drive.

    :func:`repro.analysis.contracts.dims_for` widens dimensions from the
    spec but never narrows the fetch width below the harness default, so
    a narrow sizing (``fetch_width`` 1 or 2) would see packets wider
    than its counter rows.  The differential drive clamps the width to
    the component's own.
    """
    import dataclasses

    from repro.analysis.contracts import dims_for

    dims = dims_for(component)
    width = getattr(component, "fetch_width", None)
    if width is not None and width != dims.fetch_width:
        dims = dataclasses.replace(dims, fetch_width=width)
    return dims


def twin_pair(
    component: PredictorComponent,
) -> Optional[Tuple[PredictorComponent, PredictorComponent]]:
    """``(fresh_derived, fresh_reference)`` twins of a migrated component.

    Both twins are built from scratch with the live component's sizing
    parameters, so driving them never mutates the caller's instance.
    Returns None for components outside the migrated families (including
    subclasses, whose overrides the frozen references know nothing
    about).
    """
    from repro.components.bimodal import HBIM
    from repro.components.gtag import GTag
    from repro.components.twolevel import TwoLevel

    if type(component) is HBIM:
        kwargs = dict(
            name=component.name,
            latency=component.latency,
            n_sets=component.n_sets,
            fetch_width=component.fetch_width,
            index=component._scheme.scheme,
            history_bits=component._scheme.history_bits,
            counter_bits=component.counter_bits,
        )
        return HBIM(**kwargs), ReferenceHBIM(**kwargs)
    if type(component) is TwoLevel:
        kwargs = dict(
            name=component.name,
            latency=component.latency,
            variant=component.variant,
            fetch_width=component.fetch_width,
            history_bits=component.history_bits,
            l1_entries=component.l1_entries,
            l2_sets_per_table=component.l2_sets,
            l2_tables=component.l2_tables,
            counter_bits=component.counter_bits,
        )
        return TwoLevel(**kwargs), ReferenceTwoLevel(**kwargs)
    if type(component) is GTag:
        kwargs = dict(
            name=component.name,
            latency=component.latency,
            n_sets=component.n_sets,
            fetch_width=component.fetch_width,
            history_bits=component.history_bits,
            tag_bits=component.tag_bits,
            counter_bits=component.counter_bits,
        )
        return GTag(**kwargs), ReferenceGTag(**kwargs)
    return None
