"""The paper's three evaluated predictor designs (§V-A, Table I, Fig. 7).

Topologies, in the paper's notation::

    TAGE-L:     LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1
    B2:         GTAG3 > BTB2 > BIM2
    Tournament: TOURNEY3 > [GBIM2 > BTB2, LBIM2]

Sizing follows Table I:

- **Tournament** — 32-bit global and 256 x 32-bit local histories, 2K-entry
  BTB with a 16K-entry 2-bit BHT (the global-indexed bimodal), 1K
  tournament counters.
- **B2** — 16-bit global history, 2K partially tagged + 16K untagged
  counters, 2K-entry BTB.
- **TAGE-L** — 64-bit global history, 7 TAGE tables, 2K-entry BTB with a
  32-entry uBTB, 256-entry loop predictor (plus the PC-indexed backing
  bimodal the topology names).
"""

from __future__ import annotations

from typing import Dict

from repro.components.library import standard_library
from repro.components.tage import default_tables
from repro.core.composer import ComposedPredictor, ComposerConfig, compose

TAGE_L_TOPOLOGY = "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"
B2_TOPOLOGY = "GTAG3 > BTB2 > BIM2"
TOURNEY_TOPOLOGY = "TOURNEY3 > [GBIM2 > BTB2, LBIM2]"

#: Preset registry: name -> builder.
PRESET_NAMES = ("tage_l", "b2", "tourney")


def _config(
    fetch_width: int, global_history_bits: int, **overrides
) -> ComposerConfig:
    fields = dict(
        fetch_width=fetch_width,
        global_history_bits=global_history_bits,
    )
    fields.update(overrides)
    return ComposerConfig(**fields)


def tage_l(
    fetch_width: int = 4,
    tage_latency: int = 3,
    tage_sets: int = 1024,
    **config_overrides,
) -> ComposedPredictor:
    """The TAGE-L design: TAGE + loop corrector over BTB/BIM/uBTB.

    ``tage_latency`` reproduces the §VI-A physical-design ablation: the
    original 2-cycle arbitration versus the pipelined 3-cycle version.
    """
    if tage_latency < 2:
        raise ValueError("TAGE consumes global history; latency must be >= 2")
    library = standard_library(
        fetch_width=fetch_width,
        global_history_bits=64,
        tage_tables=default_tables(n_sets=tage_sets),
    )
    topology = f"LOOP3 > TAGE{tage_latency} > BTB2 > BIM2 > UBTB1"
    config = _config(fetch_width, 64, **config_overrides)
    return compose(topology, library, config)


def b2(fetch_width: int = 4, **config_overrides) -> ComposedPredictor:
    """The B2 design: the original BOOM-style GTAG + backing bimodal."""
    library = standard_library(
        fetch_width=fetch_width,
        global_history_bits=16,
        gtag_history_bits=16,
    )
    config = _config(fetch_width, 16, **config_overrides)
    return compose(B2_TOPOLOGY, library, config)


def tourney(fetch_width: int = 4, **config_overrides) -> ComposedPredictor:
    """The Tournament design: Alpha-21264-style chooser over global/local."""
    library = standard_library(
        fetch_width=fetch_width,
        global_history_bits=32,
        tourney_history_bits=32,
        local_history_bits=32,
        lbim_sets=1024,
    )
    config = _config(
        fetch_width,
        32,
        local_history_entries=256,
        local_history_bits=32,
        **config_overrides,
    )
    return compose(TOURNEY_TOPOLOGY, library, config)


def build(name: str, fetch_width: int = 4, **kwargs) -> ComposedPredictor:
    """Build a preset by name (``tage_l``, ``b2``, ``tourney``)."""
    builders = {"tage_l": tage_l, "b2": b2, "tourney": tourney}
    key = name.lower().replace("-", "_")
    if key not in builders:
        raise KeyError(f"unknown preset {name!r}; choose from {PRESET_NAMES}")
    return builders[key](fetch_width=fetch_width, **kwargs)


def all_presets(fetch_width: int = 4) -> Dict[str, ComposedPredictor]:
    """Fresh instances of all three evaluated designs."""
    return {name: build(name, fetch_width) for name in PRESET_NAMES}
