"""Instruction definitions for the tiny RISC ISA.

PCs are word addressed: instruction ``i`` of a program lives at PC ``i`` and
sequential execution advances the PC by one.  This keeps fetch-packet
arithmetic (alignment, fall-through PCs) trivial while preserving everything
a branch predictor cares about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Number of architectural registers.  ``r0`` is hardwired to zero.
NUM_REGS = 16

#: Link register used by ``call`` / ``ret`` (RISC-V ``ra`` analogue).
RA = 15

#: Stack pointer register by convention.
SP = 14


class Opcode(enum.Enum):
    """Operation codes for the tiny ISA."""

    # Arithmetic / logic (register-register unless noted).
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"
    DIV = "div"
    ADDI = "addi"  # rd = rs1 + imm
    ANDI = "andi"  # rd = rs1 & imm
    XORI = "xori"  # rd = rs1 ^ imm
    LI = "li"      # rd = imm
    # Memory.
    LD = "ld"      # rd = mem[rs1 + imm]
    ST = "st"      # mem[rs1 + imm] = rs2
    # Conditional branches (rs1 compared against rs2, target absolute).
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    # Unconditional control flow.
    JAL = "jal"    # rd = pc + 1; pc = target (rd may be None for plain jump)
    JALR = "jalr"  # rd = pc + 1; pc = rs1 (indirect; rd may be None)
    # Miscellaneous.
    NOP = "nop"
    HALT = "halt"


#: Conditional branch opcodes.
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})

#: Opcodes that redirect control flow unconditionally.
JUMP_OPS = frozenset({Opcode.JAL, Opcode.JALR})

#: Execution latency (cycles from issue to completion) per opcode.
OP_LATENCY = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.LD: 2,  # L1 hit latency; the cache model adds miss penalties.
}
DEFAULT_LATENCY = 1


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    ``target`` is the absolute PC of a direct branch or jump.  Indirect
    jumps (``JALR``) read their target from ``rs1`` at execute time and
    carry ``target=None``.
    """

    op: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None

    @property
    def is_cond_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        return self.op in JUMP_OPS

    @property
    def is_control_flow(self) -> bool:
        return self.is_cond_branch or self.is_jump

    @property
    def is_call(self) -> bool:
        """Jumps that write a link register are calls (feed the RAS)."""
        return self.op is Opcode.JAL and self.rd == RA

    @property
    def is_ret(self) -> bool:
        """Indirect jumps through the link register are returns."""
        return self.op is Opcode.JALR and self.rs1 == RA and self.rd is None

    @property
    def is_indirect(self) -> bool:
        return self.op is Opcode.JALR

    @property
    def latency(self) -> int:
        return OP_LATENCY.get(self.op, DEFAULT_LATENCY)

    def forward_distance(self, pc: int) -> Optional[int]:
        """Distance to a *forward* direct target, or None.

        Used by the short-forwards-branch (hammock) optimization in §VI-C:
        a conditional branch whose target is a small number of instructions
        ahead can be decoded into predicated micro-ops instead of being
        predicted.
        """
        if not self.is_cond_branch or self.target is None:
            return None
        distance = self.target - pc
        return distance if distance > 0 else None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        fields = []
        if self.rd is not None:
            fields.append(f"r{self.rd}")
        if self.rs1 is not None:
            fields.append(f"r{self.rs1}")
        if self.rs2 is not None:
            fields.append(f"r{self.rs2}")
        if self.imm:
            fields.append(str(self.imm))
        if self.target is not None:
            fields.append(f"@{self.target}")
        return f"{self.op.value} " + ", ".join(fields)
