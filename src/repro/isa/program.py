"""Programs and a label-resolving program builder (a tiny assembler)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.isa.instructions import Instruction, Opcode, RA

LabelOrPC = Union[str, int]


@dataclass
class Program:
    """A static program: instruction memory plus initial data memory.

    Instruction memory is word addressed starting at PC 0.  ``data`` holds
    the initial contents of data memory (sparse).  ``name`` identifies the
    workload in reports.
    """

    instructions: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    name: str = "program"
    entry: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Return the instruction at ``pc`` or None for out-of-range PCs.

        Wrong-path fetches may run off the end of the program; the frontend
        treats a None as a non-branch filler instruction.
        """
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    def static_branch_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_control_flow)


class ProgramBuilder:
    """Assembler-style builder with forward-referencing labels.

    Example::

        b = ProgramBuilder("count")
        b.li(1, 0)
        b.label("loop")
        b.addi(1, 1, 1)
        b.li(2, 100)
        b.blt(1, 2, "loop")
        b.halt()
        program = b.build()
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[int] = []  # instruction indices with string targets
        self._pending_targets: List[Optional[str]] = []
        self._data: Dict[int, int] = {}
        self._data_labels: List = []  # (addr, label): data words holding PCs

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def pc(self) -> int:
        """PC of the next emitted instruction."""
        return len(self._instructions)

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.pc
        return self

    def data_word(self, addr: int, value: int) -> "ProgramBuilder":
        self._data[addr] = value
        return self

    def data_block(self, base: int, values) -> "ProgramBuilder":
        for offset, value in enumerate(values):
            self._data[base + offset] = int(value)
        return self

    def data_label(self, addr: int, label: str) -> "ProgramBuilder":
        """Store the PC of ``label`` at data address ``addr`` (jump tables)."""
        self._data_labels.append((addr, label))
        return self

    def _emit(self, instr: Instruction, label: Optional[str] = None) -> None:
        self._instructions.append(instr)
        self._pending_targets.append(label)

    def _resolve(self, target: Optional[LabelOrPC]):
        """Split a target into (pc_or_None, label_or_None)."""
        if target is None:
            return None, None
        if isinstance(target, str):
            return None, target
        return int(target), None

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    def add(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def sub(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def and_(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def or_(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.OR, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def xor(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.XOR, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def shl(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.SHL, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def shr(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.SHR, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def mul(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def div(self, rd, rs1, rs2):
        self._emit(Instruction(Opcode.DIV, rd=rd, rs1=rs1, rs2=rs2))
        return self

    def addi(self, rd, rs1, imm):
        self._emit(Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm))
        return self

    def andi(self, rd, rs1, imm):
        self._emit(Instruction(Opcode.ANDI, rd=rd, rs1=rs1, imm=imm))
        return self

    def xori(self, rd, rs1, imm):
        self._emit(Instruction(Opcode.XORI, rd=rd, rs1=rs1, imm=imm))
        return self

    def li(self, rd, imm):
        self._emit(Instruction(Opcode.LI, rd=rd, imm=imm))
        return self

    def nop(self):
        self._emit(Instruction(Opcode.NOP))
        return self

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ld(self, rd, rs1, imm=0):
        self._emit(Instruction(Opcode.LD, rd=rd, rs1=rs1, imm=imm))
        return self

    def st(self, rs2, rs1, imm=0):
        self._emit(Instruction(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm))
        return self

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _branch(self, op: Opcode, rs1, rs2, target: LabelOrPC):
        pc, label = self._resolve(target)
        self._emit(Instruction(op, rs1=rs1, rs2=rs2, target=pc), label)
        return self

    def beq(self, rs1, rs2, target: LabelOrPC):
        return self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target: LabelOrPC):
        return self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target: LabelOrPC):
        return self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target: LabelOrPC):
        return self._branch(Opcode.BGE, rs1, rs2, target)

    def jump(self, target: LabelOrPC):
        pc, label = self._resolve(target)
        self._emit(Instruction(Opcode.JAL, target=pc), label)
        return self

    def call(self, target: LabelOrPC):
        pc, label = self._resolve(target)
        self._emit(Instruction(Opcode.JAL, rd=RA, target=pc), label)
        return self

    def jalr(self, rs1, rd=None):
        self._emit(Instruction(Opcode.JALR, rd=rd, rs1=rs1))
        return self

    def ret(self):
        self._emit(Instruction(Opcode.JALR, rs1=RA))
        return self

    def halt(self):
        self._emit(Instruction(Opcode.HALT))
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Program:
        instructions: List[Instruction] = []
        for index, instr in enumerate(self._instructions):
            label = self._pending_targets[index]
            if label is not None:
                if label not in self._labels:
                    raise ValueError(f"undefined label {label!r}")
                instr = Instruction(
                    instr.op,
                    rd=instr.rd,
                    rs1=instr.rs1,
                    rs2=instr.rs2,
                    imm=instr.imm,
                    target=self._labels[label],
                )
            instructions.append(instr)
        data = dict(self._data)
        for addr, label in self._data_labels:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r} in data word")
            data[addr] = self._labels[label]
        return Program(instructions, data, name=self.name)
