"""Functional interpreter producing the architectural (oracle) path.

The speculative core model in :mod:`repro.frontend` fetches down predicted
paths; the interpreter defines what the *correct* path is, one dynamic
instruction at a time.  It is also usable standalone for workload unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.isa.instructions import Instruction, Opcode, NUM_REGS
from repro.isa.program import Program

#: Word width for register arithmetic.
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1
_SIGN_BIT = 1 << (WORD_BITS - 1)


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return (value ^ _SIGN_BIT) - _SIGN_BIT


@dataclass(frozen=True)
class DynInstr:
    """One dynamic (architecturally executed) instruction.

    ``taken`` is meaningful only for conditional branches.  ``next_pc`` is
    the architecturally correct successor PC.  ``mem_addr`` is the data
    address touched by a load or store (None otherwise) so the cache model
    can replay it.
    """

    seq: int
    pc: int
    instr: Instruction
    next_pc: int
    taken: bool
    mem_addr: Optional[int]


class InterpreterError(Exception):
    """Raised on architecturally invalid execution (bad PC, missing target)."""


class Interpreter:
    """Executes a :class:`Program`, yielding :class:`DynInstr` records."""

    def __init__(self, program: Program):
        self.program = program
        self.regs = [0] * NUM_REGS
        self.memory = dict(program.data)
        self.pc = program.entry
        self.halted = False
        self._seq = 0

    # ------------------------------------------------------------------
    def read_reg(self, index: Optional[int]) -> int:
        if index is None:
            return 0
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: Optional[int], value: int) -> None:
        if index is not None and index != 0:
            self.regs[index] = value & _WORD_MASK

    # ------------------------------------------------------------------
    def step(self) -> Optional[DynInstr]:
        """Execute one instruction; return its record, or None when halted."""
        if self.halted:
            return None
        instr = self.program.fetch(self.pc)
        if instr is None:
            raise InterpreterError(
                f"{self.program.name}: PC {self.pc} outside program "
                f"(len {len(self.program)})"
            )

        pc = self.pc
        next_pc = pc + 1
        taken = False
        mem_addr: Optional[int] = None
        op = instr.op
        a = _to_signed(self.read_reg(instr.rs1))
        b = _to_signed(self.read_reg(instr.rs2))

        if op is Opcode.ADD:
            self.write_reg(instr.rd, a + b)
        elif op is Opcode.SUB:
            self.write_reg(instr.rd, a - b)
        elif op is Opcode.AND:
            self.write_reg(instr.rd, a & b)
        elif op is Opcode.OR:
            self.write_reg(instr.rd, a | b)
        elif op is Opcode.XOR:
            self.write_reg(instr.rd, a ^ b)
        elif op is Opcode.SHL:
            self.write_reg(instr.rd, a << (b & 63))
        elif op is Opcode.SHR:
            self.write_reg(instr.rd, (a & _WORD_MASK) >> (b & 63))
        elif op is Opcode.MUL:
            self.write_reg(instr.rd, a * b)
        elif op is Opcode.DIV:
            self.write_reg(instr.rd, a // b if b else 0)
        elif op is Opcode.ADDI:
            self.write_reg(instr.rd, a + instr.imm)
        elif op is Opcode.ANDI:
            self.write_reg(instr.rd, a & instr.imm)
        elif op is Opcode.XORI:
            self.write_reg(instr.rd, a ^ instr.imm)
        elif op is Opcode.LI:
            self.write_reg(instr.rd, instr.imm)
        elif op is Opcode.LD:
            mem_addr = (a + instr.imm) & _WORD_MASK
            self.write_reg(instr.rd, self.memory.get(mem_addr, 0))
        elif op is Opcode.ST:
            mem_addr = (a + instr.imm) & _WORD_MASK
            self.memory[mem_addr] = self.read_reg(instr.rs2)
        elif op is Opcode.BEQ:
            taken = a == b
        elif op is Opcode.BNE:
            taken = a != b
        elif op is Opcode.BLT:
            taken = a < b
        elif op is Opcode.BGE:
            taken = a >= b
        elif op is Opcode.JAL:
            if instr.target is None:
                raise InterpreterError("JAL with no target")
            self.write_reg(instr.rd, pc + 1)
            next_pc = instr.target
        elif op is Opcode.JALR:
            self.write_reg(instr.rd, pc + 1)
            next_pc = self.read_reg(instr.rs1) & _WORD_MASK
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        else:  # pragma: no cover - exhaustive over Opcode
            raise InterpreterError(f"unimplemented opcode {op}")

        if instr.is_cond_branch and taken:
            if instr.target is None:
                raise InterpreterError("conditional branch with no target")
            next_pc = instr.target

        record = DynInstr(
            seq=self._seq,
            pc=pc,
            instr=instr,
            next_pc=next_pc,
            taken=taken,
            mem_addr=mem_addr,
        )
        self._seq += 1
        self.pc = next_pc
        return record

    def run(self, max_instructions: int = 10_000_000) -> Iterator[DynInstr]:
        """Yield dynamic instructions until HALT or the instruction cap."""
        for _ in range(max_instructions):
            record = self.step()
            if record is None:
                return
            yield record
            if self.halted:
                return


def run_program(program: Program, max_instructions: int = 10_000_000):
    """Convenience: fully execute ``program`` and return the dynamic trace."""
    return list(Interpreter(program).run(max_instructions))
