"""A tiny RISC-style ISA used to drive the branch-predictor evaluation.

The paper evaluates COBRA-generated predictors on RISC-V binaries running on
the BOOM core.  This package provides the equivalent substrate for the Python
reproduction: a minimal word-addressed RISC ISA, a program builder with
labels, and a functional interpreter that produces the architecturally
correct dynamic instruction stream (the "oracle" path that the speculative
frontend model is checked against).
"""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    RA,
    SP,
    NUM_REGS,
)
from repro.isa.program import Program, ProgramBuilder
from repro.isa.interpreter import DynInstr, Interpreter, run_program

__all__ = [
    "Instruction",
    "Opcode",
    "RA",
    "SP",
    "NUM_REGS",
    "Program",
    "ProgramBuilder",
    "DynInstr",
    "Interpreter",
    "run_program",
]
