"""CoreMark-like synthetic kernel (EEMBC).

CoreMark combines list processing, matrix operations, state-machine
dispatch, and CRC loops.  Its state-machine and CRC code are rich in short
forward (hammock) branches over one or two instructions — the reason the
paper demonstrates the short-forwards-branch predication optimization on
it (§VI-C: 4.9 → 6.1 CoreMarks/MHz, 97% → 99.1% accuracy).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.generators import (
    WorkloadBuilder,
    emit_hammock,
    emit_linked_list,
    emit_nested_loops,
    emit_stream,
    emit_switch,
)


def build_coremark(scale: float = 1.0) -> Program:
    """Build the CoreMark-like workload (~60k instructions at scale=1)."""
    w = WorkloadBuilder("coremark", seed=7)
    # CRC loop: bit tests realized as data-dependent hammocks.
    w.add(emit_hammock, n=64, bias=0.5)
    w.add(emit_hammock, tag="k_ham2", n=48, bias=0.3)
    # State machine dispatch.
    w.add(emit_switch, n=40, n_cases=7)
    # List processing and matrix-ish loops.
    w.add(emit_linked_list, n_nodes=48, spread=2)
    w.add(emit_nested_loops, trips=(4, 6, 3))
    w.add(emit_stream, n=32)
    outer = max(1, int(round(30 * scale)))
    return w.build(outer)
