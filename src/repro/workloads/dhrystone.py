"""Dhrystone-like synthetic kernel.

Dhrystone [Weicker 1984] is a small, loop-dominated integer benchmark:
short predictable loops, string copies/compares, a little pointer work, and
simple conditionals.  Its branches are nearly perfectly predictable once
warm, and its tight loop makes it latency-sensitive — which is exactly why
the paper uses it to expose the costs of fetch serialization (§I, −15%
IPC) and history-repair replay bubbles (§VI-B, −3% IPC).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.generators import (
    WorkloadBuilder,
    emit_correlated,
    emit_nested_loops,
    emit_stream,
    emit_string_ops,
)


def build_dhrystone(scale: float = 1.0) -> Program:
    """Build the Dhrystone-like workload (~40k instructions at scale=1)."""
    w = WorkloadBuilder("dhrystone", seed=42)
    w.add(emit_string_ops, length=12)
    w.add(emit_string_ops, tag="k_str2", length=8)
    w.add(emit_nested_loops, trips=(3, 5, 2))
    w.add(emit_stream, n=24)
    w.add(emit_correlated, n=16, period=2)
    outer = max(1, int(round(55 * scale)))
    return w.build(outer)
