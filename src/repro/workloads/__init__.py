"""Synthetic workloads standing in for SPECint17, Dhrystone, and CoreMark.

The paper runs the SPECint17 speed suite with reference inputs on FireSim
(trillions of cycles).  Reference SPEC binaries are unavailable and
unnecessary for the claims under reproduction: what matters is each
benchmark's branch *character* (predictable loop nests vs. data-dependent
chaos vs. indirect dispatch vs. pointer chasing).  Each synthetic workload
composes kernels from :mod:`repro.workloads.generators` to match the
documented character of its namesake (see each builder's docstring and
DESIGN.md for the substitution argument).
"""

from repro.workloads.generators import (
    DataAllocator,
    WorkloadBuilder,
    emit_correlated,
    emit_data_branches,
    emit_dense_branches,
    emit_hammock,
    emit_lcg_branches,
    emit_linked_list,
    emit_nested_loops,
    emit_recursive,
    emit_stream,
    emit_string_ops,
    emit_switch,
)
from repro.workloads.specint import SPECINT_NAMES, build as build_specint
from repro.workloads.traces import BranchTrace, capture_trace
from repro.workloads.dhrystone import build_dhrystone
from repro.workloads.coremark import build_coremark
from repro.workloads.registry import (
    WorkloadSource,
    build_workload,
    register_workload,
    resolve_workload,
    workload_names,
)

__all__ = [
    "DataAllocator",
    "WorkloadBuilder",
    "emit_correlated",
    "emit_data_branches",
    "emit_dense_branches",
    "emit_hammock",
    "emit_lcg_branches",
    "emit_linked_list",
    "emit_nested_loops",
    "emit_recursive",
    "emit_stream",
    "emit_string_ops",
    "emit_switch",
    "SPECINT_NAMES",
    "build_specint",
    "BranchTrace",
    "capture_trace",
    "build_dhrystone",
    "build_coremark",
    "WorkloadSource",
    "build_workload",
    "register_workload",
    "resolve_workload",
    "workload_names",
]
