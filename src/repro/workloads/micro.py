"""Micro-workloads: one branch-behaviour class per program.

§II-A's premise — "a collection of predictors with affinities for different
branch behaviors can be more accurate and efficient than a single generic
predictor" — is testable only with workloads that isolate one behaviour at
a time.  Each micro-workload here exercises a single class; the affinity
matrix bench runs every predictor over every class.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.program import Program
from repro.workloads.generators import (
    WorkloadBuilder,
    emit_correlated,
    emit_data_branches,
    emit_dense_branches,
    emit_lcg_branches,
    emit_linked_list,
    emit_nested_loops,
    emit_recursive,
    emit_stream,
    emit_switch,
)

MICRO_NAMES = (
    "steady_loop",
    "biased",
    "pattern_short",
    "pattern_long",
    "random",
    "counted_loops",
    "dense_aliasing",
    "pointer_chase",
    "dispatch",
    "call_ret",
)


def _one_kernel(name: str, seed: int, emit, outer: int, **params) -> Program:
    w = WorkloadBuilder(name, seed=seed)
    w.add(emit, **params)
    return w.build(outer)


def _builders() -> Dict[str, Callable[[float], Program]]:
    return {
        # A single long predictable loop: every predictor's best case.
        "steady_loop": lambda s: _one_kernel(
            "steady_loop", 11, emit_stream, int(40 * s) or 1, n=96
        ),
        # Heavily biased data branches (90% taken): bimodal territory.
        "biased": lambda s: _one_kernel(
            "biased", 12, emit_data_branches, int(30 * s) or 1, n=64, bias=0.9
        ),
        # Short repeating pattern: any history predictor can learn it.
        "pattern_short": lambda s: _one_kernel(
            "pattern_short", 13, emit_correlated, int(30 * s) or 1, n=64, period=4
        ),
        # Long repeating pattern: needs long histories (TAGE's case).
        "pattern_long": lambda s: _one_kernel(
            "pattern_long", 14, emit_correlated, int(30 * s) or 1, n=64, period=24
        ),
        # True randomness: nobody can do better than the bias.
        "random": lambda s: _one_kernel(
            "random", 15, emit_lcg_branches, int(30 * s) or 1, n=64, threshold=128
        ),
        # Fixed trip counts: the loop predictor's case.
        "counted_loops": lambda s: _one_kernel(
            "counted_loops", 16, emit_nested_loops, int(40 * s) or 1, trips=(6, 9, 4)
        ),
        # Many adjacent history-predictable branches: aliasing pressure,
        # where untagged predictors fall over (the Tournament weakness).
        "dense_aliasing": lambda s: _one_kernel(
            "dense_aliasing", 17, emit_dense_branches, int(25 * s) or 1,
            n=48, n_tests=6,
        ),
        # Dependent loads with value branches.
        "pointer_chase": lambda s: _one_kernel(
            "pointer_chase", 18, emit_linked_list, int(25 * s) or 1,
            n_nodes=96, spread=4,
        ),
        # Indirect dispatch: BTB/ITTAGE territory.
        "dispatch": lambda s: _one_kernel(
            "dispatch", 19, emit_switch, int(25 * s) or 1, n=48, n_cases=6
        ),
        # Deep call/return chains: RAS territory.
        "call_ret": lambda s: _one_kernel(
            "call_ret", 20, emit_recursive, int(60 * s) or 1, depth=10
        ),
    }


def build_micro(name: str, scale: float = 1.0) -> Program:
    """Build one micro-workload by behaviour-class name."""
    builders = _builders()
    if name not in builders:
        raise KeyError(f"unknown micro workload {name!r}; have {MICRO_NAMES}")
    return builders[name](scale)


def build_all_micro(scale: float = 1.0) -> Dict[str, Program]:
    return {name: build_micro(name, scale) for name in MICRO_NAMES}
