"""Synthetic stand-ins for the 10 SPECint17 speed benchmarks (Fig. 10).

Each builder composes kernels whose branch character matches the documented
behaviour of its namesake.  The mixes below follow the standard
characterization literature (e.g. SPEC CPU2017 workload studies): x264 and
exchange2 are loop-dominated and highly predictable; mcf, deepsjeng, leela
and xz carry large data-dependent (hard) branch populations; perlbench and
gcc are branchy front-end-bound codes with indirect dispatch; omnetpp and
xalancbmk are pointer/dispatch heavy.

Dynamic instruction counts are tuned through ``scale``: ``scale=1`` gives
roughly 40-90k architectural instructions per benchmark — enough for the
predictors' relative ordering to emerge while keeping a full Fig. 10 sweep
to minutes of host time.  (The paper runs trillions of cycles; shape, not
absolute numbers, is the reproduction target.)
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.program import Program
from repro.workloads.generators import (
    WorkloadBuilder,
    emit_correlated,
    emit_data_branches,
    emit_dense_branches,
    emit_hammock,
    emit_lcg_branches,
    emit_linked_list,
    emit_nested_loops,
    emit_recursive,
    emit_stream,
    emit_string_ops,
    emit_switch,
)

SPECINT_NAMES = (
    "perlbench",
    "gcc",
    "mcf",
    "omnetpp",
    "xalancbmk",
    "x264",
    "deepsjeng",
    "leela",
    "exchange2",
    "xz",
)


def _outer(base: int, scale: float) -> int:
    return max(1, int(round(base * scale)))


def _perlbench(scale: float) -> Program:
    """Interpreter dispatch loop: switches, hammocks, correlated branches."""
    w = WorkloadBuilder("perlbench", seed=101)
    w.add(emit_switch, n=48, n_cases=8)
    w.add(emit_hammock, n=48, bias=0.4)
    w.add(emit_correlated, n=48, period=6)
    w.add(emit_data_branches, n=32, bias=0.3)
    w.add(emit_recursive, depth=6)
    return w.build(_outer(26, scale))


def _gcc(scale: float) -> Program:
    """Branch-dense compiler passes with moderate predictability."""
    w = WorkloadBuilder("gcc", seed=102)
    w.add(emit_dense_branches, n=40, n_tests=6)
    w.add(emit_switch, n=32, n_cases=6)
    w.add(emit_correlated, n=48, period=10)
    w.add(emit_data_branches, n=32, bias=0.6)
    w.add(emit_string_ops, length=10)
    return w.build(_outer(24, scale))


def _mcf(scale: float) -> Program:
    """Pointer chasing with data-dependent branches and cache misses."""
    w = WorkloadBuilder("mcf", seed=103)
    w.add(emit_linked_list, n_nodes=192, spread=16)
    w.add(emit_lcg_branches, n=56, threshold=110)
    w.add(emit_data_branches, n=40, bias=0.5)
    return w.build(_outer(34, scale))


def _omnetpp(scale: float) -> Program:
    """Discrete-event simulation: lists, dispatch, moderate-hard branches."""
    w = WorkloadBuilder("omnetpp", seed=104)
    w.add(emit_linked_list, n_nodes=96, spread=8)
    w.add(emit_switch, n=40, n_cases=6)
    w.add(emit_lcg_branches, n=32, threshold=96)
    w.add(emit_correlated, n=32, period=8)
    return w.build(_outer(27, scale))


def _xalancbmk(scale: float) -> Program:
    """XML tree transforms: recursion, dispatch, correlated structure."""
    w = WorkloadBuilder("xalancbmk", seed=105)
    w.add(emit_recursive, depth=10)
    w.add(emit_switch, n=40, n_cases=5)
    w.add(emit_correlated, n=56, period=12)
    w.add(emit_string_ops, length=14)
    return w.build(_outer(30, scale))


def _x264(scale: float) -> Program:
    """Video encoding: regular loop nests over blocks, few hard branches."""
    w = WorkloadBuilder("x264", seed=106)
    w.add(emit_nested_loops, trips=(4, 8, 4))
    w.add(emit_stream, n=96)
    w.add(emit_stream, tag="k_stream2", n=64)
    w.add(emit_correlated, n=32, period=4)
    w.add(emit_data_branches, n=16, bias=0.8)
    return w.build(_outer(34, scale))


def _deepsjeng(scale: float) -> Program:
    """Alpha-beta chess search: recursion + genuinely hard branches."""
    w = WorkloadBuilder("deepsjeng", seed=107)
    w.add(emit_recursive, depth=12)
    w.add(emit_lcg_branches, n=56, threshold=128)
    w.add(emit_lcg_branches, tag="k_lcg2", n=40, threshold=80)
    w.add(emit_dense_branches, n=24, n_tests=5)
    return w.build(_outer(28, scale))


def _leela(scale: float) -> Program:
    """Monte-Carlo tree search: hard branches over tree structures."""
    w = WorkloadBuilder("leela", seed=108)
    w.add(emit_lcg_branches, n=48, threshold=128)
    w.add(emit_linked_list, n_nodes=80, spread=6)
    w.add(emit_recursive, depth=8)
    w.add(emit_data_branches, n=40, bias=0.45)
    return w.build(_outer(28, scale))


def _exchange2(scale: float) -> Program:
    """Sudoku brute force: deeply nested counted loops, near-perfectly
    predictable."""
    w = WorkloadBuilder("exchange2", seed=109)
    w.add(emit_nested_loops, trips=(6, 9, 5))
    w.add(emit_nested_loops, tag="k_nest2", trips=(3, 4, 9))
    w.add(emit_stream, n=48)
    w.add(emit_correlated, n=24, period=3)
    return w.build(_outer(26, scale))


def _xz(scale: float) -> Program:
    """LZMA compression: match/literal decisions — hard but with exploitable
    recent-history correlation."""
    w = WorkloadBuilder("xz", seed=110)
    w.add(emit_lcg_branches, n=48, threshold=150)
    w.add(emit_correlated, n=48, period=16)
    w.add(emit_data_branches, n=48, bias=0.35)
    w.add(emit_stream, n=32)
    return w.build(_outer(28, scale))


_BUILDERS: Dict[str, Callable[[float], Program]] = {
    "perlbench": _perlbench,
    "gcc": _gcc,
    "mcf": _mcf,
    "omnetpp": _omnetpp,
    "xalancbmk": _xalancbmk,
    "x264": _x264,
    "deepsjeng": _deepsjeng,
    "leela": _leela,
    "exchange2": _exchange2,
    "xz": _xz,
}


def build(name: str, scale: float = 1.0) -> Program:
    """Build one synthetic SPECint17 workload by benchmark name."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown SPECint workload {name!r}; have {SPECINT_NAMES}")
    return _BUILDERS[key](scale)


def build_all(scale: float = 1.0) -> Dict[str, Program]:
    return {name: build(name, scale) for name in SPECINT_NAMES}
