"""Branch-trace capture and replay (the CBP/ChampSim-style substrate).

The software simulators the paper contrasts against (§II-B) consume branch
*traces*: per-branch records of (pc, type, taken, target).  This module
captures such traces from the interpreter, stores them compactly (npz), and
characterizes them — and, since schema 2, stores enough to *replay* them
through a composed predictor with no interpreter in the loop
(:mod:`repro.backends.replay`):

- ``entry_pc`` plus the control-flow records fully determine the
  architectural PC stream (non-CFI instructions advance the PC by one, and
  ``targets`` stores ``next_pc`` for not-taken branches too);
- ``slot_kinds``/``slot_targets`` are per-static-PC pre-decode tables, so
  replay rebuilds fetch packets identical to what
  :func:`~repro.core.prediction.predecode_slot` derives from the program
  image.

Schema-1 files still load (``characterize`` works); only replay requires
the schema-2 columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.prediction import predecode_slot
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program

#: Branch-type codes in the trace format.
TYPE_COND = 0
TYPE_JAL = 1
TYPE_JALR = 2
TYPE_CALL = 3
TYPE_RET = 4

#: Pre-decode slot-kind codes in the schema-2 static tables.
SLOT_PLAIN = 0
SLOT_COND = 1
SLOT_JAL = 2
SLOT_JAL_CALL = 3
SLOT_JALR = 4
SLOT_JALR_RET = 5

#: Current npz schema.  1: dynamic branch columns only.  2: adds
#: ``entry_pc`` and the static pre-decode tables needed for replay.
TRACE_SCHEMA = 2


@dataclass
class BranchTrace:
    """Columnar trace of every control-flow instruction executed."""

    pcs: np.ndarray      # int64
    types: np.ndarray    # uint8 (TYPE_*)
    taken: np.ndarray    # bool (always True for jumps)
    targets: np.ndarray  # int64 (next_pc, taken or not)
    #: Architectural instruction count of the traced run (for MPKI).
    instruction_count: int = 0
    #: Entry PC of the traced program (schema 2; replay starts here).
    entry_pc: int = 0
    #: Per-static-PC pre-decode kind (SLOT_*), uint8; None for schema-1
    #: files, which cannot be replayed.
    slot_kinds: Optional[np.ndarray] = None
    #: Per-static-PC direct target, int64, -1 when none.
    slot_targets: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def replayable(self) -> bool:
        """Whether this trace carries the schema-2 replay columns."""
        return self.slot_kinds is not None and self.slot_targets is not None

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        payload = dict(
            pcs=self.pcs,
            types=self.types,
            taken=self.taken,
            targets=self.targets,
            instruction_count=np.int64(self.instruction_count),
        )
        if self.replayable:
            payload.update(
                schema=np.int64(TRACE_SCHEMA),
                entry_pc=np.int64(self.entry_pc),
                slot_kinds=self.slot_kinds,
                slot_targets=self.slot_targets,
            )
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BranchTrace":
        data = np.load(Path(path))
        has_replay = "slot_kinds" in data.files
        return cls(
            pcs=data["pcs"],
            types=data["types"],
            taken=data["taken"],
            targets=data["targets"],
            instruction_count=int(data["instruction_count"]),
            entry_pc=int(data["entry_pc"]) if has_replay else 0,
            slot_kinds=data["slot_kinds"] if has_replay else None,
            slot_targets=data["slot_targets"] if has_replay else None,
        )

    # ------------------------------------------------------------------
    def characterize(self) -> Dict[str, float]:
        """Workload branch-character summary (the per-benchmark table)."""
        cond = self.types == TYPE_COND
        n_cond = int(cond.sum())
        stats: Dict[str, float] = {
            "branches": float(len(self)),
            "cond_branches": float(n_cond),
            "branch_density": len(self) / max(1, self.instruction_count),
            "taken_rate": float(self.taken[cond].mean()) if n_cond else 0.0,
            "indirect_share": float((self.types == TYPE_JALR).mean()) if len(self) else 0.0,
            "call_ret_share": float(
                np.isin(self.types, (TYPE_CALL, TYPE_RET)).mean()
            ) if len(self) else 0.0,
        }
        # Per-site outcome entropy proxy: share of conditional branch sites
        # with mixed outcomes (the "hard branch" population).
        sites: Dict[int, list] = {}
        for pc, t, tk in zip(self.pcs[cond], self.types[cond], self.taken[cond]):
            sites.setdefault(int(pc), []).append(bool(tk))
        mixed = sum(1 for v in sites.values() if 0 < sum(v) < len(v))
        stats["static_cond_sites"] = float(len(sites))
        stats["mixed_site_share"] = mixed / max(1, len(sites))
        return stats


def _slot_tables(program: Program) -> Tuple[np.ndarray, np.ndarray]:
    """Static pre-decode tables over the program image (schema 2)."""
    n = len(program.instructions)
    kinds = np.zeros(n, dtype=np.uint8)
    targets = np.full(n, -1, dtype=np.int64)
    for pc, instr in enumerate(program.instructions):
        slot = predecode_slot(instr)
        if slot.is_cond_branch:
            kinds[pc] = SLOT_COND
        elif slot.is_jal:
            kinds[pc] = SLOT_JAL_CALL if slot.is_call else SLOT_JAL
        elif slot.is_jalr:
            kinds[pc] = SLOT_JALR_RET if slot.is_ret else SLOT_JALR
        if slot.direct_target is not None:
            targets[pc] = slot.direct_target
    return kinds, targets


def capture_trace(program: Program, max_instructions: int = 5_000_000) -> BranchTrace:
    """Execute ``program`` and record every control-flow transfer."""
    pcs, types, taken, targets = [], [], [], []
    count = 0
    for record in Interpreter(program).run(max_instructions):
        count += 1
        instr = record.instr
        if instr.is_cond_branch:
            kind = TYPE_COND
        elif instr.is_call:
            kind = TYPE_CALL
        elif instr.is_ret:
            kind = TYPE_RET
        elif instr.is_indirect:
            kind = TYPE_JALR
        elif instr.is_jump:
            kind = TYPE_JAL
        else:
            continue
        pcs.append(record.pc)
        types.append(kind)
        taken.append(record.taken or instr.is_jump)
        targets.append(record.next_pc)
    slot_kinds, slot_targets = _slot_tables(program)
    return BranchTrace(
        pcs=np.asarray(pcs, dtype=np.int64),
        types=np.asarray(types, dtype=np.uint8),
        taken=np.asarray(taken, dtype=bool),
        targets=np.asarray(targets, dtype=np.int64),
        instruction_count=count,
        entry_pc=program.entry,
        slot_kinds=slot_kinds,
        slot_targets=slot_targets,
    )
