"""Branch-trace capture and replay (the CBP/ChampSim-style substrate).

The software simulators the paper contrasts against (§II-B) consume branch
*traces*: per-branch records of (pc, type, taken, target).  This module
captures such traces from the interpreter, stores them compactly (npz), and
characterizes them — so the repository supports the trace-based workflow as
a first-class (if deliberately inferior, per the paper) methodology, and so
workload branch character is itself measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.isa.interpreter import Interpreter
from repro.isa.program import Program

#: Branch-type codes in the trace format.
TYPE_COND = 0
TYPE_JAL = 1
TYPE_JALR = 2
TYPE_CALL = 3
TYPE_RET = 4


@dataclass
class BranchTrace:
    """Columnar trace of every control-flow instruction executed."""

    pcs: np.ndarray      # int64
    types: np.ndarray    # uint8 (TYPE_*)
    taken: np.ndarray    # bool (always True for jumps)
    targets: np.ndarray  # int64 (next_pc when taken)
    #: Architectural instruction count of the traced run (for MPKI).
    instruction_count: int = 0

    def __len__(self) -> int:
        return len(self.pcs)

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        np.savez_compressed(
            Path(path),
            pcs=self.pcs,
            types=self.types,
            taken=self.taken,
            targets=self.targets,
            instruction_count=np.int64(self.instruction_count),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BranchTrace":
        data = np.load(Path(path))
        return cls(
            pcs=data["pcs"],
            types=data["types"],
            taken=data["taken"],
            targets=data["targets"],
            instruction_count=int(data["instruction_count"]),
        )

    # ------------------------------------------------------------------
    def characterize(self) -> Dict[str, float]:
        """Workload branch-character summary (the per-benchmark table)."""
        cond = self.types == TYPE_COND
        n_cond = int(cond.sum())
        stats: Dict[str, float] = {
            "branches": float(len(self)),
            "cond_branches": float(n_cond),
            "branch_density": len(self) / max(1, self.instruction_count),
            "taken_rate": float(self.taken[cond].mean()) if n_cond else 0.0,
            "indirect_share": float((self.types == TYPE_JALR).mean()) if len(self) else 0.0,
            "call_ret_share": float(
                np.isin(self.types, (TYPE_CALL, TYPE_RET)).mean()
            ) if len(self) else 0.0,
        }
        # Per-site outcome entropy proxy: share of conditional branch sites
        # with mixed outcomes (the "hard branch" population).
        sites: Dict[int, list] = {}
        for pc, t, tk in zip(self.pcs[cond], self.types[cond], self.taken[cond]):
            sites.setdefault(int(pc), []).append(bool(tk))
        mixed = sum(1 for v in sites.values() if 0 < sum(v) < len(v))
        stats["static_cond_sites"] = float(len(sites))
        stats["mixed_site_share"] = mixed / max(1, len(sites))
        return stats


def capture_trace(program: Program, max_instructions: int = 5_000_000) -> BranchTrace:
    """Execute ``program`` and record every control-flow transfer."""
    pcs, types, taken, targets = [], [], [], []
    count = 0
    for record in Interpreter(program).run(max_instructions):
        count += 1
        instr = record.instr
        if instr.is_cond_branch:
            kind = TYPE_COND
        elif instr.is_call:
            kind = TYPE_CALL
        elif instr.is_ret:
            kind = TYPE_RET
        elif instr.is_indirect:
            kind = TYPE_JALR
        elif instr.is_jump:
            kind = TYPE_JAL
        else:
            continue
        pcs.append(record.pc)
        types.append(kind)
        taken.append(record.taken or instr.is_jump)
        targets.append(record.next_pc)
    return BranchTrace(
        pcs=np.asarray(pcs, dtype=np.int64),
        types=np.asarray(types, dtype=np.uint8),
        taken=np.asarray(taken, dtype=bool),
        targets=np.asarray(targets, dtype=np.int64),
        instruction_count=count,
    )
