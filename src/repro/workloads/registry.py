"""Uniform workload naming and resolution (the ``WorkloadSource`` layer).

Entry points used to hard-code their own workload spellings: the CLI knew
the SPECint/Dhrystone/CoreMark names, the golden gate built micros
directly, and captured ``BranchTrace`` files could not be named at all.
This module gives every execution backend one resolution rule:

- a named preset (any SPECint kernel, ``dhrystone``, ``coremark``, or a
  micro kernel) builds its :class:`~repro.isa.program.Program` through the
  builder registry;
- a path ending in ``.npz`` is a stored branch trace (replayable, and —
  since traces do not carry instruction bytes — valid only for the
  ``replay`` backend);
- an in-memory :class:`Program` or an explicit :class:`WorkloadSource`
  passes through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.isa.program import Program
from repro.workloads.coremark import build_coremark
from repro.workloads.dhrystone import build_dhrystone
from repro.workloads.micro import MICRO_NAMES, build_micro
from repro.workloads.specint import SPECINT_NAMES, build as build_specint
from repro.workloads.traces import BranchTrace, capture_trace


@dataclass
class WorkloadSource:
    """One workload, in whichever form a backend can consume.

    Exactly one of ``program`` / ``trace_path`` is set.  Backends that
    execute instructions (``cycle``, ``trace``) require the program;
    ``replay`` accepts either — given a program it captures the trace on
    the fly, given an ``.npz`` path it loads the stored columns.
    """

    name: str
    program: Optional[Program] = None
    trace_path: Optional[Union[str, Path]] = None

    def require_program(self, backend: str) -> Program:
        if self.program is None:
            raise ValueError(
                f"workload {self.name!r} is a stored trace "
                f"({self.trace_path}); the {backend!r} backend executes "
                f"instructions and needs a Program — use the replay backend "
                f"for .npz traces"
            )
        return self.program

    def branch_trace(self, max_instructions: Optional[int] = None) -> BranchTrace:
        """The workload as a :class:`BranchTrace` (loaded or captured).

        An on-the-fly capture is bounded by the same default instruction
        budget the ``trace`` backend uses, so an uncapped ``trace`` run and
        a replay of a default capture cover the same stream.
        """
        if self.trace_path is not None:
            return BranchTrace.load(self.trace_path)
        from repro.backends.base import DEFAULT_TRACE_INSTRUCTIONS

        limit = (
            max_instructions
            if max_instructions is not None
            else DEFAULT_TRACE_INSTRUCTIONS
        )
        return capture_trace(self.program, max_instructions=limit)


#: Named builders, ``name -> builder(scale) -> Program``.
WORKLOAD_BUILDERS: Dict[str, Callable[[float], Program]] = {}


def register_workload(name: str, builder: Callable[[float], Program]) -> None:
    if name in WORKLOAD_BUILDERS:
        raise ValueError(f"workload {name!r} already registered")
    WORKLOAD_BUILDERS[name] = builder


for _name in SPECINT_NAMES:
    register_workload(_name, lambda scale, _n=_name: build_specint(_n, scale))
register_workload("dhrystone", build_dhrystone)
register_workload("coremark", build_coremark)
for _name in MICRO_NAMES:
    register_workload(_name, lambda scale, _n=_name: build_micro(_n, scale))


def workload_names() -> Tuple[str, ...]:
    """Every registered workload name, in registration order."""
    return tuple(WORKLOAD_BUILDERS)


def build_workload(name: str, scale: float = 0.5) -> Program:
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; have {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    return builder(scale)


def resolve_workload(
    spec: Union[str, Path, Program, WorkloadSource],
    scale: float = 0.5,
) -> WorkloadSource:
    """Normalize any workload spelling to a :class:`WorkloadSource`."""
    if isinstance(spec, WorkloadSource):
        return spec
    if isinstance(spec, Program):
        return WorkloadSource(name=spec.name, program=spec)
    text = str(spec)
    if text.endswith(".npz"):
        return WorkloadSource(name=Path(text).stem, trace_path=text)
    return WorkloadSource(name=text, program=build_workload(text, scale))
