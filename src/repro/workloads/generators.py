"""Kernel library for synthetic branch-behaviour workloads.

Each ``emit_*`` function appends a leaf subroutine to a program and returns
its entry label.  Kernels follow a fixed register convention so they compose
freely:

- ``r0`` — hardwired zero, ``r15`` — link register, ``r14`` — stack pointer
  (only the recursion kernel touches it);
- ``r11``/``r12`` — reserved for the outer driver loop;
- ``r1``–``r10`` — kernel-local scratch.

Branch characters available:

================  ====================================================
kernel            character
================  ====================================================
stream            long predictable loop, high IPC
data_branches     per-element random outcomes from a static array
lcg_branches      in-program LCG: outcomes unlearnable by any history
correlated        short repeating pattern: history-predictable
nested_loops      fixed trip counts: loop-predictor food
linked_list       pointer chase w/ value branches and cache misses
switch            indirect dispatch through a jump table
recursive         call/return depth: RAS exercise
dense_branches    many adjacent branches: fetch-packet aliasing
hammock           short forward branches over 1-2 ops: SFB food
string_ops        small copy/compare loops (Dhrystone flavour)
================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instructions import RA, SP
from repro.isa.program import Program, ProgramBuilder

#: First data address handed out by the allocator.
DATA_BASE = 100_000
#: Initial stack pointer (grows down, far from the data region).
STACK_BASE = 90_000


class DataAllocator:
    """Bump allocator for static data regions."""

    def __init__(self, base: int = DATA_BASE):
        self._next = base

    def alloc(self, n_words: int) -> int:
        base = self._next
        self._next += n_words
        return base


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------

def emit_stream(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 64,
) -> str:
    """Array reduction: one long, perfectly predictable loop."""
    base = alloc.alloc(n)
    b.data_block(base, rng.randint(0, 1000, size=n))
    out = alloc.alloc(1)
    entry = f"{tag}_stream"
    b.label(entry)
    b.li(1, base)
    b.li(2, base + n)
    b.li(3, 0)
    b.label(f"{entry}_loop")
    b.ld(4, 1, 0)
    b.add(3, 3, 4)
    b.addi(1, 1, 1)
    b.blt(1, 2, f"{entry}_loop")
    b.li(5, out)
    b.st(3, 5, 0)
    b.ret()
    return entry


def emit_data_branches(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 64,
    bias: float = 0.5,
) -> str:
    """Branches on per-element random data (taken with probability ``bias``).

    The same sequence repeats every kernel invocation, so very long
    histories could in principle learn it; within realistic history lengths
    these behave as biased coin flips.
    """
    base = alloc.alloc(n)
    b.data_block(base, (rng.random_sample(n) < bias).astype(int))
    entry = f"{tag}_datab"
    b.label(entry)
    b.li(1, base)
    b.li(2, base + n)
    b.li(3, 0)
    b.label(f"{entry}_loop")
    b.ld(4, 1, 0)
    b.beq(4, 0, f"{entry}_skip")
    b.addi(3, 3, 1)
    b.label(f"{entry}_skip")
    b.addi(1, 1, 1)
    b.blt(1, 2, f"{entry}_loop")
    b.ret()
    return entry


def emit_lcg_branches(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 48,
    threshold: int = 128,
) -> str:
    """Branches on a live linear-congruential generator.

    The LCG state persists in memory across invocations, so the outcome
    sequence never repeats: this is the irreducible-misprediction floor of
    benchmarks like mcf and deepsjeng.  ``threshold``/256 sets the taken
    probability.
    """
    state_addr = alloc.alloc(1)
    b.data_word(state_addr, int(rng.randint(1, 2**31)))
    entry = f"{tag}_lcg"
    b.label(entry)
    b.li(1, state_addr)
    b.ld(2, 1, 0)          # r2 = LCG state
    b.li(3, 0)             # r3 = i
    b.li(4, n)
    b.li(5, 6364136223846793005)
    b.li(9, 33)
    b.label(f"{entry}_loop")
    b.mul(2, 2, 5)
    b.addi(2, 2, 1442695040888963407)
    # Take *high* bits: the low bits of a power-of-two-modulus LCG are
    # short-period and would be history-predictable.
    b.shr(6, 2, 9)
    b.andi(6, 6, 0xFF)
    b.li(7, threshold)
    b.blt(6, 7, f"{entry}_taken")
    b.addi(8, 8, 1)
    b.jump(f"{entry}_join")
    b.label(f"{entry}_taken")
    b.addi(8, 8, 3)
    b.label(f"{entry}_join")
    b.addi(3, 3, 1)
    b.blt(3, 4, f"{entry}_loop")
    b.st(2, 1, 0)          # persist the state
    b.ret()
    return entry


def emit_correlated(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 64,
    period: int = 8,
) -> str:
    """Branches following a short repeating pattern.

    History-based predictors (GShare, GTag, TAGE, local tables) learn the
    period; a plain bimodal sees only the pattern's bias.
    """
    pattern = (rng.random_sample(period) < 0.5).astype(int)
    if pattern.sum() in (0, period):
        pattern[0] = 1 - pattern[0]  # ensure the pattern actually alternates
    data = np.tile(pattern, n // period + 1)[:n]
    base = alloc.alloc(n)
    b.data_block(base, data)
    entry = f"{tag}_corr"
    b.label(entry)
    b.li(1, base)
    b.li(2, base + n)
    b.li(3, 0)
    b.label(f"{entry}_loop")
    b.ld(4, 1, 0)
    b.bne(4, 0, f"{entry}_taken")
    b.addi(3, 3, 2)
    b.jump(f"{entry}_join")
    b.label(f"{entry}_taken")
    b.addi(3, 3, 5)
    b.label(f"{entry}_join")
    b.addi(1, 1, 1)
    b.blt(1, 2, f"{entry}_loop")
    b.ret()
    return entry


def emit_nested_loops(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    trips: Sequence[int] = (5, 7, 3),
) -> str:
    """A three-level loop nest with constant trip counts.

    Each level's back-edge mispredicts once per exit on counter-based
    predictors; a loop predictor learns the exact trip counts.
    """
    if len(trips) != 3:
        raise ValueError("nested_loops expects exactly 3 trip counts")
    entry = f"{tag}_nest"
    t0, t1, t2 = trips
    b.label(entry)
    b.li(1, 0)
    b.li(4, 0)  # accumulator
    b.label(f"{entry}_l0")
    b.li(2, 0)
    b.label(f"{entry}_l1")
    b.li(3, 0)
    b.label(f"{entry}_l2")
    b.addi(4, 4, 1)
    b.addi(3, 3, 1)
    b.li(5, t2)
    b.blt(3, 5, f"{entry}_l2")
    b.addi(2, 2, 1)
    b.li(5, t1)
    b.blt(2, 5, f"{entry}_l1")
    b.addi(1, 1, 1)
    b.li(5, t0)
    b.blt(1, 5, f"{entry}_l0")
    b.ret()
    return entry


def emit_linked_list(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n_nodes: int = 64,
    spread: int = 8,
) -> str:
    """Pointer chase over shuffled two-word nodes with a value branch.

    ``spread`` multiplies the memory footprint so large lists overflow the
    L1 (mcf/omnetpp flavour: dependent loads + data-dependent branches).
    """
    region = alloc.alloc(n_nodes * 2 * spread)
    order = rng.permutation(n_nodes)
    addresses = [region + int(i) * 2 * spread for i in order]
    values = rng.randint(0, 2, size=n_nodes)
    for idx in range(n_nodes):
        addr = addresses[idx]
        nxt = addresses[idx + 1] if idx + 1 < n_nodes else 0
        b.data_word(addr, int(values[idx]))
        b.data_word(addr + 1, nxt)
    entry = f"{tag}_list"
    b.label(entry)
    b.li(1, addresses[0])
    b.li(3, 0)
    b.label(f"{entry}_loop")
    b.ld(4, 1, 0)          # node value
    b.beq(4, 0, f"{entry}_even")
    b.addi(3, 3, 1)
    b.label(f"{entry}_even")
    b.ld(1, 1, 1)          # next pointer (dependent load)
    b.bne(1, 0, f"{entry}_loop")
    b.ret()
    return entry


def emit_switch(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 48,
    n_cases: int = 6,
) -> str:
    """Indirect dispatch through a jump table (interpreter flavour).

    Case selection comes from a static random array, so the indirect jump's
    target changes constantly — the stress case for BTB-based indirect
    prediction.
    """
    sel_base = alloc.alloc(n)
    b.data_block(sel_base, rng.randint(0, n_cases, size=n))
    table_base = alloc.alloc(n_cases)
    entry = f"{tag}_switch"
    b.label(entry)
    b.li(1, sel_base)
    b.li(2, sel_base + n)
    b.li(6, 0)
    b.label(f"{entry}_loop")
    b.ld(3, 1, 0)          # case id
    b.li(4, table_base)
    b.add(4, 4, 3)
    b.ld(5, 4, 0)          # case handler pc
    b.jalr(5)              # indirect dispatch (plain jump, no link)
    b.label(f"{entry}_join")
    b.addi(1, 1, 1)
    b.blt(1, 2, f"{entry}_loop")
    b.ret()
    for case in range(n_cases):
        case_label = f"{entry}_case{case}"
        b.data_label(table_base + case, case_label)
        b.label(case_label)
        b.addi(6, 6, case + 1)
        b.xori(6, 6, case)
        b.jump(f"{entry}_join")
    return entry


def emit_recursive(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    depth: int = 8,
) -> str:
    """Self-recursion to ``depth``: exercises calls, returns, and the RAS."""
    entry = f"{tag}_rec"
    helper = f"{entry}_inner"
    b.label(entry)
    b.addi(SP, SP, -1)
    b.st(RA, SP, 0)
    b.li(1, depth)
    b.call(helper)
    b.ld(RA, SP, 0)
    b.addi(SP, SP, 1)
    b.ret()
    b.label(helper)
    b.addi(SP, SP, -2)
    b.st(RA, SP, 0)
    b.st(1, SP, 1)
    b.beq(1, 0, f"{helper}_base")
    b.addi(1, 1, -1)
    b.call(helper)
    b.label(f"{helper}_base")
    b.ld(1, SP, 1)
    b.ld(RA, SP, 0)
    b.addi(SP, SP, 2)
    b.ret()
    return entry


def emit_dense_branches(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 48,
    n_tests: int = 6,
) -> str:
    """Adjacent single-skip branches testing bits of a repeating value.

    Several branches land in the same fetch packet, stressing superscalar
    prediction and punishing untagged predictors through aliasing (§III-C;
    the paper notes the Tournament design "suffers from aliasing issues").
    The tested values repeat with a short period so the branches are
    history-predictable *if* the predictor can tell them apart.
    """
    period = 16
    pattern = rng.randint(0, 1 << n_tests, size=period)
    base = alloc.alloc(n)
    b.data_block(base, np.tile(pattern, n // period + 1)[:n])
    entry = f"{tag}_dense"
    b.label(entry)
    b.li(1, base)
    b.li(2, base + n)
    b.li(3, 0)
    b.label(f"{entry}_loop")
    b.ld(4, 1, 0)
    for bit in range(n_tests):
        b.andi(5, 4, 1 << bit)
        b.beq(5, 0, f"{entry}_s{bit}")
        b.addi(3, 3, 1)
        b.label(f"{entry}_s{bit}")
    b.addi(1, 1, 1)
    b.blt(1, 2, f"{entry}_loop")
    b.ret()
    return entry


def emit_hammock(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    n: int = 48,
    bias: float = 0.5,
) -> str:
    """Short forward branches over two ALU ops, data-dependent.

    The canonical short-forwards-branch (hammock) shape of §VI-C: costly to
    predict, trivially predicated.
    """
    base = alloc.alloc(n)
    b.data_block(base, (rng.random_sample(n) < bias).astype(int))
    entry = f"{tag}_ham"
    b.label(entry)
    b.li(1, base)
    b.li(2, base + n)
    b.li(3, 0)
    b.label(f"{entry}_loop")
    b.ld(4, 1, 0)
    b.bne(4, 0, f"{entry}_skip")
    b.addi(3, 3, 1)
    b.xori(3, 3, 5)
    b.label(f"{entry}_skip")
    b.addi(1, 1, 1)
    b.blt(1, 2, f"{entry}_loop")
    b.ret()
    return entry


def emit_string_ops(
    b: ProgramBuilder,
    alloc: DataAllocator,
    rng: np.random.RandomState,
    tag: str,
    length: int = 12,
) -> str:
    """Fixed-length copy and compare loops (Dhrystone's Str_Copy/Str_Comp)."""
    src = alloc.alloc(length)
    dst = alloc.alloc(length)
    b.data_block(src, rng.randint(1, 100, size=length))
    entry = f"{tag}_str"
    b.label(entry)
    # Copy loop.
    b.li(1, src)
    b.li(2, dst)
    b.li(3, src + length)
    b.label(f"{entry}_copy")
    b.ld(4, 1, 0)
    b.st(4, 2, 0)
    b.addi(1, 1, 1)
    b.addi(2, 2, 1)
    b.blt(1, 3, f"{entry}_copy")
    # Compare loop with an equality early-exit that never fires (the copy
    # just succeeded), i.e. a highly biased branch.
    b.li(1, src)
    b.li(2, dst)
    b.li(3, src + length)
    b.label(f"{entry}_cmp")
    b.ld(4, 1, 0)
    b.ld(5, 2, 0)
    b.bne(4, 5, f"{entry}_diff")
    b.addi(1, 1, 1)
    b.addi(2, 2, 1)
    b.blt(1, 3, f"{entry}_cmp")
    b.label(f"{entry}_diff")
    b.ret()
    return entry


# ----------------------------------------------------------------------
# Workload assembly
# ----------------------------------------------------------------------

class WorkloadBuilder:
    """Assembles kernels into a complete benchmark program.

    The driver loop calls each kernel once per outer iteration::

        start: sp = STACK_BASE; r11 = 0; r12 = outer
        main:  call k1; call k2; ...; r11 += 1; blt r11, r12, main; halt
    """

    def __init__(self, name: str, seed: int = 1):
        self.builder = ProgramBuilder(name)
        self.alloc = DataAllocator()
        self.rng = np.random.RandomState(seed)
        self._kernels: List[str] = []
        self._emitted_header = False
        self._body_jump_emitted = False

    def add(self, emit_fn, tag: Optional[str] = None, **params) -> str:
        """Emit a kernel subroutine and schedule it in the driver loop."""
        if not self._emitted_header:
            self._emit_header()
        tag = tag or f"k{len(self._kernels)}"
        label = emit_fn(self.builder, self.alloc, self.rng, tag, **params)
        self._kernels.append(label)
        return label

    def _emit_header(self) -> None:
        # Reserve PC 0..: jump over the kernel bodies to the driver, which
        # is emitted last (kernels are emitted as they are added).
        self.builder.jump("main_driver")
        self._emitted_header = True

    def build(self, outer_iterations: int = 20) -> Program:
        if not self._kernels:
            raise ValueError("workload has no kernels")
        b = self.builder
        b.label("main_driver")
        b.li(SP, STACK_BASE)
        b.li(11, 0)
        b.li(12, outer_iterations)
        b.label("main_loop")
        for label in self._kernels:
            b.call(label)
        b.addi(11, 11, 1)
        b.blt(11, 12, "main_loop")
        b.halt()
        return b.build()


#: Name -> emitter registry over every kernel above.  The differential
#: fuzzer (:mod:`repro.fuzz`) composes random workloads from this table and
#: shrinks failing ones by deleting entries from a kernel-spec list, so the
#: registry is the unit of both generation and minimization.
KERNEL_EMITTERS: Dict[str, Callable[..., str]] = {
    "stream": emit_stream,
    "data_branches": emit_data_branches,
    "lcg_branches": emit_lcg_branches,
    "correlated": emit_correlated,
    "nested_loops": emit_nested_loops,
    "linked_list": emit_linked_list,
    "switch": emit_switch,
    "recursive": emit_recursive,
    "dense_branches": emit_dense_branches,
    "hammock": emit_hammock,
    "string_ops": emit_string_ops,
}


def assemble_workload(
    name: str,
    seed: int,
    kernels: Sequence[Tuple[str, Mapping[str, object]]],
    outer_iterations: int = 4,
) -> Program:
    """Build a program from declarative ``(kernel_name, params)`` specs.

    The same spec list with the same ``seed`` always produces a bit-identical
    program (the kernels draw their data from one seeded RandomState in
    order), which is what makes fuzz cases replayable and shrinkable: the
    fuzzer mutates the spec list, never the emitted instructions.
    """
    builder = WorkloadBuilder(name, seed=seed)
    for kernel_name, params in kernels:
        try:
            emit = KERNEL_EMITTERS[kernel_name]
        except KeyError:
            raise KeyError(
                f"unknown kernel {kernel_name!r}; have {sorted(KERNEL_EMITTERS)}"
            ) from None
        builder.add(emit, **dict(params))
    return builder.build(outer_iterations)


def estimate_dynamic_length(program: Program, cap: int = 5_000_000) -> int:
    """Dynamic instruction count of a workload (runs the interpreter)."""
    from repro.isa.interpreter import Interpreter

    count = 0
    for _ in Interpreter(program).run(cap):
        count += 1
    return count
