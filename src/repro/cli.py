"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``run``      — run one workload on one predictor, print the metrics.
- ``sweep``    — run a set of workloads across a set of predictors.
- ``trace``    — capture a branch trace to npz, or replay a stored one.
- ``area``     — area breakdown of a predictor (Fig. 8 style).
- ``storage``  — Table-I style storage summary of the three presets.
- ``topology`` — parse and describe a topology string (sanity check).
- ``golden``   — check or regenerate the committed golden-stats snapshot.
- ``check``    — static analysis: topology, component contracts, lints.
- ``fuzz``     — differential fuzzing: run a campaign or replay a
  minimized reproducer artifact (see ``docs/fuzzing.md``).
- ``serve``    — run the long-lived evaluation service (asyncio HTTP job
  server over the parallel engine; see ``docs/service.md``).
- ``submit``   — submit evaluation jobs to a running service and report
  per-job results, warm-hit and dedup counts.
- ``explore``  — budgeted evolutionary search over the topology grammar:
  Pareto front of MPKI vs area vs predict latency, resumable via the
  result cache (see ``docs/explore.md``).

``run`` and ``sweep`` take ``--backend {cycle,trace,replay}`` to pick the
execution methodology (see ``docs/backends.md``); workloads are named
through :mod:`repro.workloads.registry`, so a stored-trace ``.npz`` path
is a valid workload spelling for the ``replay`` backend.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import presets
from repro.core import compose
from repro.eval import harmonic_mean, run_suite, run_workload
from repro.eval.metrics import arithmetic_mean
from repro.frontend import CoreConfig
from repro.fuzz.oracles import ORACLES as FUZZ_ORACLES
from repro.synthesis import AreaModel, EnergyModel, format_breakdown
from repro.synthesis.report import format_matrix
from repro.workloads import SPECINT_NAMES
from repro.workloads.registry import resolve_workload

BACKEND_NAMES = ("cycle", "trace", "replay")

#: What ``sweep --workloads all`` expands to: the benchmark suite (micro
#: kernels stay opt-in by name).
BENCH_WORKLOADS = tuple(SPECINT_NAMES) + ("dhrystone", "coremark")


def _build_predictor(spec: str):
    """A preset name or a raw topology string."""
    key = spec.lower().replace("-", "_")
    if key in presets.PRESET_NAMES:
        return presets.build(key)
    return compose(spec)


def _cmd_run(args) -> int:
    source = resolve_workload(args.workload, args.scale)
    predictor = _build_predictor(args.predictor)
    config = CoreConfig(sfb_enabled=args.sfb)
    result = run_workload(
        predictor,
        source,
        config,
        max_instructions=args.max_instructions,
        system_name=args.predictor,
        telemetry=args.telemetry or args.trace is not None,
        trace_path=args.trace,
        backend=args.backend,
    )
    print(f"backend: {result.backend}")
    print(result.row())
    print(
        f"  branches={result.branches} mispredicts={result.branch_mispredicts} "
        f"indirect-misses={result.target_mispredicts} flushes={result.flushes}"
    )
    if args.energy:
        epi = EnergyModel().energy_per_instruction(predictor, result.instructions)
        print(f"  predictor energy: {epi:.1f} pJ/instruction")
    if result.telemetry is not None:
        from repro.eval.profiler import format_attribution
        from repro.telemetry import format_summary

        print()
        print(format_summary(result.telemetry))
        if source.program is not None:
            print()
            print(format_attribution(result.telemetry, source.program))
    if args.trace is not None:
        print(f"\nevent trace written to {args.trace}")
    return 0


def _cmd_sweep(args) -> int:
    names = (
        list(BENCH_WORKLOADS)
        if args.workloads == ["all"]
        else args.workloads
    )
    programs = {}
    for name in names:
        source = resolve_workload(name, args.scale)
        programs[source.name] = (
            source.program if source.program is not None else source.trace_path
        )
    results = run_suite(
        args.predictors,
        programs,
        jobs=args.jobs,
        cache=args.cache,
        telemetry=args.telemetry,
        backend=args.backend,
    )
    mpki = {s: {w: r.mpki for w, r in rows.items()} for s, rows in results.items()}
    for system in results:
        mpki[system]["MEAN"] = arithmetic_mean(list(mpki[system].values()))
    print(f"backend: {args.backend}")
    print("MPKI:")
    print(format_matrix(mpki, value_format="{:7.1f}", col_width=10))
    if args.backend == "cycle":
        # Trace-driven backends carry no timing, so IPC is cycle-only.
        ipc = {
            s: {w: r.ipc for w, r in rows.items()} for s, rows in results.items()
        }
        for system in results:
            ipc[system]["HMEAN"] = harmonic_mean(list(ipc[system].values()))
        print("\nIPC:")
        print(format_matrix(ipc, value_format="{:7.2f}", col_width=10))
    if args.telemetry:
        from repro.telemetry import format_component_table

        for system, rows in results.items():
            for workload, result in rows.items():
                if result.telemetry is None:
                    continue
                print(f"\n{system} / {workload}:")
                print(format_component_table(result.telemetry))
    return 0


def _cmd_golden(args) -> int:
    from repro.eval import golden

    path = args.path or golden.DEFAULT_GOLDEN_PATH

    def progress(preset: str, workload: str) -> None:
        print(f"  running {preset} / {workload} ...", flush=True)

    if args.update:
        print(f"regenerating golden snapshot at {path}")
        golden.update_goldens(path, progress=progress)
        print("done")
        return 0
    print(f"checking fresh runs against {path}")
    ok, messages = golden.check_goldens(path, progress=progress)
    if ok:
        print("golden stats match")
        return 0
    print(f"GOLDEN STATS MISMATCH ({len(messages)} differences):")
    for message in messages:
        print(f"  {message}")
    print(
        "if the change is intentional, regenerate with "
        "`repro golden --update` and commit the diff"
    )
    return 1


def _cmd_trace(args) -> int:
    if args.action == "capture":
        source = resolve_workload(args.workload, args.scale)
        if source.program is None:
            print(
                f"{args.workload} is already a stored trace", file=sys.stderr
            )
            return 2
        trace = source.branch_trace(args.max_instructions)
        trace.save(args.out)
        print(
            f"captured {source.name}: {trace.instruction_count} instructions, "
            f"{len(trace)} branch records -> {args.out}"
        )
        return 0
    # replay
    result = run_workload(
        _build_predictor(args.predictor),
        args.trace_file,
        max_instructions=args.max_instructions,
        system_name=args.predictor,
        backend="replay",
    )
    print(f"backend: {result.backend}")
    print(result.row())
    print(
        f"  branches={result.branches} "
        f"mispredicts={result.branch_mispredicts}"
    )
    return 0


def _cmd_area(args) -> int:
    predictor = _build_predictor(args.predictor)
    model = AreaModel()
    print(f"{predictor.describe()}")
    print(f"direction storage: {predictor.direction_storage_kib():.1f} KiB")
    print(format_breakdown(model.predictor_breakdown(predictor)))
    print(f"share of core area: {model.predictor_fraction(predictor) * 100:.1f}%")
    return 0


def _cmd_storage(args) -> int:
    for name in presets.PRESET_NAMES:
        predictor = presets.build(name)
        print(
            f"{name:10s} {predictor.describe():44s} "
            f"direction={predictor.direction_storage_kib():6.1f} KiB  "
            f"total={predictor.total_storage_kib():6.1f} KiB"
        )
    return 0


def _cmd_topology(args) -> int:
    predictor = compose(args.spec)
    print(f"parsed:    {predictor.describe()}")
    print(f"depth:     {predictor.depth} cycles")
    print(f"components ({len(predictor.components)}):")
    for component in predictor.components:
        flags = []
        if component.uses_global_history:
            flags.append("ghist")
        if component.uses_local_history:
            flags.append("lhist")
        if getattr(component, "uses_path_history", False):
            flags.append("phist")
        if component.provides_targets:
            flags.append("targets")
        print(
            f"  {component.name:10s} latency={component.latency} "
            f"meta_bits={component.meta_bits:3d} "
            f"[{', '.join(flags) if flags else 'pc-only'}]"
        )
    return 0


def _cmd_check(args) -> int:
    from repro.analysis import diagnostics as diag_mod
    from repro.analysis.contracts import check_library
    from repro.analysis.lints import lint_paths
    from repro.analysis.topology_check import (
        DEFAULT_META_BUDGET,
        check_spec,
        check_topology,
    )
    from repro.core.composer import ComposerConfig

    run_topologies = list(args.topology or [])
    run_components = args.components
    run_lint = args.lint
    run_spec = args.spec
    if args.all:
        run_components = True
        run_lint = True
        run_spec = True
    if not (run_topologies or run_components or run_lint or run_spec):
        print(
            "nothing to check: pass --topology SPEC, --components, --lint, "
            "--spec, or --all",
            file=sys.stderr,
        )
        return 2

    # A typo'd --ignore code would otherwise silently suppress nothing and
    # let the intended diagnostic keep failing (or worse, a stale code
    # would read as if it were still being enforced).
    unknown_ignores = sorted(
        {code.strip().upper() for code in (args.ignore or []) if code.strip()}
        - set(diag_mod.RULES)
    )
    if unknown_ignores:
        known = ", ".join(sorted(diag_mod.RULES))
        print(
            f"unknown rule code(s) in --ignore: {', '.join(unknown_ignores)} "
            f"(known codes: {known})",
            file=sys.stderr,
        )
        return 2

    config_kwargs = {}
    if args.ghist_bits is not None:
        config_kwargs["global_history_bits"] = args.ghist_bits
    if args.lhist_bits is not None:
        config_kwargs["local_history_bits"] = args.lhist_bits
    config = ComposerConfig(**config_kwargs) if config_kwargs else None
    meta_budget = args.meta_budget or DEFAULT_META_BUDGET

    diags: List[diag_mod.Diagnostic] = []
    for spec in run_topologies:
        key = spec.lower().replace("-", "_")
        if key in presets.PRESET_NAMES:
            predictor = presets.build(key)
            diags.extend(
                check_topology(
                    predictor.topology,
                    config or predictor.config,
                    meta_budget,
                    subject=key,
                )
            )
        else:
            diags.extend(check_spec(spec, config=config, meta_budget=meta_budget))
    if args.all:
        # Every shipped preset, analyzed against its own composed config.
        for name in presets.PRESET_NAMES:
            predictor = presets.build(name)
            diags.extend(
                check_topology(
                    predictor.topology,
                    predictor.config,
                    meta_budget,
                    subject=name,
                )
            )
    if run_components:
        diags.extend(check_library())
    if run_spec:
        from repro.analysis.spec_check import check_library_specs

        diags.extend(check_library_specs())
    if run_lint:
        diags.extend(lint_paths(args.lint_path or None))

    diags = diag_mod.filter_ignored(diags, args.ignore or [])
    code = diag_mod.exit_code(diags, strict=args.strict)
    if args.json:
        print(diag_mod.to_json(diags))
        return code
    for d in diags:
        print(d.format())
    errors = diag_mod.count_errors(diags)
    warnings = diag_mod.count_warnings(diags)
    print(f"repro check: {errors} error(s), {warnings} warning(s)")
    return code


def _cmd_fuzz(args) -> int:
    from repro.fuzz import FuzzConfig, run_campaign

    if args.action == "repro":
        from repro.fuzz import replay_reproducer

        outcome = replay_reproducer(args.reproducer)
        repro = outcome.reproducer
        print(f"reproducer: {args.reproducer}")
        print(f"oracle:     {repro.oracle}")
        print(f"case:       {repro.case.describe()}")
        if repro.generator_drift:
            print(
                "note: generators no longer rebuild this program from its "
                "spec; replaying the stored instruction columns"
            )
        if outcome.status == "clean":
            print("CLEAN: the recorded failure no longer reproduces")
        elif outcome.status == "reproduced":
            print(
                f"REPRODUCED: same {len(outcome.mismatches)} mismatch(es) "
                "as recorded"
            )
        else:
            print("DIVERGED: still failing, but differently than recorded")
        for mismatch in outcome.mismatches:
            print(mismatch.format())
        return outcome.exit_code

    # run
    oracles = args.oracles or list(FUZZ_ORACLES)
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        oracles=tuple(oracles),
        max_instructions=args.max_instructions,
        include_presets=not args.no_presets,
        topologies=args.topology or None,
        out_dir=None if args.no_artifacts else Path(args.out_dir),
        minimize=not args.no_minimize,
        time_budget=args.budget,
        stop_after=args.stop_after,
    )
    progress = None if args.quiet else lambda line: print(line, flush=True)
    report = run_campaign(config, progress=progress)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_explore(args) -> int:
    from repro.explore import (
        ExploreConfig,
        check_explore_golden,
        explore,
        format_report,
        save_artifact,
        update_explore_golden,
    )
    from repro.explore.report import DEFAULT_GOLDEN_PATH, GOLDEN_EXPLORE_CONFIG

    golden_path = Path(args.golden_path or DEFAULT_GOLDEN_PATH)
    progress = None if args.quiet else lambda line: print(line, flush=True)

    if args.golden_update or args.golden_check:
        result = explore(GOLDEN_EXPLORE_CONFIG, progress=progress)
        if args.golden_update:
            path = update_explore_golden(golden_path, result=result)
            print(f"explore golden snapshot written to {path}")
            return 0
        ok, messages = check_explore_golden(golden_path, result=result)
        if ok:
            print("explore golden matches")
            return 0
        print(f"EXPLORE GOLDEN MISMATCH ({len(messages)} differences):")
        for message in messages:
            print(f"  {message}")
        print(
            "if the optimizer change is intentional, regenerate with "
            "`repro explore --golden-update` and commit the diff"
        )
        return 1

    config = ExploreConfig(
        seed=args.seed,
        generations=args.generations,
        population_size=args.population,
        budget_kib=args.budget_kib,
        workloads=tuple(args.workloads),
        scale=args.scale,
        max_instructions=args.max_instructions,
        backend=args.backend,
        jobs=args.jobs,
        cache=args.cache,
        eta=args.eta,
        rungs=args.rungs,
    )
    result = explore(config, progress=progress)
    print(format_report(result))
    if args.out is not None:
        save_artifact(Path(args.out), result)
        print(f"\nPareto artifact written to {args.out}")
    if args.require_improvement and not result.provenance["dominated_seeds"]:
        print(
            "FAIL: the front does not strictly dominate any seeded preset "
            "on MPKI-vs-area (--require-improvement)",
            file=sys.stderr,
        )
        return 1
    if not result.front:
        print("FAIL: empty Pareto front", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache,
        high_water=args.high_water,
        max_retries=args.retries,
        port_file=args.port_file,
        quiet=args.quiet,
    )
    if config.cache_dir is None and not args.no_cache:
        # Warm-cache hits are the point of running a service; default to a
        # private cache directory rather than silently recomputing.
        import tempfile

        config.cache_dir = tempfile.mkdtemp(prefix="repro-service-cache-")
        if not args.quiet:
            print(f"result cache: {config.cache_dir} (pass --cache DIR to pin)")
    return asyncio.run(serve(config))


def _cmd_submit(args) -> int:
    import asyncio
    import json

    from repro.service.client import ServiceClient, ServiceClientError

    port = args.port
    if args.port_file is not None:
        port = int(Path(args.port_file).read_text().strip())

    specs = []
    for predictor in args.predictors:
        for workload in args.workloads:
            spec = {
                "predictor": predictor,
                "workload": workload,
                "backend": args.backend,
                "scale": args.scale,
            }
            if args.max_instructions is not None:
                spec["max_instructions"] = args.max_instructions
            specs.extend([dict(spec)] * args.copies)

    async def drive():
        client = ServiceClient(host=args.host, port=port, timeout=args.timeout)
        response = await client.submit_batch(specs)
        views = response["jobs"]
        if args.wait:
            views = [
                await client.wait_job(v["id"], timeout=args.timeout)
                if v.get("state") not in ("done", "failed", "shed")
                else v
                for v in views
            ]
        return views, await client.metrics()

    try:
        views, metrics = asyncio.run(drive())
    except ServiceClientError as error:
        print(f"submit failed: {error}", file=sys.stderr)
        if error.retry_after is not None:
            print(f"retry after {error.retry_after:g}s", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as error:
        print(f"cannot reach service at {args.host}:{port}: {error}",
              file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps({"jobs": views, "metrics": metrics}, indent=2,
                         sort_keys=True))
    else:
        for view in views:
            spec = view.get("spec", {})
            tags = [t for t, on in (("cache-hit", view.get("cache_hit")),
                                    ("coalesced", view.get("coalesced")))
                    if on]
            line = (
                f"{view.get('id', '-'):>12s} {view['state']:7s} "
                f"{spec.get('predictor', '?'):12s} {spec.get('workload', '?'):14s}"
            )
            result = view.get("result")
            if result is not None:
                line += f" mpki={result['mpki']:7.2f}"
            if view.get("latency_seconds") is not None:
                line += f" {view['latency_seconds'] * 1000.0:8.1f}ms"
            if tags:
                line += f"  [{', '.join(tags)}]"
            if view.get("error"):
                line += f"  error: {view['error']}"
            print(line)
        print(
            f"submitted={len(views)} "
            f"cache_hits={sum(1 for v in views if v.get('cache_hit'))} "
            f"coalesced={sum(1 for v in views if v.get('coalesced'))} "
            f"shed={sum(1 for v in views if v['state'] == 'shed')} "
            f"(server: executions={metrics['executions']} "
            f"hit_rate={metrics['cache_hit_rate']})"
        )
    failed = [v for v in views if v["state"] in ("failed", "shed")]
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COBRA branch-predictor composition framework (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload on one predictor")
    run.add_argument("--predictor", default="tage_l",
                     help="preset name or topology string")
    run.add_argument("--workload", default="xz",
                     help="registered workload name or stored-trace .npz "
                          "path (replay backend)")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--backend", default="cycle", choices=BACKEND_NAMES,
                     help="execution backend (see docs/backends.md)")
    run.add_argument("--max-instructions", type=int, default=None,
                     help="bound the run's architectural instruction count")
    run.add_argument("--sfb", action="store_true",
                     help="enable short-forwards-branch predication")
    run.add_argument("--energy", action="store_true",
                     help="also report predictor energy per instruction")
    run.add_argument("--telemetry", action="store_true",
                     help="attach the telemetry collector and print the "
                          "per-component attribution summary")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a bounded JSONL event trace to PATH "
                          "(implies --telemetry)")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="workloads x predictors matrix")
    sweep.add_argument("--predictors", nargs="+",
                       default=["tourney", "b2", "tage_l"])
    sweep.add_argument("--workloads", nargs="+", default=["all"])
    sweep.add_argument("--scale", type=float, default=0.3)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the (predictor, workload) "
                            "matrix (1 = serial)")
    sweep.add_argument("--cache", default=None, metavar="DIR",
                       help="directory for the deterministic result cache "
                            "(off when omitted)")
    sweep.add_argument("--telemetry", action="store_true",
                       help="attach telemetry collectors and print "
                            "per-component tables for every cell")
    sweep.add_argument("--backend", default="cycle", choices=BACKEND_NAMES,
                       help="execution backend for every cell (IPC table "
                            "is cycle-only)")
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser(
        "trace", help="capture a branch trace to npz, or replay one"
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)
    capture = trace_sub.add_parser(
        "capture", help="run a workload and store its branch trace"
    )
    capture.add_argument("--workload", default="xz",
                         help="registered workload name")
    capture.add_argument("--scale", type=float, default=0.5)
    capture.add_argument("--out", required=True, metavar="PATH",
                         help="output .npz path")
    capture.add_argument("--max-instructions", type=int, default=None,
                         help="capture budget (default: the trace backends' "
                              "shared 1M-instruction default)")
    capture.set_defaults(func=_cmd_trace)
    replay = trace_sub.add_parser(
        "replay", help="drive a predictor from a stored .npz trace"
    )
    replay.add_argument("trace_file", help="stored-trace .npz path")
    replay.add_argument("--predictor", default="tage_l",
                        help="preset name or topology string")
    replay.add_argument("--max-instructions", type=int, default=None)
    replay.set_defaults(func=_cmd_trace)

    area = sub.add_parser("area", help="area breakdown of a predictor")
    area.add_argument("--predictor", default="tage_l")
    area.set_defaults(func=_cmd_area)

    storage = sub.add_parser("storage", help="Table-I storage summary")
    storage.set_defaults(func=_cmd_storage)

    topology = sub.add_parser("topology", help="parse a topology string")
    topology.add_argument("spec")
    topology.set_defaults(func=_cmd_topology)

    golden = sub.add_parser(
        "golden", help="check or regenerate the golden-stats snapshot"
    )
    golden.add_argument("--check", action="store_true",
                        help="compare fresh runs against the snapshot "
                             "(the default action)")
    golden.add_argument("--update", action="store_true",
                        help="regenerate the snapshot from fresh runs")
    golden.add_argument("--path", default=None,
                        help="snapshot location (default: goldens/"
                             "golden_stats.json)")
    golden.set_defaults(func=_cmd_golden)

    check = sub.add_parser(
        "check",
        help="static analysis: topology structure, component contracts, "
             "source lints",
    )
    check.add_argument("--topology", action="append", metavar="SPEC",
                       help="analyze a topology string or preset name "
                            "(repeatable)")
    check.add_argument("--components", action="store_true",
                       help="drive every library component through the "
                            "interface-contract harness (CON rules)")
    check.add_argument("--lint", action="store_true",
                       help="run the reproducibility lints (RPR rules)")
    check.add_argument("--spec", action="store_true",
                       help="verify every library component against its "
                            "declarative ComponentSpec (SPEC rules)")
    check.add_argument("--all", action="store_true",
                       help="components + lints + specs + every shipped "
                            "preset topology")
    check.add_argument("--json", action="store_true",
                       help="emit the machine-readable diagnostics document "
                            "(see docs/static_analysis.md for the schema)")
    check.add_argument("--strict", action="store_true",
                       help="exit non-zero on warnings, not just errors")
    check.add_argument("--ignore", nargs="+", default=None, metavar="CODE",
                       help="suppress diagnostics by rule code")
    check.add_argument("--lint-path", action="append", default=None,
                       metavar="PATH",
                       help="lint these files/directories instead of "
                            "src/repro (repeatable)")
    check.add_argument("--ghist-bits", type=int, default=None,
                       help="analyze topologies against this global-history "
                            "length instead of the default config")
    check.add_argument("--lhist-bits", type=int, default=None,
                       help="analyze topologies against this local-history "
                            "length instead of the default config")
    check.add_argument("--meta-budget", type=int, default=None, metavar="BITS",
                       help="per-entry metadata budget for TOP007 "
                            "(default 256)")
    check.set_defaults(func=_cmd_check)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random (topology, workload) cases "
             "through the oracle battery",
    )
    fuzz_sub = fuzz.add_subparsers(dest="action", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a seeded fuzz campaign"
    )
    fuzz_run.add_argument("--seed", type=int, default=0,
                          help="campaign seed; (seed, iteration) fully "
                               "determines every case")
    fuzz_run.add_argument("--iterations", type=int, default=50,
                          help="number of cases to draw")
    fuzz_run.add_argument("--oracles", nargs="+", default=None,
                          choices=sorted(FUZZ_ORACLES),
                          help="oracle subset (default: all)")
    fuzz_run.add_argument("--max-instructions", type=int, default=4000,
                          help="per-case instruction budget")
    fuzz_run.add_argument("--budget", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget; stop drawing new cases "
                               "once exceeded")
    fuzz_run.add_argument("--stop-after", type=int, default=None,
                          metavar="N",
                          help="stop the campaign after N failing cases")
    fuzz_run.add_argument("--out-dir", default="fuzz-reproducers",
                          help="directory for minimized reproducer "
                               "artifacts")
    fuzz_run.add_argument("--no-artifacts", action="store_true",
                          help="report failures without writing artifacts")
    fuzz_run.add_argument("--no-minimize", action="store_true",
                          help="keep failing cases unshrunk")
    fuzz_run.add_argument("--no-presets", action="store_true",
                          help="draw only random topologies (skip the "
                               "shipped-preset cases)")
    fuzz_run.add_argument("--topology", action="append", metavar="SPEC",
                          help="fuzz this fixed topology instead of random "
                               "draws (repeatable)")
    fuzz_run.add_argument("--quiet", action="store_true",
                          help="suppress per-case progress lines")
    fuzz_run.set_defaults(func=_cmd_fuzz)
    fuzz_repro = fuzz_sub.add_parser(
        "repro", help="replay a stored reproducer artifact"
    )
    fuzz_repro.add_argument("reproducer", help="reproducer .npz path")
    fuzz_repro.set_defaults(func=_cmd_fuzz)

    explore = sub.add_parser(
        "explore",
        help="budgeted Pareto search over the topology design space",
    )
    explore.add_argument("--seed", type=int, default=0,
                         help="search seed; fully determines the run")
    explore.add_argument("--generations", type=int, default=3)
    explore.add_argument("--population", type=int, default=12,
                         help="candidates per generation")
    explore.add_argument("--budget-kib", type=float, default=96.0,
                         help="per-candidate total storage budget (KiB)")
    explore.add_argument("--workloads", nargs="+",
                         default=["biased", "dispatch", "pattern_short",
                                  "counted_loops", "pattern_long"],
                         help="workload suite, cheap first (halving "
                              "prefixes follow this order)")
    explore.add_argument("--scale", type=float, default=0.2)
    explore.add_argument("--max-instructions", type=int, default=4000,
                         help="per-evaluation instruction budget")
    explore.add_argument("--backend", default="trace", choices=BACKEND_NAMES,
                         help="fitness backend (trace is the cheap default)")
    explore.add_argument("--jobs", type=int, default=1,
                         help="worker processes per evaluation batch")
    explore.add_argument("--cache", default=None, metavar="DIR",
                         help="result-cache directory; reruns with the "
                              "same seed replay from it with zero cold "
                              "evaluations")
    explore.add_argument("--eta", type=int, default=2,
                         help="halving promotion factor (keep best 1/eta)")
    explore.add_argument("--rungs", type=int, default=3,
                         help="halving rungs over the workload suite")
    explore.add_argument("--out", default=None, metavar="PATH",
                         help="write the Pareto artifact (JSON) here")
    explore.add_argument("--require-improvement", action="store_true",
                         help="exit non-zero unless the front strictly "
                              "dominates a seeded preset on MPKI-vs-area")
    explore.add_argument("--golden-check", action="store_true",
                         help="re-run the frozen tiny search and compare "
                              "against the committed snapshot")
    explore.add_argument("--golden-update", action="store_true",
                         help="regenerate the committed snapshot")
    explore.add_argument("--golden-path", default=None, metavar="PATH",
                         help="snapshot location (default: goldens/"
                              "golden_explore.json)")
    explore.add_argument("--quiet", action="store_true",
                         help="suppress per-generation progress lines")
    explore.set_defaults(func=_cmd_explore)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived evaluation service (HTTP job server)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 = pick a free port; see "
                            "--port-file)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes for cold jobs")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="result-cache directory (default: a fresh "
                            "private temp dir)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    serve.add_argument("--high-water", type=int, default=64,
                       help="backlog bound before submissions are shed "
                            "with 429")
    serve.add_argument("--retries", type=int, default=2,
                       help="per-job requeues after a worker death")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening "
                            "(for --port 0 orchestration)")
    serve.add_argument("--quiet", action="store_true")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit evaluation jobs to a running service"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8765)
    submit.add_argument("--port-file", default=None, metavar="PATH",
                        help="read the port from this file (written by "
                             "`repro serve --port-file`)")
    submit.add_argument("--predictors", nargs="+", default=["tourney"],
                        help="preset names or topology strings")
    submit.add_argument("--workloads", nargs="+", default=["biased"],
                        help="registered workload names or .npz paths")
    submit.add_argument("--backend", default="cycle", choices=BACKEND_NAMES)
    submit.add_argument("--scale", type=float, default=0.5)
    submit.add_argument("--max-instructions", type=int, default=None)
    submit.add_argument("--copies", type=int, default=1,
                        help="submit each job N times in one batch "
                             "(duplicates coalesce server-side)")
    submit.add_argument("--no-wait", dest="wait", action="store_false",
                        help="return job ids immediately instead of "
                             "long-polling for results")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="overall wait budget per job (seconds)")
    submit.add_argument("--json", action="store_true",
                        help="emit machine-readable job views + a metrics "
                             "snapshot")
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
