"""Prediction datatypes for the COBRA interface.

The unit of prediction is the *fetch packet*: up to ``fetch_width``
instructions starting at a fetch PC.  A sub-component produces a
:class:`PredictionVector` — one :class:`SlotPrediction` per instruction slot
(§III-C, superscalar prediction) — and the composer merges vectors from all
sub-components into per-stage *final* predictions (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode


def packet_span(fetch_pc: int, fetch_width: int) -> int:
    """Number of instruction slots in the packet fetched at ``fetch_pc``.

    Fetch packets are aligned to ``fetch_width`` boundaries, so a fetch that
    starts mid-packet (after a redirect into the middle of a block) covers
    only the slots up to the next boundary.
    """
    return fetch_width - (fetch_pc % fetch_width)


@dataclass(frozen=True)
class PreDecodedSlot:
    """Instruction-kind information for one slot, known by Fetch-3.

    ``is_sfb`` marks short-forwards branches the decoder converts to
    predicated micro-ops (§VI-C): they are invisible to the predictor.
    """

    valid: bool = True
    is_cond_branch: bool = False
    is_jal: bool = False
    is_jalr: bool = False
    is_call: bool = False
    is_ret: bool = False
    direct_target: Optional[int] = None
    is_sfb: bool = False

    @property
    def is_cfi(self) -> bool:
        return (self.is_cond_branch and not self.is_sfb) or self.is_jal or self.is_jalr


#: Canonical slots for the two cases that dominate every instruction stream.
INVALID_SLOT = PreDecodedSlot(valid=False)
PLAIN_SLOT = PreDecodedSlot()


class PacketCache:
    """Memoized pre-decoded fetch packets, keyed by fetch PC.

    The single packet-assembly rule shared by every execution backend (the
    cycle-level frontend, the trace simulator, and npz replay — see
    :mod:`repro.backends`): ``slot_fn`` maps a PC to its
    :class:`PreDecodedSlot`, and the cache builds aligned packets with
    :func:`packet_span`, recording whether each packet contains any
    control-flow instruction (the replay fast path's branchless test).
    Valid because the instruction image is immutable during a run.
    """

    __slots__ = ("slot_fn", "fetch_width", "_packets")

    def __init__(self, slot_fn, fetch_width: int):
        self.slot_fn = slot_fn
        self.fetch_width = fetch_width
        self._packets = {}

    def packet(self, fetch_pc: int) -> Tuple[Tuple[PreDecodedSlot, ...], bool]:
        """``(slots, has_cfi)`` for the packet fetched at ``fetch_pc``."""
        entry = self._packets.get(fetch_pc)
        if entry is None:
            slot_fn = self.slot_fn
            slots = tuple(
                slot_fn(fetch_pc + i)
                for i in range(packet_span(fetch_pc, self.fetch_width))
            )
            entry = (slots, any(s.is_cfi for s in slots))
            self._packets[fetch_pc] = entry
        return entry


@lru_cache(maxsize=65536)
def predecode_slot(
    instr: Optional[Instruction], is_sfb: bool = False
) -> PreDecodedSlot:
    """Pre-decode one fetched instruction into its slot-kind summary.

    This is the single pre-decode rule shared by the cycle-level frontend
    (:class:`repro.frontend.core.Core`) and the trace-driven simulator
    (:class:`repro.eval.tracesim.TraceSimulator`), so the two evaluation
    paths cannot diverge on instruction classification.  The function is
    pure (``Instruction`` is a frozen value type) and memoized: the same
    static instruction is re-decoded millions of times over a run, and the
    cache also interns the returned slots so identical instructions share
    one ``PreDecodedSlot`` instance.
    """
    if instr is None:
        return INVALID_SLOT
    if instr.is_cond_branch:
        return PreDecodedSlot(
            is_cond_branch=True, direct_target=instr.target, is_sfb=is_sfb
        )
    if instr.op is Opcode.JAL:
        return PreDecodedSlot(
            is_jal=True, is_call=instr.is_call, direct_target=instr.target
        )
    if instr.op is Opcode.JALR:
        return PreDecodedSlot(is_jalr=True, is_ret=instr.is_ret)
    return PLAIN_SLOT


class SlotPrediction:
    """Prediction for a single instruction slot within a fetch packet.

    Attributes
    ----------
    hit:
        Some sub-component formed a real prediction for this slot.  The
    composer uses this to implement structural overriding: in a topology
        where a fast component is ordered above a slower one (e.g.
        ``uBTB1 > PHT2``), the fast component cannot consume the slow
        component's output as ``predict_in``, so the composer muxes on
        ``hit`` instead (§IV-A).
    is_branch:
        The predictor believes this slot holds a conditional branch.
    is_jump:
        The predictor believes this slot holds an unconditional jump.
    taken:
        Predicted direction (meaningful when ``is_branch``; jumps are
        always taken).
    target:
        Predicted target PC, or None when no target-providing component
        (BTB/uBTB) hit for this slot.
    """

    __slots__ = ("hit", "is_branch", "is_jump", "taken", "target")

    def __init__(
        self,
        hit: bool = False,
        is_branch: bool = False,
        is_jump: bool = False,
        taken: bool = False,
        target: Optional[int] = None,
    ):
        self.hit = hit
        self.is_branch = is_branch
        self.is_jump = is_jump
        self.taken = taken
        self.target = target

    def copy(self) -> "SlotPrediction":
        # The hottest allocation in a sweep (every component lookup copies
        # its input vector): bypass __init__ and write the slots directly.
        clone = SlotPrediction.__new__(SlotPrediction)
        clone.hit = self.hit
        clone.is_branch = self.is_branch
        clone.is_jump = self.is_jump
        clone.taken = self.taken
        clone.target = self.target
        return clone

    @property
    def redirects(self) -> bool:
        """True when this slot, as predicted, ends the fetch packet."""
        return self.is_jump or (self.is_branch and self.taken)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SlotPrediction)
            and self.hit == other.hit
            and self.is_branch == other.is_branch
            and self.is_jump == other.is_jump
            and self.taken == other.taken
            and self.target == other.target
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "br" if self.is_branch else ("jmp" if self.is_jump else "-")
        direction = "T" if self.taken else "N"
        return f"<{kind} {direction} ->{self.target}>"


class PredictionVector:
    """A superscalar prediction: one slot per instruction in the packet."""

    __slots__ = ("fetch_pc", "slots")

    def __init__(self, fetch_pc: int, slots: List[SlotPrediction]):
        self.fetch_pc = fetch_pc
        self.slots = slots

    @classmethod
    def fallthrough(cls, fetch_pc: int, width: int) -> "PredictionVector":
        """The default prediction: no branches, fall through to next packet."""
        return cls(fetch_pc, [SlotPrediction() for _ in range(width)])

    @property
    def width(self) -> int:
        return len(self.slots)

    def copy(self) -> "PredictionVector":
        return PredictionVector(self.fetch_pc, [s.copy() for s in self.slots])

    def cfi_index(self) -> Optional[int]:
        """Index of the first slot predicted to redirect, or None."""
        for index, slot in enumerate(self.slots):
            if slot.redirects:
                return index
        return None

    def next_fetch_pc(self, fetch_width: int) -> int:
        """The fetch PC this prediction directs the frontend to next.

        A predicted-taken slot with a known target redirects there.  A
        predicted-taken slot *without* a target cannot redirect fetch (there
        is nowhere to go), so fetch falls through; the pre-decode stage or
        backend corrects it later.
        """
        cfi = self.cfi_index()
        if cfi is not None and self.slots[cfi].target is not None:
            return self.slots[cfi].target
        base = self.fetch_pc - (self.fetch_pc % fetch_width)
        return base + fetch_width

    def taken_mask(self) -> Tuple[bool, ...]:
        """Per-slot predicted directions for conditional-branch slots."""
        return tuple(s.is_branch and s.taken for s in self.slots)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PredictionVector)
            and self.fetch_pc == other.fetch_pc
            and self.slots == other.slots
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PredictionVector(pc={self.fetch_pc}, {self.slots})"


class StagedPrediction:
    """Per-stage final predictions for one fetch packet (§IV-A).

    ``per_stage[d - 1]`` is the final prediction the composed pipeline emits
    ``d`` cycles after the query.  The COBRA contract guarantees the
    prediction at stage ``d`` is "the same or more powerful" than at earlier
    stages; the composer constructs these by merging the topology subset with
    latency ``<= d``.
    """

    __slots__ = ("per_stage", "metas")

    def __init__(self, per_stage: List[PredictionVector], metas: dict):
        self.per_stage = per_stage
        self.metas = metas

    @property
    def depth(self) -> int:
        return len(self.per_stage)

    def stage(self, d: int) -> PredictionVector:
        """The final prediction at cycle ``d`` (1-indexed)."""
        if not 1 <= d <= self.depth:
            raise IndexError(f"stage {d} outside pipeline depth {self.depth}")
        return self.per_stage[d - 1]

    @property
    def final(self) -> PredictionVector:
        return self.per_stage[-1]
