"""The predict/update/repair state machine (§IV-B2).

Sits alongside the history file.  In steady state it generates commit-time
``update`` events as entries dequeue.  After a mispredict it walks the
squashed tail of the history file generating ``repair`` events that restore
the state of local-history and loop predictors.

The paper performs a *forwards* walk in hardware (oldest squashed entry
first, as in [Soundararajan et al. 2019]); restoring from per-entry
snapshots, the correct final state for any structure index is the snapshot
of the *oldest* squashed entry that touched it.  We therefore walk youngest
first so the oldest snapshot lands last — the cycle cost accounted is
identical, and the resulting state matches what the hardware walk
reconstructs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.events import UpdateBundle
from repro.core.history import LocalHistoryProvider
from repro.core.history_file import HistoryFileEntry
from repro.core.interface import PredictorComponent


@dataclass
class RepairStats:
    """Bookkeeping for repair-walk activity."""

    walks: int = 0
    entries_repaired: int = 0
    walk_cycles: int = 0


class RepairStateMachine:
    """Generates repair events and accounts for walk latency."""

    def __init__(
        self,
        components: Sequence[PredictorComponent],
        local_history: LocalHistoryProvider,
        walk_width: int = 2,
    ):
        if walk_width < 1:
            raise ValueError("repair walk width must be >= 1")
        self._components = components
        # Only components overriding ``on_repair`` receive repair events;
        # the base-class hook is a no-op, so skipping it per squashed entry
        # is free and saves a bundle clone per component per walk step.
        self._repair_components = tuple(
            c
            for c in components
            if type(c).on_repair is not PredictorComponent.on_repair
        )
        self._local_history = local_history
        self.walk_width = walk_width
        self.stats = RepairStats()

    def repair(self, squashed: List[HistoryFileEntry]) -> int:
        """Repair state for squashed entries; return the walk's cycle cost.

        ``squashed`` arrives oldest-first (as produced by
        ``HistoryFile.squash_after``); the walk processes youngest-first so
        the oldest snapshots win (see module docstring).
        """
        if not squashed:
            return 0
        for entry in reversed(squashed):
            self._local_history.restore(entry.lhist_index, entry.lhist_snapshot)
            if self._repair_components:
                bundle = bundle_from_entry(entry)
                for component in self._repair_components:
                    meta = entry.metas.get(component.name, 0)
                    component.on_repair(bundle.with_meta(meta))
        cycles = math.ceil(len(squashed) / self.walk_width)
        self.stats.walks += 1
        self.stats.entries_repaired += len(squashed)
        self.stats.walk_cycles += cycles
        return cycles

    def reset(self) -> None:
        self.stats = RepairStats()


def bundle_from_entry(
    entry: HistoryFileEntry, mispredicted: bool = False
) -> UpdateBundle:
    """Build the common event payload from a history-file entry (§III-E)."""
    return UpdateBundle(
        fetch_pc=entry.fetch_pc,
        width=entry.width,
        ghist=entry.req_ghist,
        lhist=entry.lhist_snapshot,
        phist=entry.phist_snapshot,
        meta=0,
        br_mask=entry.br_mask,
        taken_mask=entry.taken_mask,
        cfi_idx=entry.cfi_idx,
        cfi_taken=entry.cfi_taken,
        cfi_target=entry.cfi_target,
        cfi_is_br=entry.cfi_is_br,
        cfi_is_jal=entry.cfi_is_jal,
        cfi_is_jalr=entry.cfi_is_jalr,
        mispredicted=mispredicted or entry.mispredicted,
        mispredict_idx=entry.mispredict_idx,
    )
