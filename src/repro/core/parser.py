"""Parser for the paper's topology notation (§IV-A).

Turns strings such as::

    LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1
    TOURNEY3 > [GBIM2 > BTB2, LBIM2]
    LOOP3 > TOURNEY3 > [GBIM2, LBIM2]

into :class:`~repro.core.topology.TopologyNode` trees, instantiating
sub-components from a :class:`ComponentLibrary`.  A name's trailing digits
give the component's prediction latency (``TAGE3`` = a TAGE responding at
cycle 3).  ``>`` is right-associative; brackets introduce arbitration
children; parentheses group.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.core.interface import InterfaceError, PredictorComponent
from repro.core.topology import Arbitrate, Leaf, Override, TopologyNode

#: A factory builds a component instance given (instance_name, latency).
ComponentFactory = Callable[[str, int], PredictorComponent]


class TopologyParseError(Exception):
    """Raised for malformed topology strings.

    When the offending source position is known, the error carries it:
    ``spec`` is the full topology string, ``pos`` the 0-based character
    offset, and ``column`` the 1-based column.  The rendered message then
    includes a caret snippet pointing at the offending token::

        expected NAME, found GT
          TOURNEY3 > > LBIM2
                     ^ column 12
    """

    def __init__(self, message: str, spec: Optional[str] = None,
                 pos: Optional[int] = None):
        self.reason = message
        self.spec = spec
        self.pos = pos
        self.column = None if pos is None else pos + 1
        if spec is not None and pos is not None:
            caret_pos = min(pos, len(spec))
            message = (
                f"{message}\n  {spec}\n  "
                f"{' ' * caret_pos}^ column {caret_pos + 1}"
            )
        super().__init__(message)


class ComponentLibrary:
    """A registry mapping base names (``TAGE``, ``BIM``…) to factories.

    The library is the "library of sub-components" the composer draws from
    (Fig. 1).  Factories may be registered with default parameters and
    overridden per design via :meth:`with_params`.
    """

    def __init__(self):
        self._factories: Dict[str, ComponentFactory] = {}

    def register(self, base_name: str, factory: ComponentFactory) -> None:
        key = base_name.upper()
        if key in self._factories:
            raise ValueError(f"component base name {key!r} already registered")
        self._factories[key] = factory

    def with_params(self, base_name: str, factory: ComponentFactory) -> "ComponentLibrary":
        """A copy of this library with one factory replaced or added."""
        clone = ComponentLibrary()
        clone._factories = dict(self._factories)
        clone._factories[base_name.upper()] = factory
        return clone

    def known(self) -> List[str]:
        return sorted(self._factories)

    def factory(self, base_name: str) -> ComponentFactory:
        """The registered factory for a base name (as :meth:`register` saw it)."""
        key = base_name.upper()
        if key not in self._factories:
            raise TopologyParseError(
                f"unknown component {key!r}; library provides {self.known()}"
            )
        return self._factories[key]

    def instantiate(self, base_name: str, instance_name: str, latency: int):
        key = base_name.upper()
        if key not in self._factories:
            raise TopologyParseError(
                f"unknown component {key!r}; library provides {self.known()}"
            )
        component = self._factories[key](instance_name, latency)
        if component.latency != latency:
            raise InterfaceError(
                f"{key} factory ignored the requested latency {latency} "
                f"(built {component.latency})"
            )
        return component


class _Token(NamedTuple):
    kind: str  # NAME | GT | LBRACKET | RBRACKET | COMMA | LPAREN | RPAREN
    text: str
    #: 0-based character offset of the token's first character in the spec.
    pos: int


#: A NAME is any identifier ending in a digit: the trailing digit run is the
#: latency, and interior digits are part of the base name (``L2BIM2`` is the
#: component ``L2BIM`` at latency 2).
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<NAME>[A-Za-z_][A-Za-z0-9_]*\d)|(?P<GT>>)|(?P<LBRACKET>\[)"
    r"|(?P<RBRACKET>\])|(?P<COMMA>,)|(?P<LPAREN>\()|(?P<RPAREN>\)))"
)

#: Splits a NAME into base and latency.  The non-greedy base cedes the
#: longest trailing digit run to the latency field, so ``TAGE64K3`` is the
#: base ``TAGE64K`` at latency 3.
_NAME_RE = re.compile(r"(?P<base>[A-Za-z_][A-Za-z0-9_]*?)(?P<latency>\d+)$")


def _tokenize(spec: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(spec):
        match = _TOKEN_RE.match(spec, pos)
        if match is None:
            stripped = spec[pos:].lstrip()
            if not stripped:
                break
            error_pos = pos + (len(spec[pos:]) - len(stripped))
            raise TopologyParseError(
                f"unexpected input {stripped[:20]!r} "
                f"(component names need a trailing latency digit, e.g. TAGE3)",
                spec=spec,
                pos=error_pos,
            )
        for kind in ("NAME", "GT", "LBRACKET", "RBRACKET", "COMMA", "LPAREN", "RPAREN"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text, match.start(kind)))
                break
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, spec: str, tokens: List[_Token], library: ComponentLibrary):
        self._spec = spec
        self._tokens = tokens
        self._pos = 0
        self._library = library
        self._name_counts: Dict[str, int] = {}

    def peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def error(self, message: str, pos: Optional[int] = None) -> TopologyParseError:
        """A parse error pointing at ``pos`` (default: the current token)."""
        if pos is None:
            token = self.peek()
            pos = token.pos if token is not None else len(self._spec)
        return TopologyParseError(message, spec=self._spec, pos=pos)

    def take(self, kind: str) -> _Token:
        token = self.peek()
        if token is None or token.kind != kind:
            found = token.kind if token else "end of input"
            raise self.error(f"expected {kind}, found {found}")
        self._pos += 1
        return token

    def _make_component(self, token: _Token) -> PredictorComponent:
        match = _NAME_RE.match(token.text)
        if match is None:
            raise self.error(
                f"component name {token.text!r} must end with its latency, "
                f"e.g. BIM2",
                pos=token.pos,
            )
        base = match.group("base")
        latency = int(match.group("latency"))
        count = self._name_counts.get(base.upper(), 0)
        self._name_counts[base.upper()] = count + 1
        instance = base.lower() if count == 0 else f"{base.lower()}{count + 1}"
        try:
            component = self._library.instantiate(base, instance, latency)
        except TopologyParseError as exc:
            if exc.pos is not None:
                raise
            raise self.error(exc.reason, pos=token.pos) from None
        # Remember the library base name so ``describe()`` can render the
        # paper notation unambiguously even for duplicate instances (whose
        # instance names carry a disambiguating digit suffix).
        component.base_name = base.upper()
        return component

    def parse_chain(self) -> TopologyNode:
        """chain := unit ('>' (bracket_list | chain))?"""
        token = self.peek()
        if token is None:
            if self._pos > 0:
                raise self.error("unexpected end of input; expected a component")
            raise TopologyParseError("empty topology", spec=self._spec, pos=0)
        if token.kind == "LPAREN":
            self.take("LPAREN")
            node = self.parse_chain()
            self.take("RPAREN")
            if self.peek() is not None and self.peek().kind == "GT":
                raise self.error(
                    "a parenthesized group cannot override (only named "
                    "components may appear left of '>')"
                )
            return node

        name = self.take("NAME")
        component = self._make_component(name)

        nxt = self.peek()
        if nxt is None or nxt.kind in ("RPAREN", "RBRACKET", "COMMA"):
            return Leaf(component)

        self.take("GT")
        after = self.peek()
        if after is not None and after.kind == "LBRACKET":
            children = self.parse_bracket_list()
            return Arbitrate(component, children)
        return Override(component, self.parse_chain())

    def parse_bracket_list(self) -> List[TopologyNode]:
        self.take("LBRACKET")
        children = [self.parse_chain()]
        while self.peek() is not None and self.peek().kind == "COMMA":
            self.take("COMMA")
            children.append(self.parse_chain())
        self.take("RBRACKET")
        return children

    def finished(self) -> bool:
        return self._pos == len(self._tokens)


def parse_topology(spec: str, library: ComponentLibrary) -> TopologyNode:
    """Parse a topology string, instantiating components from ``library``."""
    parser = _Parser(spec, _tokenize(spec), library)
    root = parser.parse_chain()
    if not parser.finished():
        raise parser.error("trailing input after topology")
    return root
