"""Parser for the paper's topology notation (§IV-A).

Turns strings such as::

    LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1
    TOURNEY3 > [GBIM2 > BTB2, LBIM2]
    LOOP3 > TOURNEY3 > [GBIM2, LBIM2]

into :class:`~repro.core.topology.TopologyNode` trees, instantiating
sub-components from a :class:`ComponentLibrary`.  A name's trailing digits
give the component's prediction latency (``TAGE3`` = a TAGE responding at
cycle 3).  ``>`` is right-associative; brackets introduce arbitration
children; parentheses group.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.core.interface import InterfaceError, PredictorComponent
from repro.core.topology import Arbitrate, Leaf, Override, TopologyNode

#: A factory builds a component instance given (instance_name, latency).
ComponentFactory = Callable[[str, int], PredictorComponent]


class TopologyParseError(Exception):
    """Raised for malformed topology strings."""


class ComponentLibrary:
    """A registry mapping base names (``TAGE``, ``BIM``…) to factories.

    The library is the "library of sub-components" the composer draws from
    (Fig. 1).  Factories may be registered with default parameters and
    overridden per design via :meth:`with_params`.
    """

    def __init__(self):
        self._factories: Dict[str, ComponentFactory] = {}

    def register(self, base_name: str, factory: ComponentFactory) -> None:
        key = base_name.upper()
        if key in self._factories:
            raise ValueError(f"component base name {key!r} already registered")
        self._factories[key] = factory

    def with_params(self, base_name: str, factory: ComponentFactory) -> "ComponentLibrary":
        """A copy of this library with one factory replaced or added."""
        clone = ComponentLibrary()
        clone._factories = dict(self._factories)
        clone._factories[base_name.upper()] = factory
        return clone

    def known(self) -> List[str]:
        return sorted(self._factories)

    def instantiate(self, base_name: str, instance_name: str, latency: int):
        key = base_name.upper()
        if key not in self._factories:
            raise TopologyParseError(
                f"unknown component {key!r}; library provides {self.known()}"
            )
        component = self._factories[key](instance_name, latency)
        if component.latency != latency:
            raise InterfaceError(
                f"{key} factory ignored the requested latency {latency} "
                f"(built {component.latency})"
            )
        return component


class _Token(NamedTuple):
    kind: str  # NAME | GT | LBRACKET | RBRACKET | COMMA | LPAREN | RPAREN
    text: str


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<NAME>[A-Za-z_][A-Za-z_]*\d+)|(?P<GT>>)|(?P<LBRACKET>\[)"
    r"|(?P<RBRACKET>\])|(?P<COMMA>,)|(?P<LPAREN>\()|(?P<RPAREN>\)))"
)

_NAME_RE = re.compile(r"(?P<base>[A-Za-z_][A-Za-z_]*?)(?P<latency>\d+)$")


def _tokenize(spec: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(spec):
        match = _TOKEN_RE.match(spec, pos)
        if match is None:
            remainder = spec[pos:].strip()
            if not remainder:
                break
            raise TopologyParseError(
                f"unexpected input at {pos}: {remainder[:20]!r} "
                f"(component names need a trailing latency digit, e.g. TAGE3)"
            )
        for kind in ("NAME", "GT", "LBRACKET", "RBRACKET", "COMMA", "LPAREN", "RPAREN"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text))
                break
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], library: ComponentLibrary):
        self._tokens = tokens
        self._pos = 0
        self._library = library
        self._name_counts: Dict[str, int] = {}

    def peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def take(self, kind: str) -> _Token:
        token = self.peek()
        if token is None or token.kind != kind:
            found = token.kind if token else "end of input"
            raise TopologyParseError(f"expected {kind}, found {found}")
        self._pos += 1
        return token

    def _make_component(self, text: str) -> PredictorComponent:
        match = _NAME_RE.match(text)
        if match is None:
            raise TopologyParseError(
                f"component name {text!r} must end with its latency, e.g. BIM2"
            )
        base = match.group("base")
        latency = int(match.group("latency"))
        count = self._name_counts.get(base.upper(), 0)
        self._name_counts[base.upper()] = count + 1
        instance = base.lower() if count == 0 else f"{base.lower()}{count + 1}"
        return self._library.instantiate(base, instance, latency)

    def parse_chain(self) -> TopologyNode:
        """chain := unit ('>' (bracket_list | chain))?"""
        token = self.peek()
        if token is None:
            raise TopologyParseError("empty topology")
        if token.kind == "LPAREN":
            self.take("LPAREN")
            node = self.parse_chain()
            self.take("RPAREN")
            if self.peek() is not None and self.peek().kind == "GT":
                raise TopologyParseError(
                    "a parenthesized group cannot override (only named "
                    "components may appear left of '>')"
                )
            return node

        name = self.take("NAME")
        component = self._make_component(name.text)

        nxt = self.peek()
        if nxt is None or nxt.kind in ("RPAREN", "RBRACKET", "COMMA"):
            return Leaf(component)

        self.take("GT")
        after = self.peek()
        if after is not None and after.kind == "LBRACKET":
            children = self.parse_bracket_list()
            return Arbitrate(component, children)
        return Override(component, self.parse_chain())

    def parse_bracket_list(self) -> List[TopologyNode]:
        self.take("LBRACKET")
        children = [self.parse_chain()]
        while self.peek() is not None and self.peek().kind == "COMMA":
            self.take("COMMA")
            children.append(self.parse_chain())
        self.take("RBRACKET")
        return children

    def finished(self) -> bool:
        return self._pos == len(self._tokens)


def parse_topology(spec: str, library: ComponentLibrary) -> TopologyNode:
    """Parse a topology string, instantiating components from ``library``."""
    parser = _Parser(_tokenize(spec), library)
    root = parser.parse_chain()
    if not parser.finished():
        raise TopologyParseError(
            f"trailing input after topology: {spec!r}"
        )
    return root
