"""The history file: a circular buffer of in-flight predictions (§IV-B1).

Every predicted fetch packet allocates one entry holding everything the
predictor sub-components need back at mispredict, repair, and update time:
the fetch PC, the global/local histories provided at predict time, and the
per-component metadata (§III-D).  Entries are updated when the backend
resolves branches and dequeued in program order as the core commits, at
which point commit-time ``update`` events are generated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.interface import StorageReport


class HistoryFileError(Exception):
    """Raised on protocol violations (overflow, unknown entry ids)."""


@dataclass
class HistoryFileEntry:
    """One in-flight predicted fetch packet."""

    ftq_id: int
    fetch_pc: int
    width: int
    #: History *provided to components* at predict time (may be stale when
    #: the no-replay repair mode is modelled, §VI-B).
    req_ghist: int
    #: True speculative-chain snapshot (before this packet's contribution),
    #: used to restore the global history provider on mispredicts.
    chain_ghist: int
    lhist_index: int
    lhist_snapshot: int
    #: Per-component metadata produced at predict time.
    metas: Dict[str, int]
    #: True conditional-branch locations (from pre-decode), up to the cut.
    br_mask: Tuple[bool, ...]
    #: Directions as predicted (later corrected on mispredict resolution).
    taken_mask: Tuple[bool, ...]
    cfi_idx: Optional[int]
    cfi_taken: bool
    cfi_target: Optional[int]
    #: Path history provided at predict time (0 when no component uses
    #: path history).
    phist_snapshot: int = 0
    cfi_is_br: bool = False
    cfi_is_jal: bool = False
    cfi_is_jalr: bool = False
    mispredicted: bool = False
    #: Slot that mispredicted (set at resolve time).
    mispredict_idx: Optional[int] = None
    resolved_cfi_target: Optional[int] = None
    #: Telemetry attribution: per-slot name of the component that supplied
    #: the final prediction (None per slot for the fall-through default;
    #: None overall when telemetry is off, costing nothing).
    slot_providers: Optional[Tuple[Optional[str], ...]] = None
    #: Number of instructions from this packet the core must commit before
    #: the entry can be dequeued (set by the frontend at dispatch time).
    commit_countdown: int = field(default=0)


class HistoryFile:
    """Circular buffer with FIFO allocate/commit and tail squashing."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("history file capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque = deque()
        self._by_id: Dict[int, HistoryFileEntry] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, **fields) -> HistoryFileEntry:
        if self.full:
            raise HistoryFileError("history file overflow")
        entry = HistoryFileEntry(ftq_id=self._next_id, **fields)
        self._next_id += 1
        self._entries.append(entry)
        self._by_id[entry.ftq_id] = entry
        return entry

    def get(self, ftq_id: int) -> HistoryFileEntry:
        entry = self.find(ftq_id)
        if entry is None:
            raise HistoryFileError(f"unknown or retired history-file id {ftq_id}")
        return entry

    def find(self, ftq_id: int) -> Optional[HistoryFileEntry]:
        return self._by_id.get(ftq_id)

    def squash_after(self, ftq_id: int) -> List[HistoryFileEntry]:
        """Remove and return every entry younger than ``ftq_id``.

        Returned in age order (oldest squashed first) for the repair walk.
        """
        squashed: List[HistoryFileEntry] = []
        while self._entries and self._entries[-1].ftq_id > ftq_id:
            victim = self._entries.pop()
            del self._by_id[victim.ftq_id]
            squashed.append(victim)
        squashed.reverse()
        return squashed

    def squash_all(self) -> List[HistoryFileEntry]:
        squashed = list(self._entries)
        self._entries.clear()
        self._by_id.clear()
        return squashed

    def head(self) -> Optional[HistoryFileEntry]:
        return self._entries[0] if self._entries else None

    def dequeue(self) -> HistoryFileEntry:
        if not self._entries:
            raise HistoryFileError("dequeue from empty history file")
        entry = self._entries.popleft()
        del self._by_id[entry.ftq_id]
        return entry

    def __iter__(self):
        return iter(self._entries)

    def reset(self) -> None:
        self._entries.clear()
        self._by_id.clear()
        self._next_id = 0

    # ------------------------------------------------------------------
    def storage(
        self, total_meta_bits: int, ghist_bits: int, lhist_bits: int
    ) -> StorageReport:
        """Area accounting for the history file (Fig. 8 "Meta")."""
        from repro.components.btb import TARGET_BITS

        per_entry = (
            TARGET_BITS  # fetch pc
            + total_meta_bits
            + ghist_bits  # ghist snapshot
            + lhist_bits  # lhist snapshot
            + 16  # masks, cfi bookkeeping, state bits
            + TARGET_BITS  # resolved target
        )
        bits = self.capacity * per_entry
        return StorageReport(
            "history_file",
            sram_bits=bits,
            breakdown={"history_file": bits},
        )
