"""Topological models of predictor compositions (§IV-A).

A complete predictor pipeline is represented as an ordering of sub-components
where the ordering specifies which sub-component provides the final
prediction.  ``p_b > p_a`` means ``p_b`` wins any cycle where the final
prediction is ambiguous.  Arbitration schemes that *learn* to choose among
sub-predictors are expressed with bracketed child lists::

    TOURNEY3 > [GBIM2, LBIM2]

Three node kinds model this:

- :class:`Leaf` — a single sub-component.
- :class:`Override` — ``hi > lo``: ``hi`` receives ``lo``'s prediction as
  ``predict_in`` (when available at ``hi``'s response stage) and the
  composer muxes ``hi`` over ``lo`` on a per-slot hit basis.
- :class:`Arbitrate` — a selector receiving multiple ``predict_in`` vectors.

``evaluate`` returns the *staged* predictions of the sub-topology: the final
prediction the subset with latency ``<= d`` would emit at every stage ``d``.
This is the semantic core of the COBRA composer.
"""

from __future__ import annotations

import abc
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.events import PredictRequest
from repro.core.interface import InterfaceError, PredictorComponent
from repro.core.prediction import PredictionVector

#: Staged result: entry ``d - 1`` is the sub-topology's prediction at stage
#: ``d``, or None when no component with latency ``<= d`` exists in it.
StagedVectors = List[Optional[PredictionVector]]


def merge_by_hit(
    winner: PredictionVector, fallback: PredictionVector
) -> PredictionVector:
    """Per-slot mux: take the winner's slot where it hit, else the fallback's.

    This is the control-flow-redirection multiplexing the composer generates
    between ordered sub-components (§IV-B): the higher-priority prediction
    provides the final prediction in any cycle where it exists.

    The merged vector aliases the input slots instead of copying them: every
    consumer that mutates slot predictions (component ``lookup``
    implementations and ``_apply_predecode``) copies the whole vector first,
    so merged outputs are read-only and sharing is safe.  This runs once per
    override edge per fetch packet, making it one of the hottest allocation
    sites in a sweep.
    """
    slots = [
        (w if w.hit else f)
        for w, f in zip(winner.slots, fallback.slots)
    ]
    return PredictionVector(winner.fetch_pc, slots)


def _notation(component: PredictorComponent) -> str:
    """Render one component in the paper's ``BASElatency`` notation.

    Uses the library base name recorded by the parser when available: a
    duplicate instance is named e.g. ``bim2``, and rendering the instance
    name would produce ``BIM22`` — which re-parses as ``BIM`` at latency 22.
    """
    base = getattr(component, "base_name", None) or component.name.upper()
    return f"{base}{component.latency}"


class TopologyNode(abc.ABC):
    """A node in the topological representation of a predictor design."""

    @abc.abstractmethod
    def components(self) -> Iterator[PredictorComponent]:
        """All sub-components in this sub-topology, in evaluation order."""

    @abc.abstractmethod
    def evaluate(
        self,
        req: PredictRequest,
        depth: int,
        metas: Dict[str, int],
        attribution: Optional[Dict[int, List[Optional[str]]]] = None,
    ) -> StagedVectors:
        """Compute staged predictions, recording each component's metadata.

        ``attribution``, when supplied (telemetry mode), is filled with a
        per-slot provider list for every produced vector, keyed by
        ``id(vector)``: entry ``i`` names the component that supplied slot
        ``i``'s prediction, or None for the fall-through default.  Provider
        identity follows the same muxing the vectors themselves do — a
        pass-through slot keeps its upstream provider — so the map is exact
        for any vector the composer hands to the frontend.  The ids are
        only valid while the vectors are alive; callers must consume the
        map before releasing the staged vectors.
        """

    @property
    def max_latency(self) -> int:
        return max(c.latency for c in self.components())

    def describe(self) -> str:
        """Render the topology back into the paper's notation."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@lru_cache(maxsize=65536)
def _shared_fallthrough(fetch_pc: int, width: int) -> PredictionVector:
    """A canonical fall-through vector for default predict_in wiring.

    Safe to share across queries: every consumer that mutates slot
    predictions copies the vector first, so these defaults are read-only.
    """
    return PredictionVector.fallthrough(fetch_pc, width)


def _first_available(
    staged: StagedVectors, stage: int, req: PredictRequest
) -> PredictionVector:
    """The sub-topology's prediction at ``stage``, or the fall-through default.

    A component may use any ``predict_in(d)`` with ``d <= n`` (§III-F); we
    provide the most recent one available at its response stage.
    """
    for d in range(stage, 0, -1):
        vector = staged[d - 1]
        if vector is not None:
            return vector
    return _shared_fallthrough(req.fetch_pc, req.width)


class Leaf(TopologyNode):
    """A single sub-component with no inputs from other sub-components."""

    def __init__(self, component: PredictorComponent):
        if component.n_inputs != 1:
            raise InterfaceError(
                f"{component.name}: arbitration components (n_inputs="
                f"{component.n_inputs}) cannot be topology leaves"
            )
        self.component = component

    def components(self) -> Iterator[PredictorComponent]:
        yield self.component

    def evaluate(self, req, depth, metas, attribution=None):
        default = _shared_fallthrough(req.fetch_pc, req.width)
        out, meta = self.component.lookup(req, [default])
        metas[self.component.name] = self.component.check_meta(meta)
        staged: StagedVectors = [None] * depth
        for d in range(self.component.latency, depth + 1):
            staged[d - 1] = out
        if attribution is not None:
            name = self.component.name
            attribution[id(out)] = [
                name if slot.hit else None for slot in out.slots
            ]
        return staged

    def describe(self) -> str:
        return _notation(self.component)


class Override(TopologyNode):
    """``hi > lo``: ``hi`` provides the final prediction where it hits."""

    def __init__(self, hi: PredictorComponent, lo: TopologyNode):
        if hi.n_inputs != 1:
            raise InterfaceError(
                f"{hi.name}: a component taking {hi.n_inputs} predict_in "
                f"inputs must head an Arbitrate node, not an Override"
            )
        self.hi = hi
        self.lo = lo

    def components(self) -> Iterator[PredictorComponent]:
        yield from self.lo.components()
        yield self.hi

    def evaluate(self, req, depth, metas, attribution=None):
        staged = self.lo.evaluate(req, depth, metas, attribution)
        predict_in = _first_available(staged, self.hi.latency, req)
        out, meta = self.hi.lookup(req, [predict_in])
        metas[self.hi.name] = self.hi.check_meta(meta)
        out_providers = None
        if attribution is not None:
            # Slots hi left untouched (equal to its predict_in) keep their
            # upstream provider; slots it changed are hi's.
            in_providers = attribution.get(id(predict_in))
            name = self.hi.name
            out_providers = [
                (in_providers[i] if in_providers else None)
                if out.slots[i] == predict_in.slots[i]
                else name
                for i in range(len(out.slots))
            ]
            attribution[id(out)] = out_providers
        result: StagedVectors = list(staged)
        # Consecutive stages usually share one vector object (a component's
        # output is replicated across every stage >= its latency), so the
        # merge is computed once per distinct vector, not once per stage.
        prev_below = prev_merged = None
        for d in range(self.hi.latency, depth + 1):
            below = staged[d - 1]
            if below is None:
                result[d - 1] = out
            elif below is prev_below:
                result[d - 1] = prev_merged
            else:
                # hi wins per slot where it (or anything it passed through
                # from its own predict_in) hit; otherwise the slower
                # sub-topology's more recent prediction stands.
                prev_below = below
                prev_merged = merge_by_hit(out, below)
                if attribution is not None:
                    below_providers = attribution.get(id(below))
                    attribution[id(prev_merged)] = [
                        out_providers[i]
                        if out.slots[i].hit
                        else (below_providers[i] if below_providers else None)
                        for i in range(len(out.slots))
                    ]
                result[d - 1] = prev_merged
        return result

    def describe(self) -> str:
        return f"{_notation(self.hi)} > {self.lo.describe()}"


class Arbitrate(TopologyNode):
    """A selector choosing among two or more sub-topologies (§IV-A1).

    Before the selector responds, the first-listed child provides the
    provisional final prediction; this tie-break is a composer convention
    (the paper leaves the pre-arbitration prediction unspecified).
    """

    def __init__(self, selector: PredictorComponent, children: List[TopologyNode]):
        if len(children) < 2:
            raise InterfaceError(
                f"{selector.name}: arbitration requires >= 2 children, "
                f"got {len(children)}"
            )
        if selector.n_inputs != len(children):
            raise InterfaceError(
                f"{selector.name}: selector takes {selector.n_inputs} "
                f"predict_in inputs but the topology supplies {len(children)}"
            )
        self.selector = selector
        self.children = children

    def components(self) -> Iterator[PredictorComponent]:
        for child in self.children:
            yield from child.components()
        yield self.selector

    def evaluate(self, req, depth, metas, attribution=None):
        child_staged = [
            child.evaluate(req, depth, metas, attribution)
            for child in self.children
        ]
        predict_ins = [
            _first_available(staged, self.selector.latency, req)
            for staged in child_staged
        ]
        out, meta = self.selector.lookup(req, predict_ins)
        metas[self.selector.name] = self.selector.check_meta(meta)
        if attribution is not None:
            # A slot equal to one of the arbitrated inputs is that child's
            # prediction (the selector chose it); anything else is the
            # selector's own.
            providers: List[Optional[str]] = []
            name = self.selector.name
            for i, slot in enumerate(out.slots):
                provider: Optional[str] = name
                for vector in predict_ins:
                    if slot == vector.slots[i]:
                        child_providers = attribution.get(id(vector))
                        provider = child_providers[i] if child_providers else None
                        break
                providers.append(provider)
            attribution[id(out)] = providers
        result: StagedVectors = list(child_staged[0])
        for d in range(self.selector.latency, depth + 1):
            result[d - 1] = out
        return result

    def describe(self) -> str:
        sel = _notation(self.selector)
        inner = ", ".join(
            f"({c.describe()})" if isinstance(c, (Override, Arbitrate)) else c.describe()
            for c in self.children
        )
        return f"{sel} > [{inner}]"


def validate_topology(root: TopologyNode) -> Tuple[PredictorComponent, ...]:
    """Check a topology for contract violations; return its components.

    Enforces unique component names and the Fig. 2 history-timing rule
    (already enforced per-component, but re-checked here so hand-built
    component objects cannot slip through).
    """
    seen: Dict[str, PredictorComponent] = {}
    for component in root.components():
        if component.name in seen and seen[component.name] is not component:
            raise InterfaceError(
                f"duplicate component name {component.name!r} in topology"
            )
        if component.name in seen:
            raise InterfaceError(
                f"component {component.name!r} appears twice in the topology"
            )
        if component.latency < 2 and (
            component.uses_global_history or component.uses_local_history
        ):
            raise InterfaceError(
                f"{component.name}: latency-1 components cannot use histories"
            )
        seen[component.name] = component
    return tuple(seen.values())
