"""The COBRA predictor composer (§IV).

Given a topological representation of a predictor design, the composer
builds a complete predictor pipeline from sub-components and synthesizes the
predictor management structures: history providers, the history file, and
the predict/update/repair state machine.  The result,
:class:`ComposedPredictor`, is a drop-in prediction pipeline for a host
core's fetch unit (§IV-C) — the frontend model in :mod:`repro.frontend`
plays the role BOOM plays in the paper.

Protocol with the host frontend
-------------------------------
- ``predict(fetch_pc, slots, ras_top)`` — query at Fetch-0.  Returns staged
  per-cycle final predictions plus the pre-decode-corrected final packet.
  Allocates a history-file entry, fires speculative updates, and advances
  the speculative histories.
- ``squash_after(ftq_id)`` — internal pipeline redirect or flush: younger
  entries are squashed and repaired.
- ``resolve_mispredict(ftq_id, slot, taken, target)`` — backend-detected
  misprediction: squash + repair younger state, restore histories from the
  entry snapshot, issue the fast ``mispredict`` event.
- ``commit_packet(ftq_id)`` — the packet's last instruction committed:
  dequeue the entry and issue commit-time ``update`` events.

Pre-decode and history timing
-----------------------------
The speculative global history must advance at query time (the next packet
is queried one cycle later), using the packet's *final* predicted
directions at its *true* branch locations.  Hardware achieves this with
per-stage history registers fixed up by pre-decode at Fetch-3; we model the
steady-state result directly: the frontend supplies pre-decoded slot kinds
(it owns instruction memory, as BOOM's fetch unit owns its I-cache data)
and the composer applies them to the final-stage prediction.  Components
never observe pre-decode information at lookup time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._util import shift_in
from repro.core.events import PredictRequest
from repro.core.history import (
    GlobalHistoryProvider,
    LocalHistoryProvider,
    PathHistoryProvider,
)
from repro.core.history_file import HistoryFile
from repro.core.interface import InterfaceError, PredictorComponent, StorageReport
from repro.core.parser import ComponentLibrary, parse_topology
from repro.core.prediction import (  # noqa: F401  (PreDecodedSlot re-exported)
    PredictionVector,
    PreDecodedSlot,
    packet_span,
)
from repro.core.repair import RepairStateMachine, bundle_from_entry
from repro.core.topology import (
    TopologyNode,
    _shared_fallthrough,
    validate_topology,
)


@dataclass
class ComposerConfig:
    """Parameters of the generated management structures (§IV-B)."""

    fetch_width: int = 4
    global_history_bits: int = 64
    local_history_entries: int = 256
    local_history_bits: int = 32
    ftq_entries: int = 32
    #: Path-history register length (§IV-B3); built only when a component
    #: declares ``uses_path_history``.
    path_history_bits: int = 32
    repair_walk_width: int = 2
    #: "replay" refetches after a mispredict once the repaired history is
    #: available (extra bubbles, accurate history); "no_replay" lets the
    #: first post-redirect queries predict with the corrupted history
    #: (§VI-B).
    ghist_repair_mode: str = "replay"
    #: Replay mode: extra fetch bubbles per mispredict while the snapshot
    #: restore reaches the predictor.
    ghist_repair_bubbles: int = 2
    #: No-replay mode: number of post-redirect queries that still see the
    #: corrupted history (the corruption persists until the repair
    #: percolates through the prediction pipeline).
    ghist_corruption_window: int = 8
    #: Serialize the instruction stream behind branches: the fetch packet
    #: is cut at the first control-flow instruction regardless of its
    #: predicted direction (§I measures the cost of this on a 4-wide core).
    serialize_cfi: bool = False

    def __post_init__(self):
        if self.ghist_repair_mode not in ("replay", "no_replay"):
            raise ValueError(
                f"unknown ghist repair mode {self.ghist_repair_mode!r}"
            )
        if self.ghist_repair_bubbles < 0:
            raise ValueError(
                f"ghist_repair_bubbles must be >= 0, got "
                f"{self.ghist_repair_bubbles} (a mispredict cannot repay "
                f"fetch cycles)"
            )
        if self.ghist_corruption_window < 0:
            raise ValueError(
                f"ghist_corruption_window must be >= 0, got "
                f"{self.ghist_corruption_window}"
            )


@dataclass
class PredictResult:
    """Everything the fetch unit learns from one predictor query."""

    ftq_id: int
    fetch_pc: int
    width: int
    fetched_len: int
    staged: List[PredictionVector]
    final: PredictionVector
    cut: Optional[int]
    next_fetch_pc: int


@dataclass
class MispredictResponse:
    """Latency feedback from a mispredict resolution."""

    walk_cycles: int
    extra_redirect_bubbles: int


@dataclass
class ComposerStats:
    predictions: int = 0
    committed_packets: int = 0
    committed_branches: int = 0
    committed_jumps: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    stale_history_queries: int = 0

    @property
    def mispredicts(self) -> int:
        return self.direction_mispredicts + self.target_mispredicts


class ComposedPredictor:
    """A complete predictor pipeline with generated management structures."""

    def __init__(self, topology: TopologyNode, config: Optional[ComposerConfig] = None):
        self.config = config or ComposerConfig()
        self.topology = topology
        self.components: Tuple[PredictorComponent, ...] = validate_topology(topology)
        self.depth = max(c.latency for c in self.components)
        self._uses_local = any(c.uses_local_history for c in self.components)
        self._uses_path = any(
            getattr(c, "uses_path_history", False) for c in self.components
        )
        self._global = GlobalHistoryProvider(self.config.global_history_bits)
        self._path = (
            PathHistoryProvider(self.config.path_history_bits)
            if self._uses_path
            else None
        )
        self._local = (
            LocalHistoryProvider(
                self.config.local_history_entries,
                self.config.local_history_bits,
                self.config.fetch_width,
            )
            if self._uses_local
            else None
        )
        self.history_file = HistoryFile(self.config.ftq_entries)
        self._repair = RepairStateMachine(
            self.components,
            self._local if self._local is not None else LocalHistoryProvider(1, 1),
            self.config.repair_walk_width,
        )
        self.stats = ComposerStats()
        # Most components leave the speculative-update hooks as the
        # base-class no-ops; cloning a bundle per component per packet just
        # to call them dominates the fire loop.  Dispatch events only to
        # components that actually override the hook.
        self._fire_components = tuple(
            c for c in self.components if type(c).fire is not PredictorComponent.fire
        )
        self._mispredict_components = tuple(
            c
            for c in self.components
            if type(c).on_mispredict is not PredictorComponent.on_mispredict
        )
        # No-replay staleness window state (§VI-B).
        self._stale_queries_remaining = 0
        self._stale_ghist = 0
        #: Optional telemetry observer (see :mod:`repro.telemetry`); None
        #: keeps every hook a single attribute test on the hot path.
        self._telemetry = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The attached telemetry collector, or None."""
        return self._telemetry

    def attach_telemetry(self, collector) -> None:
        """Subscribe ``collector`` to this pipeline's prediction events.

        The collector observes predict/fire/mispredict/repair/update
        dispatches and the attribution of final-prediction slots to
        sub-components; it never influences predictions, so attaching
        telemetry cannot change simulation results.
        """
        self._telemetry = collector
        collector.bind(self)

    def detach_telemetry(self) -> None:
        self._telemetry = None

    # ------------------------------------------------------------------
    @property
    def can_predict(self) -> bool:
        """False when the history file is full (fetch must stall)."""
        return not self.history_file.full

    @property
    def stale_window_active(self) -> bool:
        """True while post-mispredict queries still see the stale history.

        Only ever True in ``ghist_repair_mode="no_replay"`` (§VI-B): the
        corruption window decrements on every ``predict()`` call, so
        execution backends that elide queries (the replay fast path) must
        check this before skipping a packet.
        """
        return self._stale_queries_remaining > 0

    @property
    def branchless_inert(self) -> bool:
        """True when every component is inert on branchless packets.

        The architectural replay backend may then skip packets without
        control-flow instructions entirely (see
        :mod:`repro.backends.packets`): the composed pipeline's state after
        predicting, firing, and committing such a packet is identical to its
        state before (histories shift in zero outcomes, components see an
        all-False ``br_mask``).
        """
        return all(c.branchless_inert for c in self.components)

    def describe(self) -> str:
        return self.topology.describe()

    # ------------------------------------------------------------------
    # Predict
    # ------------------------------------------------------------------
    def predict(
        self,
        fetch_pc: int,
        slots: Sequence[PreDecodedSlot],
        ras_top: Optional[int] = None,
    ) -> PredictResult:
        width = len(slots)
        expected = packet_span(fetch_pc, self.config.fetch_width)
        if width != expected:
            raise InterfaceError(
                f"packet at pc {fetch_pc} must span {expected} slots, got {width}"
            )
        if self.history_file.full:
            raise InterfaceError("predict() called while the history file is full")

        chain_ghist = self._global.read()
        used_stale = self._stale_queries_remaining > 0
        if used_stale:
            req_ghist = self._stale_ghist
            self._stale_queries_remaining -= 1
            self.stats.stale_history_queries += 1
        else:
            req_ghist = chain_ghist
        if self._local is not None:
            lhist_index, lhist = self._local.read(fetch_pc)
        else:
            lhist_index, lhist = 0, 0
        phist = self._path.read() if self._path is not None else 0

        req = PredictRequest(fetch_pc, width, req_ghist, lhist, phist)
        metas: Dict[str, int] = {}
        telemetry = self._telemetry
        attribution = {} if telemetry is not None else None
        staged_raw = self.topology.evaluate(req, self.depth, metas, attribution)
        staged = [
            vector if vector is not None else _shared_fallthrough(fetch_pc, width)
            for vector in staged_raw
        ]

        final = self._apply_predecode(staged[-1], slots, ras_top)
        cut, next_pc = self._cut_and_next(fetch_pc, final, slots)
        fetched_len = width if cut is None else cut + 1

        br_mask = tuple(
            slots[i].is_cond_branch and not slots[i].is_sfb and i < fetched_len
            for i in range(width)
        )
        taken_mask = tuple(
            br_mask[i] and final.slots[i].taken for i in range(width)
        )
        cfi_idx = cut if cut is not None and final.slots[cut].redirects else None
        if self.config.serialize_cfi and cut is not None and slots[cut].is_cfi:
            # In serialized mode the packet ends at the CFI either way; the
            # entry records it as the packet's CFI only when taken.
            pass

        slot_providers = None
        if telemetry is not None:
            final_providers = attribution.get(id(staged_raw[-1]))
            slot_providers = (
                tuple(final_providers)
                if final_providers is not None
                else (None,) * width
            )
        entry = self.history_file.allocate(
            fetch_pc=fetch_pc,
            width=width,
            req_ghist=req_ghist,
            chain_ghist=chain_ghist,
            lhist_index=lhist_index,
            lhist_snapshot=lhist,
            phist_snapshot=phist,
            metas=metas,
            br_mask=br_mask,
            taken_mask=taken_mask,
            cfi_idx=cfi_idx,
            cfi_taken=bool(cfi_idx is not None and taken_mask[cfi_idx])
            or bool(cfi_idx is not None and final.slots[cfi_idx].is_jump),
            cfi_target=final.slots[cfi_idx].target if cfi_idx is not None else None,
            cfi_is_br=bool(cfi_idx is not None and slots[cfi_idx].is_cond_branch),
            cfi_is_jal=bool(cfi_idx is not None and slots[cfi_idx].is_jal),
            cfi_is_jalr=bool(cfi_idx is not None and slots[cfi_idx].is_jalr),
            slot_providers=slot_providers,
        )

        if self._fire_components:
            fire_bundle = bundle_from_entry(entry)
            for component in self._fire_components:
                component.fire(fire_bundle.with_meta(metas[component.name]))

        outcomes = [taken_mask[i] for i in range(width) if br_mask[i]]
        self._global.speculate(outcomes)
        if used_stale:
            for taken in outcomes:
                self._stale_ghist = shift_in(
                    self._stale_ghist, taken, self.config.global_history_bits
                )
        if self._local is not None:
            self._local.speculate(lhist_index, outcomes)
        if self._path is not None and cfi_idx is not None:
            target = final.slots[cfi_idx].target
            if final.slots[cfi_idx].redirects and target is not None:
                self._path.speculate_taken(target)

        if telemetry is not None:
            telemetry.on_predict(entry, staged, attribution, len(self.history_file))

        self.stats.predictions += 1
        return PredictResult(
            ftq_id=entry.ftq_id,
            fetch_pc=fetch_pc,
            width=width,
            fetched_len=fetched_len,
            staged=staged,
            final=final,
            cut=cut,
            next_fetch_pc=next_pc,
        )

    def _apply_predecode(
        self,
        final: PredictionVector,
        slots: Sequence[PreDecodedSlot],
        ras_top: Optional[int],
    ) -> PredictionVector:
        """Correct the final prediction with decoded instruction kinds.

        BOOM's fetch unit pre-decodes fetched bytes by Fetch-3: bogus
        predictions on non-CFI slots are dropped, direct targets are
        computed from the instruction bits, unconditional jumps become
        taken, and returns take the RAS target.
        """
        vec = final.copy()
        for i, info in enumerate(slots):
            slot = vec.slots[i]
            if not info.valid or info.is_sfb or not info.is_cfi:
                slot.hit = False
                slot.is_branch = False
                slot.is_jump = False
                slot.taken = False
                slot.target = None
            elif info.is_cond_branch:
                slot.is_branch = True
                slot.is_jump = False
                slot.target = info.direct_target if slot.taken else None
            elif info.is_jal:
                slot.is_jump = True
                slot.is_branch = False
                slot.taken = True
                slot.target = info.direct_target
            else:  # JALR: indirect target comes from the RAS or the BTB
                slot.is_jump = True
                slot.is_branch = False
                slot.taken = True
                if info.is_ret and ras_top is not None:
                    slot.target = ras_top
        return vec

    def _cut_and_next(
        self,
        fetch_pc: int,
        final: PredictionVector,
        slots: Sequence[PreDecodedSlot],
    ) -> Tuple[Optional[int], int]:
        """Where the packet ends, and the next fetch PC."""
        width = len(slots)
        cut: Optional[int] = None
        for i in range(width):
            if final.slots[i].redirects:
                cut = i
                break
            if self.config.serialize_cfi and slots[i].is_cfi:
                cut = i
                break
        aligned_next = (
            fetch_pc - (fetch_pc % self.config.fetch_width) + self.config.fetch_width
        )
        if cut is None:
            return None, aligned_next
        slot = final.slots[cut]
        if slot.redirects:
            if slot.target is not None:
                return cut, slot.target
            return cut, aligned_next  # taken but target unknown: fall through
        return cut, fetch_pc + cut + 1  # serialized not-taken CFI

    # ------------------------------------------------------------------
    # Squash / repair / resolve
    # ------------------------------------------------------------------
    def squash_after(self, ftq_id: int) -> int:
        """Squash entries younger than ``ftq_id``; return walk cycles."""
        squashed = self.history_file.squash_after(ftq_id)
        if not squashed:
            return 0
        self._global.restore(squashed[0].chain_ghist)
        if self._path is not None:
            self._path.restore(squashed[0].phist_snapshot)
        walk_cycles = self._repair.repair(squashed)
        if self._telemetry is not None:
            self._telemetry.on_repair(len(squashed), walk_cycles)
        return walk_cycles

    def resolve_mispredict(
        self,
        ftq_id: int,
        slot: int,
        actual_taken: bool,
        actual_target: Optional[int],
        is_direction_mispredict: bool = True,
    ) -> MispredictResponse:
        """A backend-resolved misprediction for ``slot`` of entry ``ftq_id``."""
        entry = self.history_file.get(ftq_id)
        squashed = self.history_file.squash_after(ftq_id)
        walk_cycles = self._repair.repair(squashed)
        if self._telemetry is not None and squashed:
            self._telemetry.on_repair(len(squashed), walk_cycles)

        corrupted_ghist = self._global.read()

        width = entry.width
        new_br = tuple(entry.br_mask[i] if i <= slot else False for i in range(width))
        new_taken = tuple(
            (actual_taken if i == slot else entry.taken_mask[i]) if i <= slot else False
            for i in range(width)
        )
        entry.br_mask = new_br
        entry.taken_mask = new_taken
        entry.mispredicted = True
        entry.mispredict_idx = slot
        entry.resolved_cfi_target = actual_target
        if entry.cfi_is_br or is_direction_mispredict:
            if actual_taken:
                entry.cfi_idx = slot
                entry.cfi_taken = True
                entry.cfi_target = actual_target
                entry.cfi_is_br = True
                entry.cfi_is_jal = False
                entry.cfi_is_jalr = False
            elif entry.cfi_idx is not None and entry.cfi_idx == slot:
                # Predicted taken, actually not taken: the packet no longer
                # ends in a taken CFI.
                entry.cfi_idx = None
                entry.cfi_taken = False
                entry.cfi_target = None
                entry.cfi_is_br = False
        else:
            # Indirect-target mispredict: direction stands, target corrected.
            entry.cfi_target = actual_target

        # Restore the speculative histories from the snapshot plus the
        # packet's corrected outcomes.
        outcomes = [new_taken[i] for i in range(width) if new_br[i]]
        ghist = entry.chain_ghist
        for taken in outcomes:
            ghist = shift_in(ghist, taken, self.config.global_history_bits)
        self._global.restore(ghist)
        if self._local is not None:
            lhist = entry.lhist_snapshot
            for taken in outcomes:
                lhist = shift_in(lhist, taken, self.config.local_history_bits)
            self._local.write(entry.lhist_index, lhist)
        if self._path is not None:
            self._path.restore(entry.phist_snapshot)
            if entry.cfi_taken and actual_target is not None:
                self._path.speculate_taken(actual_target)

        extra_bubbles = 0
        if self.config.ghist_repair_mode == "replay":
            # Fetch replays only once the corrected history is available.
            extra_bubbles = self.config.ghist_repair_bubbles
        else:
            # The original design: the first post-redirect queries see the
            # corrupted history while the repair propagates (§VI-B).
            self._stale_ghist = corrupted_ghist
            self._stale_queries_remaining = self.config.ghist_corruption_window

        if self._mispredict_components:
            bundle = bundle_from_entry(entry, mispredicted=True)
            for component in self._mispredict_components:
                meta = entry.metas.get(component.name, 0)
                component.on_mispredict(bundle.with_meta(meta))

        if is_direction_mispredict:
            self.stats.direction_mispredicts += 1
        else:
            self.stats.target_mispredicts += 1
        if self._telemetry is not None:
            self._telemetry.on_resolve(
                entry, slot, actual_taken, is_direction_mispredict
            )
        return MispredictResponse(walk_cycles, extra_bubbles)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit_packet(self, ftq_id: int) -> None:
        """Dequeue the head entry and issue commit-time updates (§IV-B2)."""
        head = self.history_file.head()
        if head is None or head.ftq_id != ftq_id:
            raise InterfaceError(
                f"commit_packet({ftq_id}) but history-file head is "
                f"{head.ftq_id if head else None}"
            )
        entry = self.history_file.dequeue()
        bundle = bundle_from_entry(entry)
        for component in self.components:
            meta = entry.metas.get(component.name, 0)
            component.on_update(bundle.with_meta(meta))
        self.stats.committed_packets += 1
        self.stats.committed_branches += sum(entry.br_mask)
        if entry.cfi_is_jal or entry.cfi_is_jalr:
            self.stats.committed_jumps += 1
        if self._telemetry is not None:
            self._telemetry.on_commit(entry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_reports(self) -> Dict[str, StorageReport]:
        """Per-structure storage, components plus management ("Meta")."""
        reports: Dict[str, StorageReport] = {}
        total_meta_bits = 0
        for component in self.components:
            reports[component.name] = component.storage()
            total_meta_bits += component.meta_bits
        meta = self.history_file.storage(
            total_meta_bits,
            self.config.global_history_bits,
            self.config.local_history_bits if self._uses_local else 0,
        )
        meta = meta.merged(self._global.storage(), "meta")
        if self._local is not None:
            meta = meta.merged(self._local.storage(), "meta")
        if self._path is not None:
            meta = meta.merged(self._path.storage(), "meta")
        reports["meta"] = meta
        return reports

    def direction_storage_kib(self) -> float:
        """Direction-prediction storage: Table I's "Storage" column.

        Counts counter/tag/weight state of direction-predicting
        sub-components plus the history providers; excludes BTB/uBTB target
        arrays and the history file (the paper accounts those separately).
        """
        bits = 0
        for component in self.components:
            if component.provides_targets:
                continue
            bits += component.storage().total_bits
        bits += self._global.storage().total_bits
        if self._local is not None:
            bits += self._local.storage().total_bits
        if self._path is not None:
            bits += self._path.storage().total_bits
        return bits / 8 / 1024

    def total_storage_kib(self, include_meta: bool = True) -> float:
        reports = self.storage_reports()
        total = 0
        for name, report in reports.items():
            if name == "meta" and not include_meta:
                continue
            total += report.total_bits
        return total / 8 / 1024

    @property
    def repair_stats(self):
        return self._repair.stats

    def reset(self) -> None:
        for component in self.components:
            component.reset()
        self._global.reset()
        if self._local is not None:
            self._local.reset()
        if self._path is not None:
            self._path.reset()
        self.history_file.reset()
        self._repair.reset()
        self.stats = ComposerStats()
        self._stale_queries_remaining = 0
        self._stale_ghist = 0


def compose(
    topology: Union[str, TopologyNode],
    library: Optional[ComponentLibrary] = None,
    config: Optional[ComposerConfig] = None,
) -> ComposedPredictor:
    """Build a complete predictor pipeline from a topology (Fig. 5).

    ``topology`` may be a topology string in the paper's notation
    (``"LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1"``) or an explicitly constructed
    :class:`~repro.core.topology.TopologyNode`.
    """
    if isinstance(topology, str):
        if library is None:
            from repro.components.library import standard_library

            library = standard_library(
                fetch_width=(config.fetch_width if config else 4)
            )
        topology = parse_topology(topology, library)
    return ComposedPredictor(topology, config)
