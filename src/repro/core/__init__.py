"""COBRA core: the predictor interface, topology model, and composer.

This package is the paper's primary contribution, reproduced at cycle
level: the sub-component interface (§III), the topological representation
of predictor compositions (§IV-A), the composer that generates a complete
pipeline with its management structures (§IV-B), and the events connecting
them (§III-E).
"""

from repro.core.composer import (
    ComposedPredictor,
    ComposerConfig,
    ComposerStats,
    MispredictResponse,
    PreDecodedSlot,
    PredictResult,
    compose,
)
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.history import GlobalHistoryProvider, LocalHistoryProvider
from repro.core.history_file import HistoryFile, HistoryFileEntry, HistoryFileError
from repro.core.interface import InterfaceError, PredictorComponent, StorageReport
from repro.core.parser import ComponentLibrary, TopologyParseError, parse_topology
from repro.core.prediction import (
    PredictionVector,
    SlotPrediction,
    StagedPrediction,
    packet_span,
)
from repro.core.repair import RepairStateMachine
from repro.core.visualize import render_pipeline, render_timing
from repro.core.topology import (
    Arbitrate,
    Leaf,
    Override,
    TopologyNode,
    validate_topology,
)

__all__ = [
    "ComposedPredictor",
    "ComposerConfig",
    "ComposerStats",
    "MispredictResponse",
    "PreDecodedSlot",
    "PredictResult",
    "compose",
    "PredictRequest",
    "UpdateBundle",
    "GlobalHistoryProvider",
    "LocalHistoryProvider",
    "HistoryFile",
    "HistoryFileEntry",
    "HistoryFileError",
    "InterfaceError",
    "PredictorComponent",
    "StorageReport",
    "ComponentLibrary",
    "TopologyParseError",
    "parse_topology",
    "PredictionVector",
    "SlotPrediction",
    "StagedPrediction",
    "packet_span",
    "RepairStateMachine",
    "Arbitrate",
    "Leaf",
    "Override",
    "TopologyNode",
    "validate_topology",
    "render_pipeline",
    "render_timing",
]
