"""The COBRA predictor sub-component interface (§III).

A sub-component is a pipelined predictor that:

- is queried with a fetch PC at cycle 0 and responds at a fixed latency
  ``p >= 1`` (§III-A);
- may consume global/local history only if its latency is ``>= 2``, since
  histories arrive at the end of the first cycle (§III-B);
- produces a superscalar :class:`~repro.core.prediction.PredictionVector`
  (§III-C);
- declares a metadata bit-length and produces an opaque metadata integer at
  predict time, which the framework returns verbatim at mispredict, repair,
  and update time (§III-D);
- observes any subset of the five events (§III-E);
- receives predictions from other sub-components via ``predict_in`` and
  either passes them through, overrides fields of them, or arbitrates among
  several of them (§III-F).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro._util import mask
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.prediction import PredictionVector


@dataclass
class StorageReport:
    """Bit-accurate storage accounting for the synthesis model (§V-A).

    ``sram_bits`` covers synchronous memories that a physical implementation
    would map to SRAM macros; ``flop_bits`` covers state held in registers.
    ``breakdown`` attributes bits to named structures within the component.
    """

    name: str
    sram_bits: int = 0
    flop_bits: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)
    #: Bits read from SRAM per prediction access (row width across all
    #: banks); drives the energy model (§VI-A).
    access_bits: int = 0

    @property
    def total_bits(self) -> int:
        return self.sram_bits + self.flop_bits

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def merged(self, other: "StorageReport", name: str) -> "StorageReport":
        combined = dict(self.breakdown)
        for key, bits in other.breakdown.items():
            combined[key] = combined.get(key, 0) + bits
        return StorageReport(
            name,
            sram_bits=self.sram_bits + other.sram_bits,
            flop_bits=self.flop_bits + other.flop_bits,
            breakdown=combined,
            access_bits=self.access_bits + other.access_bits,
        )


class InterfaceError(Exception):
    """Raised when a component or topology violates the COBRA contract."""


class PredictorComponent(abc.ABC):
    """Abstract base class for COBRA predictor sub-components.

    Class attributes
    ----------------
    branchless_inert:
        True (the default) declares that driving the component through a
        packet containing no control-flow instruction — a lookup followed by
        ``fire``/``on_update`` with an all-False ``br_mask`` and no CFI —
        leaves its architectural state exactly as it was.  Every library
        component satisfies this (counters, tags, and histories only move on
        branch lanes), and the replay backend exploits it to skip branchless
        packets entirely.  A component that learns from non-branch packets
        must set this to False; the contract is enforced by rule CON008 of
        ``repro check --components``.

    Parameters
    ----------
    name:
        Instance name; must be unique within a composed pipeline.
    latency:
        Response cycle ``p >= 1`` after the query.
    meta_bits:
        Bit-length of the metadata this component stores per prediction.
    uses_global_history, uses_local_history:
        Whether ``lookup`` consumes the ``ghist`` / ``lhist`` request
        fields.  Components with ``latency == 1`` must not use histories.
    n_inputs:
        Number of ``predict_in`` vectors the component consumes.  Chained
        (override) components take one; arbitration schemes such as the
        tournament selector take two or more (§III-F).
    """

    #: See the class docstring; checked dynamically by CON008.
    branchless_inert: bool = True

    def __init__(
        self,
        name: str,
        latency: int,
        meta_bits: int = 0,
        uses_global_history: bool = False,
        uses_local_history: bool = False,
        n_inputs: int = 1,
    ):
        if latency < 1:
            raise InterfaceError(f"{name}: latency must be >= 1, got {latency}")
        if latency < 2 and (uses_global_history or uses_local_history):
            raise InterfaceError(
                f"{name}: histories arrive at the end of cycle 1 (Fig. 2); a "
                f"latency-{latency} component cannot consume them"
            )
        if meta_bits < 0:
            raise InterfaceError(f"{name}: meta_bits must be >= 0")
        if n_inputs < 1:
            raise InterfaceError(f"{name}: n_inputs must be >= 1")
        self.name = name
        self.latency = latency
        self.meta_bits = meta_bits
        self.uses_global_history = uses_global_history
        self.uses_local_history = uses_local_history
        self.n_inputs = n_inputs
        #: True for target-providing structures (BTBs).  Table I's storage
        #: column counts direction-prediction state only; targets are
        #: accounted separately.
        self.provides_targets = False
        #: Consumes the path history (§IV-B3 extension); same Fig. 2 timing
        #: as the other histories, so latency-1 components may not use it.
        self.uses_path_history = False
        #: Library base name in the paper's notation (set by the topology
        #: parser; defaults to the instance name for hand-built components).
        self.base_name = name.upper()
        #: History-length demands: how many bits of each history this
        #: component's hashes actually consume.  Components that declare a
        #: history should set these after ``super().__init__`` so the static
        #: analyzer can reconcile them against the composed core's history
        #: provider lengths (``repro check``, rule TOP006).  Zero means "any
        #: length satisfies me".
        self.required_ghist_bits = 0
        self.required_lhist_bits = 0
        self.required_phist_bits = 0

    # ------------------------------------------------------------------
    # Predict
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def lookup(
        self,
        req: PredictRequest,
        predict_in: Sequence[PredictionVector],
    ) -> Tuple[PredictionVector, int]:
        """Form this component's prediction.

        ``predict_in`` holds ``n_inputs`` incoming predictions (the final
        predictions of the sub-topologies feeding this component at this
        component's response stage).  Implementations must *pass through*
        ``predict_in[0]`` slots for which they form no prediction, and may
        override fields for which they do (§III-F).

        Returns the outgoing prediction vector and the metadata integer
        (masked by the framework to ``meta_bits``).
        """

    # ------------------------------------------------------------------
    # Events (default no-ops; components opt into the subset they need)
    # ------------------------------------------------------------------
    def fire(self, bundle: UpdateBundle) -> None:
        """Speculative update at predict time (e.g. loop counters)."""

    def on_mispredict(self, bundle: UpdateBundle) -> None:
        """Fast update, immediately after a branch misprediction resolves."""

    def on_repair(self, bundle: UpdateBundle) -> None:
        """Restore local state corrupted by a misspeculated ``fire``."""

    def on_update(self, bundle: UpdateBundle) -> None:
        """Slow commit-time update for a committing packet."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def storage(self) -> StorageReport:
        """Bit-accurate storage report for the synthesis model."""

    def reset(self) -> None:
        """Return all predictor state to power-on values."""

    def columnar_kernel(self):
        """Batch-prediction capability (rule CON009).

        A component that can reproduce its scalar ``lookup`` with a
        vectorized pass over trace columns returns a kernel object from
        :mod:`repro.kernels.components`; the replay backend then
        batch-predicts whole branch segments between mispredicts.  The
        default — None — keeps the component on the scalar path, which is
        always correct.  A returned kernel must match the scalar lookup
        bit for bit; ``repro check --components`` enforces that with a
        seeded stimulus sweep (CON009), and the differential fuzzer
        cross-checks whole-run counts.
        """
        return None

    def spec(self):
        """Declarative self-description (:class:`repro.spec.ComponentSpec`).

        Library components return a :class:`~repro.spec.ComponentSpec`
        that restates their table geometry, indexing, history demand,
        metadata layout, and update-rule classes from first principles;
        ``repro check --spec`` (SPEC001-SPEC008) then verifies the
        imperative implementation against it.  The default — None —
        marks a component with no spec; every ``ComponentLibrary`` base
        must either override this or carry a registered waiver
        (:func:`repro.spec.register_waiver`).
        """
        return None

    def check_meta(self, meta: int) -> int:
        """Validate that metadata fits the declared width, then mask it.

        Mirrors the hardware reality that the history file stores exactly
        ``meta_bits`` bits per prediction: a component producing wider
        metadata than it declared is a contract violation, not a silent
        truncation.
        """
        if meta < 0 or meta > mask(self.meta_bits):
            raise InterfaceError(
                f"{self.name}: metadata {meta:#x} does not fit the declared "
                f"{self.meta_bits} bits"
            )
        return meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, latency={self.latency})"
