"""Pipeline diagrams for composed predictors (Figs. 2, 4, 7 as text).

``render_pipeline`` draws which sub-components respond at each fetch stage
and which one provides the final prediction per stage — the information the
paper conveys with its pipeline diagrams.  ``render_timing`` draws the
Fig. 2 query/history/response timing for one component.
"""

from __future__ import annotations

from typing import List

from repro.core.composer import ComposedPredictor
from repro.core.topology import Arbitrate, Leaf, Override, TopologyNode


def _final_provider_per_stage(node: TopologyNode, depth: int) -> List[str]:
    """Which node's output is the final prediction at each stage.

    Mirrors the composer's merge rules: for Override, the hi component wins
    from its latency onward (per-slot muxing collapses to "hi where it
    hits"); for Arbitrate, the selector wins from its latency, the first
    child before that.
    """
    if isinstance(node, Leaf):
        return [
            node.component.name if node.component.latency <= d else "-"
            for d in range(1, depth + 1)
        ]
    if isinstance(node, Override):
        below = _final_provider_per_stage(node.lo, depth)
        return [
            f"{node.hi.name}/{below[d - 1]}" if node.hi.latency <= d else below[d - 1]
            for d in range(1, depth + 1)
        ]
    assert isinstance(node, Arbitrate)
    first = _final_provider_per_stage(node.children[0], depth)
    return [
        node.selector.name if node.selector.latency <= d else first[d - 1]
        for d in range(1, depth + 1)
    ]


def render_pipeline(predictor: ComposedPredictor) -> str:
    """Fig. 7-style stage diagram of a composed predictor."""
    depth = predictor.depth
    lines = [f"topology: {predictor.describe()}", ""]
    header = "component     " + "".join(f"  F{d:<8d}" for d in range(1, depth + 1))
    lines.append(header)
    lines.append("-" * len(header))
    for component in predictor.components:
        cells = []
        for d in range(1, depth + 1):
            if d < component.latency:
                uses = []
                if d == 1 and (
                    component.uses_global_history
                    or component.uses_local_history
                    or getattr(component, "uses_path_history", False)
                ):
                    uses.append("hist-in")
                cells.append(",".join(uses) if uses else "...")
            elif d == component.latency:
                cells.append("respond")
            else:
                cells.append("(held)")
        lines.append(
            f"{component.name:14s}" + "".join(f"  {c:<8s}" for c in cells)
        )
    providers = _final_provider_per_stage(predictor.topology, depth)
    lines.append("-" * len(header))
    lines.append(
        "final:        " + "".join(f"  {p[:8]:<8s}" for p in providers)
    )
    return "\n".join(lines)


def render_timing(latency: int, depth: int = None) -> str:
    """Fig. 2-style timing for a component of the given latency."""
    if latency < 1:
        raise ValueError("latency must be >= 1")
    depth = depth or max(latency, 3)
    cells = []
    for d in range(depth + 1):
        if d == 0:
            cells.append("query")
        elif d == latency:
            cells.append("hist+pred" if d == 1 and latency >= 2 else "pred")
        elif d == 1 and latency >= 2:
            cells.append("hist")
        elif d < latency:
            cells.append("...")
        else:
            cells.append("held")
    header = "".join(f"{('F' + str(d)):>10s}" for d in range(depth + 1))
    body = "".join(f"{c:>10s}" for c in cells)
    return (
        header
        + "\n"
        + body
        + f"\n(query at Fetch-0; histories at end of Fetch-1; first response "
        f"at Fetch-{latency}; later stages hold or strengthen it)"
    )
