"""Prediction events of the COBRA interface (§III-E).

The interface defines five events a sub-component may observe:

- ``predict``: begin generating a prediction for a fetch PC (the
  :class:`PredictRequest` passed to ``lookup``).
- ``fire``: speculatively update local state for a prior predict PC.
- ``mispredict``: "fast" immediate update from a mispredicted branch.
- ``repair``: restore misspeculated local state for a given predict PC.
- ``update``: "slow" commit-time update from a committing branch.

``mispredict``, ``repair`` and ``update`` all carry the fetch PC and the
histories provided at predict time (so components can regenerate indices),
the resolved/misspeculated directions, and the component's own metadata
produced at predict time (§III-D/E).  :class:`UpdateBundle` is that common
payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: The five interface events, in pipeline order.  Telemetry trace records
#: (:mod:`repro.telemetry.trace`) use these names, with commit-time
#: ``update`` closing each packet's lifetime.
EVENT_NAMES = ("predict", "fire", "mispredict", "repair", "update")


@dataclass(frozen=True)
class PredictRequest:
    """Inputs available to a sub-component during prediction.

    ``ghist`` and ``lhist`` are provided only at the end of the first cycle
    (§III-B, Fig. 2); the composer enforces that single-cycle components do
    not consume them.  ``phist`` is the optional path history (§IV-B3),
    provided on the same timing.
    """

    fetch_pc: int
    width: int
    ghist: int = 0
    lhist: int = 0
    phist: int = 0


@dataclass
class UpdateBundle:
    """Common payload of the fire / mispredict / repair / update events.

    Attributes
    ----------
    fetch_pc, width, ghist, lhist:
        Exactly as provided at predict time.
    meta:
        The metadata integer this component produced at predict time
        (each component sees only its own metadata).
    br_mask:
        Per-slot flags: slot holds a conditional branch.  At ``fire`` time
        this reflects the *predicted* packet contents; at resolve time it
        reflects the decoded truth.
    taken_mask:
        Per-slot directions.  Speculative (predicted) at ``fire``/``repair``
        time, resolved at ``mispredict``/``update`` time.
    cfi_idx:
        Slot index of the control-flow instruction that (speculatively or
        actually) ended the packet, or None when the packet fell through.
    cfi_taken, cfi_target:
        Direction and target of that CFI.
    cfi_is_br, cfi_is_jal, cfi_is_jalr:
        Kind of that CFI.
    mispredicted:
        True on ``mispredict`` events and on ``update`` events for packets
        that were mispredicted.
    mispredict_idx:
        Slot index of the instruction that mispredicted (valid when
        ``mispredicted``); components use it to key allocations.
    """

    fetch_pc: int
    width: int
    ghist: int = 0
    lhist: int = 0
    phist: int = 0
    meta: int = 0
    br_mask: Tuple[bool, ...] = ()
    taken_mask: Tuple[bool, ...] = ()
    cfi_idx: Optional[int] = None
    cfi_taken: bool = False
    cfi_target: Optional[int] = None
    cfi_is_br: bool = False
    cfi_is_jal: bool = False
    cfi_is_jalr: bool = False
    mispredicted: bool = False
    mispredict_idx: Optional[int] = None

    def with_meta(self, meta: int) -> "UpdateBundle":
        """A copy of this bundle carrying a specific component's metadata.

        Runs once per component per event, so it bypasses the generated
        ``__init__`` and clones the instance dict directly.
        """
        clone = UpdateBundle.__new__(UpdateBundle)
        clone.__dict__.update(self.__dict__)
        clone.meta = meta
        return clone
