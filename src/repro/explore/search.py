"""The `repro explore` engine: budgeted evolutionary Pareto search.

One generation = seed/breed a population, promote it through the
successive-halving schedule (:mod:`repro.explore.halving`), offer the
full-suite survivors to the exact non-dominated archive
(:mod:`repro.explore.pareto`), then breed the next population from the
survivors with the grammar-aware operators
(:mod:`repro.explore.operators`).

Every fitness evaluation goes through
:func:`repro.eval.sweep.evaluate_designs` — i.e. the PR-1 parallel
engine and deterministic result cache — so a rerun with the same seed
and a warm cache directory replays every completed cell from disk and
executes **zero** cold jobs; the provenance block reports the counters
that prove it.  The search itself is a pure function of
``ExploreConfig.seed``: identical seeds produce identical fronts,
whatever the cache state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.eval import cache as result_cache
from repro.eval.sweep import DesignPoint, evaluate_designs
from repro.explore import halving
from repro.explore.operators import (
    Candidate,
    candidate_storage_kib,
    crossover,
    mutate,
)
from repro.explore.pareto import FrontPoint, ParetoArchive, dominates
from repro.explore.population import (
    dedup,
    random_candidate,
    seed_candidates,
    seed_population,
)
from repro.workloads.micro import MICRO_NAMES

ProgressFn = Callable[[str], None]

#: Default workload suite: a behaviour-diverse subset of the micros,
#: cheap-to-expensive so the halving prefixes stay cheap.
DEFAULT_WORKLOADS: Tuple[str, ...] = (
    "biased",
    "dispatch",
    "pattern_short",
    "counted_loops",
    "pattern_long",
)


@dataclass
class ExploreConfig:
    """Everything that determines a search run (and its cache keys)."""

    seed: int = 0
    generations: int = 3
    population_size: int = 12
    #: Storage budget per candidate (total KiB: direction + targets + meta).
    budget_kib: float = 96.0
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    scale: float = 0.2
    max_instructions: Optional[int] = 4000
    backend: str = "trace"
    jobs: int = 1
    cache: Union[None, str, Path, result_cache.ResultCache] = None
    #: Halving promotion factor: each rung keeps the best 1/eta.
    eta: int = 2
    rungs: int = 3
    max_units: int = 8
    crossover_rate: float = 0.3
    #: Fraction of each bred population reserved for fresh random draws.
    immigrant_rate: float = 0.15


@dataclass
class ExploreResult:
    """The search outcome: the front, the baselines, and provenance."""

    front: List[FrontPoint]
    seed_points: List[FrontPoint]
    provenance: Dict[str, Any] = field(default_factory=dict)

    def dominated_seeds(self) -> List[str]:
        """Seed presets strictly dominated by the front on (MPKI, area)."""
        names = []
        for seed in self.seed_points:
            seed_obj = (seed.mean_mpki, seed.area_um2)
            if any(dominates((p.mean_mpki, p.area_um2), seed_obj) for p in self.front):
                names.append(seed.origin.split(":", 1)[1])
        return names


def _build_programs(config: ExploreConfig) -> Dict[str, Any]:
    """Materialize the workload suite (live programs, cache-fingerprinted)."""
    from repro.workloads.registry import resolve_workload

    programs: Dict[str, Any] = {}
    for name in config.workloads:
        source = resolve_workload(name, config.scale)
        if source.program is None:
            raise ValueError(
                f"workload {name!r} is a stored trace; `repro explore` "
                "evaluates live programs (capture-based suites can be added "
                "as registered workloads)"
            )
        programs[source.name] = source.program
    return programs


def explore(
    config: ExploreConfig, progress: Optional[ProgressFn] = None
) -> ExploreResult:
    """Run the search to completion; deterministic in ``config.seed``."""
    if config.rungs < 1 or config.eta < 2:
        raise ValueError("need rungs >= 1 and eta >= 2")
    rng = random.Random(f"cobra-explore:{config.seed}")
    say = progress or (lambda line: None)
    cache = result_cache.resolve_cache(config.cache)
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0

    programs = _build_programs(config)
    schedule = halving.build_schedule(tuple(programs), config.rungs)
    archive = ParetoArchive()
    evaluated: set = set()
    scheduled_cells = 0
    cold_cells_planned = 0
    full_cells_planned = 0
    generation = 0

    def evaluate(
        candidates: List[Candidate], workload_names: Tuple[str, ...]
    ) -> Dict[str, DesignPoint]:
        nonlocal scheduled_cells
        designs = {cand.name: cand.factory() for cand in candidates}
        subset = {name: programs[name] for name in workload_names}
        scheduled_cells += len(designs) * len(subset)
        for cand in candidates:
            evaluated.add(cand.key)
        points = evaluate_designs(
            designs,
            subset,
            jobs=config.jobs,
            cache=cache,
            backend=config.backend,
            max_instructions=config.max_instructions,
        )
        return {point.name: point for point in points}

    # Baselines: the paper's three designs on the full suite, whatever the
    # budget admits into the population.  The front is asked to beat these.
    seeds = seed_candidates()
    seed_point_map = evaluate(seeds, tuple(programs))
    seed_points = [
        FrontPoint.from_design_point(
            seed_point_map[cand.name],
            params=cand.params,
            origin=cand.origin,
            storage_kib=candidate_storage_kib(cand),
        )
        for cand in seeds
    ]

    population = seed_population(rng, config.population_size, config.budget_kib)
    say(
        f"seeded {len(population)} candidates "
        f"(budget {config.budget_kib:g} KiB, suite {list(programs)})"
    )

    for generation in range(1, config.generations + 1):
        cold_cells_planned += halving.cold_cost(len(population), schedule, config.eta)
        full_cells_planned += halving.full_cost(len(population), schedule)
        ranked = halving.run_halving(population, schedule, evaluate, eta=config.eta)
        admitted = 0
        for cand, point in ranked:
            front_point = FrontPoint.from_design_point(
                point,
                params=cand.params,
                origin=cand.origin or "search",
                storage_kib=candidate_storage_kib(cand),
                generation=generation,
            )
            if archive.offer(front_point):
                admitted += 1
        say(
            f"generation {generation}: {len(ranked)} survivors, "
            f"{admitted} joined the front (archive size {len(archive)})"
        )
        if generation == config.generations:
            break
        population = _breed(rng, config, ranked, archive)

    cache_hits = (cache.hits - hits0) if cache is not None else 0
    cache_misses = (cache.misses - misses0) if cache is not None else 0
    result = ExploreResult(
        front=archive.front(),
        seed_points=seed_points,
        provenance={
            "seed": config.seed,
            "generations": generation,
            "population_size": config.population_size,
            "budget_kib": config.budget_kib,
            "workloads": list(programs),
            "scale": config.scale,
            "max_instructions": config.max_instructions,
            "backend": config.backend,
            "eta": config.eta,
            "rungs": len(schedule),
            "unique_candidates": len(evaluated),
            "scheduled_cells": scheduled_cells,
            "halving_cold_cells": cold_cells_planned,
            "halving_full_cells": full_cells_planned,
            "evals_saved_by_halving": full_cells_planned - cold_cells_planned,
            "cache_hits": cache_hits,
            "cold_evaluations": cache_misses,
            "cache_enabled": cache is not None,
            "code_version": result_cache.CODE_VERSION,
        },
    )
    result.provenance["dominated_seeds"] = result.dominated_seeds()
    return result


def _breed(
    rng: random.Random,
    config: ExploreConfig,
    ranked: List[Tuple[Candidate, DesignPoint]],
    archive: ParetoArchive,
) -> List[Candidate]:
    """The next population: elites plus operator children plus immigrants."""
    parents = [cand for cand, _ in ranked]
    # Front members persist as elites: spec+params round-trip losslessly
    # through the archive, so re-evaluating them costs only cache hits.
    elites = [
        Candidate(spec=p.spec, params=p.params, origin=p.origin)
        for p in archive.front()
    ]
    children: List[Candidate] = list(elites)

    def pick_parent() -> Candidate:
        # Rank-biased binary tournament over the halving survivors.
        a, b = rng.randrange(len(parents)), rng.randrange(len(parents))
        return parents[min(a, b)]

    immigrants = max(1, int(config.population_size * config.immigrant_rate))
    attempts = 0
    while (
        len(children) < config.population_size - immigrants
        and attempts < config.population_size * 10
    ):
        attempts += 1
        if rng.random() < config.crossover_rate and len(parents) > 1:
            child = crossover(
                rng,
                pick_parent(),
                pick_parent(),
                config.budget_kib,
                max_units=config.max_units,
            )
        else:
            child = mutate(
                rng,
                pick_parent(),
                config.budget_kib,
                max_units=config.max_units,
            )
        children.append(child)
        children = dedup(children)
    fill_attempts = 0
    while len(children) < config.population_size and fill_attempts < 50:
        fill_attempts += 1
        candidate = random_candidate(rng)
        if candidate_storage_kib(candidate) <= config.budget_kib:
            children.append(candidate)
            children = dedup(children)
    return children[: config.population_size]
