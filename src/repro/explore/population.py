"""Population seeding for the design-space search.

The initial population mixes the paper's three evaluated designs (their
topology strings composed over the standard library — the seeds the
front must learn to beat) with seeded random draws from the same
generator the fuzzer uses, so the search starts from both "known good"
and "unexplored" material.  Everything is a pure function of the passed
RNG; the engine owns the single seeded stream.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro import presets
from repro.explore.operators import Candidate, candidate_storage_kib
from repro.fuzz.generate import random_library_params, random_topology_spec

#: The seeded preset designs: name -> topology string over the standard
#: library.  These are the baselines `repro explore` reports dominance
#: against.
SEED_PRESETS: Dict[str, str] = {
    "tage_l": presets.TAGE_L_TOPOLOGY,
    "b2": presets.B2_TOPOLOGY,
    "tourney": presets.TOURNEY_TOPOLOGY,
}


def seed_candidates() -> List[Candidate]:
    """The preset-derived seed candidates, in a fixed order."""
    return [
        Candidate(spec=spec, params=(), origin=f"seed:{name}")
        for name, spec in SEED_PRESETS.items()
    ]


def random_candidate(rng: random.Random) -> Candidate:
    """One random draw from the fuzzer's topology/sizing generators."""
    return Candidate(
        spec=random_topology_spec(rng),
        params=random_library_params(rng),
        origin="seed:random",
    )


def seed_population(
    rng: random.Random,
    size: int,
    budget_kib: float,
    max_attempts_per_slot: int = 10,
) -> List[Candidate]:
    """Presets first, then random draws, deduped and within budget.

    A preset over the storage budget is silently skipped (it still gets
    evaluated as a baseline — just not searched from).  Random draws that
    bust the budget are redrawn a bounded number of times.
    """
    population: List[Candidate] = []
    seen: set = set()

    def admit(candidate: Candidate) -> bool:
        if candidate.key in seen:
            return False
        if candidate_storage_kib(candidate) > budget_kib:
            return False
        seen.add(candidate.key)
        population.append(candidate)
        return True

    for candidate in seed_candidates():
        if len(population) >= size:
            break
        admit(candidate)
    while len(population) < size:
        for _ in range(max_attempts_per_slot):
            if admit(random_candidate(rng)):
                break
        else:
            break  # budget too tight for the generator: stop filling
    return population


def dedup(candidates: List[Candidate]) -> List[Candidate]:
    """Order-preserving dedup by content key."""
    seen: set = set()
    out: List[Candidate] = []
    for candidate in candidates:
        if candidate.key not in seen:
            seen.add(candidate.key)
            out.append(candidate)
    return out
