"""Pareto artifact + report for `repro explore`.

The artifact is a committed JSON document (the same discipline as the
golden-stats gate): floats that must compare exactly are serialized with
fixed precision so float formatting can never drift, and the provenance
block records everything needed to reproduce the run — seed, schedule,
budget, evaluation counts, cache statistics.

The golden flavor (:func:`check_explore_golden` /
:func:`update_explore_golden`) snapshots a tiny fixed-seed run into
``goldens/golden_explore.json``: optimizer drift — a changed operator
draw, a reordered rank, a float wobble — shows up as a visible diff in
review, not a silent regression.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.explore.pareto import FrontPoint
from repro.explore.search import ExploreConfig, ExploreResult, explore

ARTIFACT_SCHEMA = 1

DEFAULT_GOLDEN_PATH = Path("goldens") / "golden_explore.json"

#: The frozen tiny run the golden snapshot pins: two generations over the
#: micro trio the golden-stats gate already uses.  Changing any field is a
#: golden regeneration (and a review justification).
GOLDEN_EXPLORE_CONFIG = ExploreConfig(
    seed=0,
    generations=2,
    population_size=8,
    budget_kib=96.0,
    workloads=("biased", "dispatch", "counted_loops"),
    scale=0.15,
    max_instructions=3000,
    backend="trace",
    rungs=2,
)

#: Provenance keys that vary between cold and warm-cache runs of the same
#: search; excluded from the golden payload (and only there).
_VOLATILE_PROVENANCE = ("cache_hits", "cold_evaluations", "cache_enabled")


def _point_payload(point: FrontPoint) -> Dict[str, Any]:
    return {
        "name": point.name,
        "spec": point.spec,
        "params": {k: v for k, v in point.params},
        "origin": point.origin,
        "generation": point.generation,
        "mean_mpki": f"{point.mean_mpki:.6f}",
        "mean_accuracy": f"{point.mean_accuracy:.8f}",
        "area_um2": f"{point.area_um2:.1f}",
        "predict_latency": point.predict_latency,
        "storage_kib": f"{point.storage_kib:.3f}",
        "per_workload_mpki": {
            name: f"{value:.6f}"
            for name, value in sorted(point.per_workload_mpki.items())
        },
    }


def result_payload(result: ExploreResult, golden: bool = False) -> Dict[str, Any]:
    """The JSON document for an artifact (or, stripped, for the golden)."""
    provenance = dict(result.provenance)
    if golden:
        for key in _VOLATILE_PROVENANCE:
            provenance.pop(key, None)
    return {
        "schema": ARTIFACT_SCHEMA,
        "provenance": provenance,
        "front": [_point_payload(p) for p in result.front],
        "seeds": [_point_payload(p) for p in result.seed_points],
    }


def save_artifact(path: Path, result: ExploreResult) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_payload(result), indent=2, sort_keys=True) + "\n")


def load_artifact(path: Path) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def format_front(points: List[FrontPoint], title: str = "Pareto front") -> str:
    header = (
        f"{'design':16s} {'MPKI':>9s} {'area um2':>10s} {'lat':>4s} "
        f"{'KiB':>7s} {'gen':>4s}  topology"
    )
    lines = [f"{title} ({len(points)} points):", header, "-" * len(header)]
    for p in points:
        sizing = (
            " [" + ", ".join(f"{k}={v}" for k, v in p.params) + "]" if p.params else ""
        )
        lines.append(
            f"{p.name:16s} {p.mean_mpki:9.3f} {p.area_um2:10.0f} "
            f"{p.predict_latency:4d} {p.storage_kib:7.1f} {p.generation:4d}"
            f"  {p.spec}{sizing}"
        )
    return "\n".join(lines)


def format_report(result: ExploreResult) -> str:
    prov = result.provenance
    lines = [
        format_front(result.front),
        "",
        format_front(result.seed_points, title="seeded presets (baselines)"),
        "",
        f"provenance: seed={prov['seed']} generations={prov['generations']} "
        f"population={prov['population_size']} budget={prov['budget_kib']:g}KiB",
        f"evaluation: {prov['unique_candidates']} unique candidates, "
        f"{prov['scheduled_cells']} scheduled cells, "
        f"{prov['evals_saved_by_halving']} cells saved by halving",
    ]
    if prov.get("cache_enabled"):
        lines.append(
            f"cache: {prov['cache_hits']} hits, "
            f"{prov['cold_evaluations']} cold evaluations"
        )
    dominated = prov.get("dominated_seeds", [])
    if dominated:
        lines.append(
            "front strictly dominates seeded preset(s) on MPKI-vs-area: "
            + ", ".join(dominated)
        )
    else:
        lines.append("front does not yet dominate any seeded preset")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Golden snapshot
# ----------------------------------------------------------------------
def _golden_run() -> ExploreResult:
    return explore(GOLDEN_EXPLORE_CONFIG)


def update_explore_golden(
    path: Path = DEFAULT_GOLDEN_PATH,
    result: Optional[ExploreResult] = None,
) -> Path:
    """Regenerate the committed golden snapshot from a fresh fixed run."""
    result = result or _golden_run()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result_payload(result, golden=True), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def _diff(
    expected: Any, actual: Any, prefix: str, out: List[str], limit: int = 40
) -> None:
    if len(out) >= limit:
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                out.append(f"{prefix}{key}: unexpected (not in golden)")
            elif key not in actual:
                out.append(f"{prefix}{key}: missing from fresh run")
            else:
                _diff(expected[key], actual[key], f"{prefix}{key}.", out, limit)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(f"{prefix[:-1]}: length {len(actual)} != golden {len(expected)}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{prefix}{i}.", out, limit)
        return
    if expected != actual:
        out.append(f"{prefix[:-1]}: {actual!r} != golden {expected!r}")


def check_explore_golden(
    path: Path = DEFAULT_GOLDEN_PATH,
    result: Optional[ExploreResult] = None,
) -> Tuple[bool, List[str]]:
    """Re-run the frozen search and exact-match it against the snapshot."""
    path = Path(path)
    if not path.exists():
        return False, [
            f"no golden snapshot at {path}; generate one with "
            "`repro explore --golden-update`"
        ]
    expected = json.loads(path.read_text())
    result = result or _golden_run()
    actual = result_payload(result, golden=True)
    messages: List[str] = []
    _diff(expected, actual, "", messages)
    return not messages, messages
