"""Successive-halving promotion over widening workload budgets.

Most candidates a stochastic search draws are bad, and it is wasteful to
find that out on the full workload suite.  Halving evaluates every
candidate on a cheap prefix of the suite first, keeps the best
``1/eta`` fraction, and re-evaluates the survivors on a wider prefix —
repeating until the final rung runs the full suite for the few remaining
front contenders.

Because every (candidate, workload) cell goes through the deterministic
result cache, a rung's re-evaluation of the previous rung's workloads is
a cache hit, not repeated work: the *cold* cost of a schedule is
``N_1*W_1 + sum_r N_r*(W_r - W_{r-1})`` cells, which
:func:`cold_cost` computes so the report can state exactly how many
evaluations halving saved over evaluating everyone on everything.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from repro.eval.sweep import DesignPoint
from repro.explore.operators import Candidate

#: ``evaluate(candidates, workload_names) -> {candidate.name: DesignPoint}``
EvaluateFn = Callable[[List[Candidate], Tuple[str, ...]], Dict[str, DesignPoint]]


def build_schedule(workloads: Sequence[str], rungs: int) -> List[Tuple[str, ...]]:
    """Growing workload prefixes; the last rung is always the full suite.

    Prefix sizes scale geometrically (1, ~sqrt, all for three rungs), and
    degenerate requests collapse sensibly: one rung means "no halving,
    full suite for everyone".
    """
    workloads = tuple(workloads)
    if not workloads:
        raise ValueError("halving needs at least one workload")
    rungs = max(1, min(rungs, len(workloads)))
    if rungs == 1:
        return [workloads]
    sizes = sorted(
        {max(1, round(len(workloads) ** (i / (rungs - 1)))) for i in range(rungs)}
    )
    sizes[-1] = len(workloads)
    return [workloads[:size] for size in dict.fromkeys(sizes)]


def promote_count(n: int, eta: int) -> int:
    """Survivor count for a rung of ``n`` candidates (at least one)."""
    return max(1, math.ceil(n / eta))


def rank_key(point: DesignPoint) -> Tuple[float, float, str]:
    """Deterministic fitness order: MPKI, then area, then name."""
    return (point.mean_mpki, point.area_um2, point.name)


def run_halving(
    candidates: List[Candidate],
    schedule: List[Tuple[str, ...]],
    evaluate: EvaluateFn,
    eta: int = 2,
) -> List[Tuple[Candidate, DesignPoint]]:
    """Promote through the schedule; returns full-suite survivors.

    Each rung evaluates the surviving candidates over its workload prefix
    (earlier-rung cells replay from the cache) and keeps the best
    ``1/eta`` by :func:`rank_key`.  The returned pairs carry the *final*
    rung's DesignPoints — fitness over the full suite — in rank order.
    """
    alive = list(candidates)
    ranked: List[Tuple[Candidate, DesignPoint]] = []
    for rung_index, rung_workloads in enumerate(schedule):
        if not alive:
            break
        points = evaluate(alive, rung_workloads)
        ranked = sorted(
            ((cand, points[cand.name]) for cand in alive),
            key=lambda pair: rank_key(pair[1]),
        )
        if rung_index < len(schedule) - 1:
            alive = [cand for cand, _ in ranked[: promote_count(len(alive), eta)]]
    return ranked


def cold_cost(population: int, schedule: List[Tuple[str, ...]], eta: int) -> int:
    """Cache-cold (candidate, workload) cells the schedule executes."""
    cells = 0
    alive = population
    previous = 0
    for rung_index, rung_workloads in enumerate(schedule):
        width = len(rung_workloads)
        if rung_index == 0:
            cells += alive * width
        else:
            cells += alive * (width - previous)
        previous = width
        if rung_index < len(schedule) - 1:
            alive = promote_count(alive, eta)
    return cells


def full_cost(population: int, schedule: List[Tuple[str, ...]]) -> int:
    """Cells a no-halving loop would execute: everyone on the full suite."""
    return population * len(schedule[-1])
