"""Topology design-space exploration (`repro explore`).

COBRA's composer makes new predictor designs one-line topology strings;
this package searches that space instead of enumerating it.  An
evolutionary loop with grammar-aware mutation/crossover operators
(:mod:`~repro.explore.operators`) breeds candidate topologies under a
storage budget, successive halving (:mod:`~repro.explore.halving`)
promotes survivors through widening workload budgets, and an exact
non-dominated archive (:mod:`~repro.explore.pareto`) accumulates the
MPKI / area / predict-latency Pareto front.  Every fitness call runs
through the parallel engine's deterministic result cache, so searches
are resumable: a rerun with the same seed and a warm cache executes zero
cold jobs.  See ``docs/explore.md``.
"""

from repro.explore.halving import build_schedule, run_halving
from repro.explore.operators import (
    Candidate,
    candidate_storage_kib,
    crossover,
    mutate,
)
from repro.explore.pareto import (
    FrontPoint,
    ParetoArchive,
    dominates,
    non_dominated,
)
from repro.explore.population import seed_candidates, seed_population
from repro.explore.report import (
    DEFAULT_GOLDEN_PATH,
    GOLDEN_EXPLORE_CONFIG,
    check_explore_golden,
    format_front,
    format_report,
    load_artifact,
    result_payload,
    save_artifact,
    update_explore_golden,
)
from repro.explore.search import (
    DEFAULT_WORKLOADS,
    ExploreConfig,
    ExploreResult,
    explore,
)

__all__ = [
    "Candidate",
    "ExploreConfig",
    "ExploreResult",
    "FrontPoint",
    "ParetoArchive",
    "DEFAULT_GOLDEN_PATH",
    "DEFAULT_WORKLOADS",
    "GOLDEN_EXPLORE_CONFIG",
    "build_schedule",
    "candidate_storage_kib",
    "check_explore_golden",
    "crossover",
    "dominates",
    "explore",
    "format_front",
    "format_report",
    "load_artifact",
    "mutate",
    "non_dominated",
    "result_payload",
    "run_halving",
    "save_artifact",
    "seed_candidates",
    "seed_population",
    "update_explore_golden",
]
