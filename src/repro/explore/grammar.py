"""Spec-level topology AST the search operators edit.

The composer's :mod:`repro.core.topology` nodes hold live component
instances — megabytes of counter tables — which makes them the wrong
substrate for a mutation operator that wants to try "what if this GSHARE
were a GTAG" a thousand times per search.  This module mirrors the
grammar at the *spec* level: a :class:`Unit` is just a (base, latency)
pair, and the three node kinds mirror Leaf/Override/Arbitrate
structurally.

Parsing deliberately goes **through the real parser**
(:func:`repro.core.parser.parse_topology`) and converts the instantiated
tree back to spec level, so this module can never disagree with the
composer about what a topology string means.  Rendering matches the
composer's ``describe()`` notation (arbitration children that are
themselves compositions are parenthesized), so
``parse(render(node))`` and ``compose(render(node)).describe()`` always
round-trip.

:func:`repair` is what makes operator output check-clean by
construction: it re-establishes the latency floors (history consumers
respond at cycle 2 or later — Fig. 2) and the TOP002 rule (an
arbitration selector is never faster than the children it arbitrates)
bottom-up after any structural edit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple, Union

from repro.core.parser import parse_topology
from repro.core.topology import Arbitrate, Leaf, Override, TopologyNode
from repro.fuzz.generate import FAST_BASES, random_unit

#: Latencies stay single-digit: deep pipelines stop being interesting well
#: before cycle 6, and bounded latencies keep generated specs readable.
MAX_LATENCY = 6


@dataclass(frozen=True)
class Unit:
    """One component draw: library base name plus response latency."""

    base: str
    latency: int

    def render(self) -> str:
        return f"{self.base}{self.latency}"

    @property
    def floor(self) -> int:
        """The smallest legal latency for this base (Fig. 2 timing)."""
        return 1 if self.base in FAST_BASES else 2


Node = Union["UnitNode", "OverrideNode", "ArbNode"]


@dataclass(frozen=True)
class UnitNode:
    """A single sub-component (a topology leaf)."""

    unit: Unit


@dataclass(frozen=True)
class OverrideNode:
    """``hi > lo``: ``hi`` provides the final prediction where it hits."""

    hi: Unit
    lo: Node


@dataclass(frozen=True)
class ArbNode:
    """A selector arbitrating two or more children (``SEL > [a, b]``)."""

    selector: Unit
    children: Tuple[Node, ...]


# ----------------------------------------------------------------------
# Render / parse
# ----------------------------------------------------------------------
def render(node: Node) -> str:
    """The node in the paper's notation, matching ``describe()`` output."""
    if isinstance(node, UnitNode):
        return node.unit.render()
    if isinstance(node, OverrideNode):
        return f"{node.hi.render()} > {render(node.lo)}"
    inner = ", ".join(
        f"({render(child)})" if not isinstance(child, UnitNode) else render(child)
        for child in node.children
    )
    return f"{node.selector.render()} > [{inner}]"


def _from_topology(tree: TopologyNode) -> Node:
    """Convert an instantiated topology tree back to spec level."""

    def unit_of(component) -> Unit:
        base = getattr(component, "base_name", None) or component.name.upper()
        return Unit(base=base, latency=component.latency)

    if isinstance(tree, Leaf):
        return UnitNode(unit_of(tree.component))
    if isinstance(tree, Override):
        return OverrideNode(unit_of(tree.hi), _from_topology(tree.lo))
    if isinstance(tree, Arbitrate):
        return ArbNode(
            unit_of(tree.selector),
            tuple(_from_topology(child) for child in tree.children),
        )
    raise TypeError(f"unknown topology node {type(tree).__name__}")


def parse(spec: str) -> Node:
    """Parse a topology string into the spec-level AST.

    Goes through :func:`repro.core.parser.parse_topology` with the
    standard library, so anything this function accepts the composer
    accepts too (and vice versa) — the operators cannot drift from the
    real grammar.
    """
    from repro.components.library import standard_library

    return _from_topology(parse_topology(spec, standard_library()))


# ----------------------------------------------------------------------
# Structure queries
# ----------------------------------------------------------------------
def units(node: Node) -> List[Unit]:
    """Every unit in the sub-tree, in render order."""
    if isinstance(node, UnitNode):
        return [node.unit]
    if isinstance(node, OverrideNode):
        return [node.hi, *units(node.lo)]
    out = [node.selector]
    for child in node.children:
        out.extend(units(child))
    return out


def max_latency(node: Node) -> int:
    return max(unit.latency for unit in units(node))


#: A path addresses a sub-tree: each step descends into ``OverrideNode.lo``
#: (step -1) or ``ArbNode.children[step]``.
Path = Tuple[int, ...]


def subtrees(node: Node, prefix: Path = ()) -> Iterator[Tuple[Path, Node]]:
    """Every sub-tree with its path, root first."""
    yield prefix, node
    if isinstance(node, OverrideNode):
        yield from subtrees(node.lo, prefix + (-1,))
    elif isinstance(node, ArbNode):
        for i, child in enumerate(node.children):
            yield from subtrees(child, prefix + (i,))


def replace_subtree(node: Node, path: Path, new: Node) -> Node:
    """A copy of ``node`` with the sub-tree at ``path`` replaced."""
    if not path:
        return new
    step, rest = path[0], path[1:]
    if isinstance(node, OverrideNode):
        if step != -1:
            raise ValueError(f"override node has no child {step}")
        return replace(node, lo=replace_subtree(node.lo, rest, new))
    if isinstance(node, ArbNode):
        children = list(node.children)
        children[step] = replace_subtree(children[step], rest, new)
        return replace(node, children=tuple(children))
    raise ValueError("path descends below a leaf")


# ----------------------------------------------------------------------
# Repair: check-clean by construction
# ----------------------------------------------------------------------
def repair(node: Node) -> Node:
    """Re-establish the error-severity invariants after a structural edit.

    Bottom-up: every unit's latency is clamped to [its floor, MAX_LATENCY],
    and every arbitration selector is made at least as slow as its slowest
    child (TOP002) with a floor of 2 (selectors consume history).  Latency
    inversions along override chains are only warnings (TOP001), so they
    are left to the operators' judgement.
    """

    def fix_unit(unit: Unit, floor: int = 0) -> Unit:
        lo = max(unit.floor, floor)
        return replace(unit, latency=min(MAX_LATENCY, max(lo, unit.latency)))

    if isinstance(node, UnitNode):
        return UnitNode(fix_unit(node.unit))
    if isinstance(node, OverrideNode):
        return OverrideNode(fix_unit(node.hi), repair(node.lo))
    children = tuple(repair(child) for child in node.children)
    floor = max(2, max(max_latency(child) for child in children))
    return ArbNode(fix_unit(node.selector, floor=floor), children)


def random_chain(rng: random.Random, max_units: int = 3) -> Node:
    """A small random override chain (used to grow fresh material)."""
    base, latency = random_unit(rng)
    node: Node = UnitNode(Unit(base, latency))
    for _ in range(rng.randint(0, max_units - 1)):
        base, latency = random_unit(rng)
        node = OverrideNode(Unit(base, latency), node)
    return repair(node)
