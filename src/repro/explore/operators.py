"""Grammar-aware mutation and crossover over topology candidates.

Every operator edits the spec-level AST (:mod:`repro.explore.grammar`)
and runs :func:`~repro.explore.grammar.repair` on the result, so operator
output is check-clean by construction: it parses (the AST mirrors the
real grammar), history consumers keep latency >= 2, and arbitration
selectors stay at least as slow as their children (TOP002).  The operator
catalog:

- ``swap_base``   — replace one component base within its speed class
  (fast PC-only bases swap among themselves, history consumers likewise).
- ``retime``      — nudge one unit's latency by +/-1 within its legal range.
- ``resize``      — re-draw one ``standard_library`` sizing from the
  spec-declared :data:`repro.spec.LEGAL_SIZINGS` (or drop it back to the
  default).
- ``add_override``— insert a fresh unit above a random sub-tree.
- ``drop_unit``   — remove an override head, or collapse an arbitration
  to one of its children.
- ``wrap_arbitrate`` — wrap a sub-tree in a 2-child TOURNEY arbitration
  against fresh random material.
- ``crossover``   — splice a random sub-tree of one parent into the other.

:func:`mutate` and :func:`crossover` are the budgeted entry points: they
retry operator draws until the composed candidate fits the storage
budget (and the unit-count bound), falling back to the parent — which is
within budget by induction — when the draw budget runs out.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.explore import grammar
from repro.explore.grammar import (
    ArbNode,
    Node,
    OverrideNode,
    Unit,
    UnitNode,
)
from repro.fuzz.generate import (
    FAST_BASES,
    HISTORY_BASES,
    TopologyFactory,
    random_unit,
)
from repro.spec import LEGAL_SIZINGS

#: Library sizing parameters as (name, value) pairs, like TopologyFactory.
Params = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class Candidate:
    """One point in the design space: a topology spec plus sizings."""

    spec: str
    params: Params = ()
    #: Where the candidate came from ("seed:tage_l", "mutate:swap_base",
    #: "crossover", ...) — provenance for the report, not identity.
    origin: str = ""

    @property
    def key(self) -> str:
        """Content identity: same spec + sizings == same candidate."""
        text = self.spec + "|" + ",".join(f"{k}={v}" for k, v in self.params)
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    @property
    def name(self) -> str:
        return f"cand-{self.key}"

    def factory(self) -> TopologyFactory:
        return TopologyFactory(self.spec, self.params)

    def build(self):
        return self.factory()()


def candidate_storage_kib(candidate: Candidate) -> float:
    """Total storage (direction + targets + metadata) of the candidate."""
    return candidate.build().total_storage_kib()


# ----------------------------------------------------------------------
# Structural operators (AST -> AST)
# ----------------------------------------------------------------------
def _swap_pool(base: str) -> Tuple[str, ...]:
    if base in FAST_BASES:
        return FAST_BASES
    if base in HISTORY_BASES:
        return HISTORY_BASES
    return ()  # LOOP/PERC/SC/...: structural operators only


def swap_base(rng: random.Random, node: Node) -> Optional[Node]:
    """Swap one unit's base within its speed class (selectors excluded)."""
    swappable = [
        (path, sub)
        for path, sub in grammar.subtrees(node)
        if not isinstance(sub, ArbNode)
        and _swap_pool(_head_unit(sub).base)
    ]
    if not swappable:
        return None
    path, sub = rng.choice(swappable)
    unit = _head_unit(sub)
    pool = [b for b in _swap_pool(unit.base) if b != unit.base]
    new_unit = replace(unit, base=rng.choice(pool))
    return grammar.repair(
        grammar.replace_subtree(node, path, _with_head_unit(sub, new_unit))
    )


def retime(rng: random.Random, node: Node) -> Optional[Node]:
    """Nudge one unit's latency by +/-1 (repair restores the floors)."""
    all_subs = list(grammar.subtrees(node))
    path, sub = rng.choice(all_subs)
    unit = _head_unit(sub)
    delta = rng.choice((-1, 1))
    new_latency = min(grammar.MAX_LATENCY, max(unit.floor, unit.latency + delta))
    if new_latency == unit.latency:
        return None
    new_unit = replace(unit, latency=new_latency)
    return grammar.repair(
        grammar.replace_subtree(node, path, _with_head_unit(sub, new_unit))
    )


def add_override(rng: random.Random, node: Node) -> Optional[Node]:
    """Insert a fresh unit as an override head above a random sub-tree."""
    path, sub = rng.choice(list(grammar.subtrees(node)))
    base, latency = random_unit(rng)
    return grammar.repair(
        grammar.replace_subtree(node, path, OverrideNode(Unit(base, latency), sub))
    )


def drop_unit(rng: random.Random, node: Node) -> Optional[Node]:
    """Drop an override head or collapse an arbitration to one child."""
    droppable = [
        (path, sub)
        for path, sub in grammar.subtrees(node)
        if not isinstance(sub, UnitNode)
    ]
    if not droppable:
        return None  # a single unit: nothing to remove
    path, sub = rng.choice(droppable)
    if isinstance(sub, OverrideNode):
        survivor: Node = sub.lo
    else:
        survivor = rng.choice(sub.children)
    return grammar.repair(grammar.replace_subtree(node, path, survivor))


def wrap_arbitrate(rng: random.Random, node: Node) -> Optional[Node]:
    """Wrap a sub-tree in a TOURNEY arbitration against fresh material.

    TOURNEY takes exactly two ``predict_in`` inputs, so the new node gets
    exactly two children; repair raises the selector's latency to the
    slowest child.
    """
    if any(isinstance(sub, ArbNode) for _, sub in grammar.subtrees(node)):
        return None  # one arbitration per design keeps the space tractable
    path, sub = rng.choice(list(grammar.subtrees(node)))
    mate = grammar.random_chain(rng, max_units=2)
    children = (sub, mate) if rng.random() < 0.5 else (mate, sub)
    wrapped = ArbNode(Unit("TOURNEY", 2), children)
    return grammar.repair(grammar.replace_subtree(node, path, wrapped))


def splice(rng: random.Random, node: Node, donor: Node) -> Optional[Node]:
    """Crossover: replace a random sub-tree with one cut from the donor."""
    path, _ = rng.choice(list(grammar.subtrees(node)))
    _, graft = rng.choice(list(grammar.subtrees(donor)))
    if path and isinstance(graft, ArbNode):
        # Grafting an arbitration below the root can nest selectors
        # arbitrarily deep; take its first child instead.
        graft = graft.children[0]
    return grammar.repair(grammar.replace_subtree(node, path, graft))


def _head_unit(node: Node) -> Unit:
    if isinstance(node, UnitNode):
        return node.unit
    if isinstance(node, OverrideNode):
        return node.hi
    return node.selector


def _with_head_unit(node: Node, unit: Unit) -> Node:
    if isinstance(node, UnitNode):
        return UnitNode(unit)
    if isinstance(node, OverrideNode):
        return replace(node, hi=unit)
    return replace(node, selector=unit)


# ----------------------------------------------------------------------
# Sizing operator (params -> params)
# ----------------------------------------------------------------------
def resize(rng: random.Random, params: Params) -> Params:
    """Re-draw one spec-declared sizing (or reset it to the default)."""
    name = rng.choice(sorted(LEGAL_SIZINGS))
    current = dict(params)
    choices: List[Optional[int]] = [
        v for v in LEGAL_SIZINGS[name] if v != current.get(name)
    ]
    choices.append(None)  # None == drop back to the library default
    drawn = rng.choice(choices)
    if drawn is None:
        current.pop(name, None)
    else:
        current[name] = drawn
    return tuple(sorted(current.items()))


# ----------------------------------------------------------------------
# Budgeted entry points
# ----------------------------------------------------------------------
#: Structural operators with draw weights (resize is handled separately —
#: it edits sizings, not structure).
STRUCTURAL_OPERATORS: Dict[
    str, Tuple[int, Callable[[random.Random, Node], Optional[Node]]]
] = {
    "swap_base": (4, swap_base),
    "retime": (2, retime),
    "add_override": (3, add_override),
    "drop_unit": (3, drop_unit),
    "wrap_arbitrate": (1, wrap_arbitrate),
}


def _admissible(candidate: Candidate, budget_kib: float, max_units: int) -> bool:
    node = grammar.parse(candidate.spec)
    if len(grammar.units(node)) > max_units:
        return False
    return candidate_storage_kib(candidate) <= budget_kib


def _draw_operator(rng: random.Random) -> Tuple[str, Callable]:
    names = sorted(STRUCTURAL_OPERATORS)
    weights = [STRUCTURAL_OPERATORS[n][0] for n in names]
    name = rng.choices(names, weights=weights, k=1)[0]
    return name, STRUCTURAL_OPERATORS[name][1]


def mutate(
    rng: random.Random,
    candidate: Candidate,
    budget_kib: float,
    max_units: int = 8,
    attempts: int = 8,
) -> Candidate:
    """One budget-respecting mutation of ``candidate``.

    Tries up to ``attempts`` operator draws (structural with probability
    ~2/3, a sizing re-draw otherwise) and returns the first child that
    composes within ``budget_kib``; exhausting the draw budget returns
    the parent unchanged (which satisfies the budget by induction, so the
    returned candidate always does).
    """
    node = grammar.parse(candidate.spec)
    for _ in range(attempts):
        if rng.random() < 0.35:
            child = Candidate(
                spec=candidate.spec,
                params=resize(rng, candidate.params),
                origin="mutate:resize",
            )
        else:
            op_name, operator = _draw_operator(rng)
            mutated = operator(rng, node)
            if mutated is None:
                continue
            child = Candidate(
                spec=grammar.render(mutated),
                params=candidate.params,
                origin=f"mutate:{op_name}",
            )
        if child.key == candidate.key:
            continue
        if _admissible(child, budget_kib, max_units):
            return child
    return candidate


def crossover(
    rng: random.Random,
    first: Candidate,
    second: Candidate,
    budget_kib: float,
    max_units: int = 8,
    attempts: int = 8,
) -> Candidate:
    """One budget-respecting splice of ``second`` into ``first``.

    Sizing parameters are inherited per-key: a key both parents size is
    drawn from either side; keys only one parent sizes carry over.
    Returns ``first`` unchanged when no admissible child emerges.
    """
    node = grammar.parse(first.spec)
    donor = grammar.parse(second.spec)
    merged: Dict[str, int] = dict(second.params)
    merged.update(
        {k: v for k, v in first.params if k not in merged or rng.random() < 0.5}
    )
    for _ in range(attempts):
        spliced = splice(rng, node, donor)
        if spliced is None:
            continue
        child = Candidate(
            spec=grammar.render(spliced),
            params=tuple(sorted(merged.items())),
            origin="crossover",
        )
        if child.key in (first.key, second.key):
            continue
        if _admissible(child, budget_kib, max_units):
            return child
    return first
