"""Exact non-dominated archive over (MPKI, area, predict latency).

The archive is the search's long-term memory: every candidate that
survives to a full-suite evaluation is offered to it, and the archive
keeps exactly the non-dominated, duplicate-free subset.  Minimization on
every objective; dominance is the usual "no worse everywhere, strictly
better somewhere".

:func:`non_dominated` is the brute-force O(n^2) reference the property
tests check the incremental archive against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.eval.sweep import DesignPoint

Objectives = Tuple[float, ...]


def dominates(a: Objectives, b: Objectives) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere, better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def non_dominated(points: Sequence[Objectives]) -> List[Objectives]:
    """Brute-force reference: the non-dominated, duplicate-free subset."""
    unique = list(dict.fromkeys(points))
    return [p for p in unique if not any(dominates(q, p) for q in unique if q != p)]


@dataclass
class FrontPoint:
    """One archived design: identity, objectives, and full measurements."""

    name: str
    spec: str
    params: Tuple[Tuple[str, int], ...]
    origin: str
    mean_mpki: float
    area_um2: float
    predict_latency: int
    storage_kib: float
    mean_accuracy: float
    per_workload_mpki: Dict[str, float] = field(default_factory=dict)
    #: Generation the point first entered the archive.
    generation: int = 0

    @property
    def objectives(self) -> Objectives:
        return (self.mean_mpki, self.area_um2, float(self.predict_latency))

    @classmethod
    def from_design_point(
        cls,
        point: DesignPoint,
        *,
        params: Tuple[Tuple[str, int], ...] = (),
        origin: str = "",
        storage_kib: float = 0.0,
        generation: int = 0,
    ) -> "FrontPoint":
        return cls(
            name=point.name,
            spec=point.topology,
            params=params,
            origin=origin,
            mean_mpki=point.mean_mpki,
            area_um2=point.area_um2,
            predict_latency=point.predict_latency,
            storage_kib=storage_kib or point.direction_storage_kib,
            mean_accuracy=point.mean_accuracy,
            per_workload_mpki=dict(point.per_workload_mpki),
            generation=generation,
        )


class ParetoArchive:
    """Incrementally maintained exact non-dominated set.

    ``offer`` inserts a point iff nothing in the archive dominates it
    (or duplicates its objectives), evicting everything it dominates.
    The archive is therefore non-dominated and duplicate-free after
    every call — the invariant the property tests brute-force-check.
    """

    def __init__(self) -> None:
        self._points: List[FrontPoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self.front())

    def offer(self, point: FrontPoint) -> bool:
        """Try to insert; returns True when the point joined the front."""
        for held in self._points:
            if dominates(held.objectives, point.objectives) or (
                held.objectives == point.objectives
            ):
                return False
        self._points = [
            held
            for held in self._points
            if not dominates(point.objectives, held.objectives)
        ]
        self._points.append(point)
        return True

    def front(self) -> List[FrontPoint]:
        """The archived points, ordered by increasing area then MPKI."""
        return sorted(self._points, key=lambda p: (p.area_um2, p.mean_mpki, p.name))

    def dominates_point(self, objectives: Objectives) -> bool:
        """True when some archived point strictly dominates ``objectives``."""
        return any(dominates(held.objectives, objectives) for held in self._points)
