"""Declarative component specifications (the single source of truth).

Every library component declares a :class:`ComponentSpec`: table
geometries (sets/ways/entry payload fields), indexing functions, history
demands, metadata payload layout, and an update-rule classification per
table.  The spec is *declarative* — it repeats, from first principles,
what the imperative implementation encodes in code — and the
``SPEC001``–``SPEC008`` analyzer (:mod:`repro.analysis.spec_check`)
verifies the two against each other: storage accounting bit-for-bit
against :meth:`~repro.core.interface.PredictorComponent.storage` and the
:mod:`repro.synthesis.area` mapping, index hashes against observed
indexing on seeded probes, history demand against ``required_*_bits``
(what TOP006 assumes), payload fields against the
:class:`~repro.components.base.MetaCodec`, and update-rule purity
against ``columnar_kernel()`` (the PR-6 eligibility gate).

The spec layer is also consumed by:

- the CON contract harness, which derives its stimulus dimensions
  (PC width, history widths, payload sweeps) from the spec instead of
  hand-coded constants;
- the fuzzer, which draws library sizing parameters from
  :data:`LEGAL_SIZINGS`;
- the columnar-kernel eligibility gate, which refuses components whose
  spec does not declare a kernel.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro._util import fold_history, hash_pc, mask
from repro.core.interface import StorageReport

#: Update-rule classes whose commit-time effect is a pure function of the
#: predict-time read and the resolved outcome (no allocation walk, no
#: speculative side state).  Tables restricted to these classes are
#: replayable in closed form by a columnar kernel.
CLOSED_FORM_UPDATES = frozenset({"saturating-counter", "shift-register"})

#: Every recognized update/repair rule class.
UPDATE_RULES = CLOSED_FORM_UPDATES | {"allocate-on-miss", "exact-event"}

#: Index schemes the columnar engine can drive from trace columns.
ENGINE_SCHEMES = frozenset({"pc", "ghist", "gshare", "gselect", "none"})

#: All schemes an :class:`IndexFn` may declare.  The first seven mirror
#: :class:`repro.components.base.IndexScheme`; ``ghist_raw`` is an
#: unhashed low-bits history index (two-level G variants), ``none`` marks
#: fully-associative (CAM) tables, and ``custom`` marks hashes with no
#: closed form here — index conformance (SPEC003) is skipped for it.
INDEX_SCHEMES = (
    "pc",
    "ghist",
    "lhist",
    "gshare",
    "gselect",
    "phist",
    "pshare",
    "ghist_raw",
    "none",
    "custom",
)

TABLE_KINDS = ("sram", "flop")
KERNEL_KINDS = ("closed-form", "event-replay", "none")

#: Events a component learns from.  ``"any"`` means the component mutates
#: state on packets with no architectural branch or CFI — i.e. it is NOT
#: ``branchless_inert``.
LEARN_TRIGGERS = ("branch", "cfi", "indirect", "candidate", "any")


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """One named bitfield in a table entry or metadata payload.

    ``count > 1`` declares a vector of ``bits``-wide lanes (one per fetch
    slot, usually).
    """

    name: str
    bits: int
    count: int = 1

    @property
    def total_bits(self) -> int:
        return self.bits * self.count


#: Signature of a table's observed-index probe: called with the component
#: instance and a stimulus ``(fetch_pc, ghist, lhist, phist)``, returns
#: the row index the implementation would actually read.
IndexProbe = Callable[[object, int, int, int, int], int]


@dataclasses.dataclass(frozen=True)
class IndexFn:
    """Declarative index hash: scheme + widths + PC key.

    ``key`` selects what feeds the PC hash: ``"packet"`` divides the
    fetch PC down to a fetch-packet number first (superscalar tables),
    ``"branch_pc"`` hashes the raw PC (per-branch tables such as the
    loop predictor).
    """

    scheme: str
    index_bits: int
    history_bits: int = 0
    key: str = "packet"
    fetch_width: int = 1

    def compute(
        self, fetch_pc: int, ghist: int = 0, lhist: int = 0, phist: int = 0
    ) -> Optional[int]:
        """The row this spec says the stimulus indexes (None: no claim)."""
        if self.scheme in ("none", "custom"):
            return None
        pc = fetch_pc if self.key == "branch_pc" else fetch_pc // self.fetch_width
        bits = self.index_bits
        if self.scheme == "ghist_raw":
            return ghist & mask(self.history_bits) & mask(bits)
        if self.scheme == "pc":
            return hash_pc(pc, bits)
        if self.scheme == "ghist":
            return fold_history(ghist, self.history_bits, bits)
        if self.scheme == "gshare":
            return hash_pc(pc, bits) ^ fold_history(ghist, self.history_bits, bits)
        if self.scheme == "gselect":
            hist_part = bits // 2
            pc_part = bits - hist_part
            return (hash_pc(pc, pc_part) << hist_part) | (ghist & mask(hist_part))
        if self.scheme == "phist":
            return fold_history(phist, self.history_bits, bits)
        if self.scheme == "pshare":
            return hash_pc(pc, bits) ^ fold_history(phist, self.history_bits, bits)
        # "lhist"
        return fold_history(lhist, self.history_bits, bits) ^ hash_pc(
            pc, max(bits - 2, 1)
        )

    @property
    def ghist_bits(self) -> int:
        if self.scheme in ("ghist", "gshare", "ghist_raw"):
            return self.history_bits
        if self.scheme == "gselect":
            return self.index_bits // 2
        return 0

    @property
    def lhist_bits(self) -> int:
        return self.history_bits if self.scheme == "lhist" else 0

    @property
    def phist_bits(self) -> int:
        return self.history_bits if self.scheme in ("phist", "pshare") else 0


@dataclasses.dataclass(frozen=True)
class TableSpec:
    """Geometry + indexing + update rule of one storage structure."""

    name: str
    entries: int
    fields: Tuple[FieldSpec, ...]
    ways: int = 1
    kind: str = "sram"
    update: str = "saturating-counter"
    index: Optional[IndexFn] = None
    #: Which :meth:`storage` breakdown keys this table accounts for
    #: (defaults to the table name itself).
    breakdown: Tuple[str, ...] = ()
    #: Observed-index probe for SPEC003; None skips index conformance.
    probe: Optional[IndexProbe] = None

    @property
    def entry_bits(self) -> int:
        return sum(field.total_bits for field in self.fields)

    @property
    def total_bits(self) -> int:
        return self.entries * self.ways * self.entry_bits

    @property
    def breakdown_keys(self) -> Tuple[str, ...]:
        return self.breakdown or (self.name,)


@dataclasses.dataclass(frozen=True)
class ComponentSpec:
    """The full declarative description of one predictor component."""

    component: str
    tables: Tuple[TableSpec, ...]
    meta_fields: Tuple[FieldSpec, ...] = ()
    ghist_bits: int = 0
    lhist_bits: int = 0
    phist_bits: int = 0
    #: "closed-form" — a columnar kernel replays updates as pure
    #: functions; "event-replay" — a kernel exists but walks events
    #: exactly; "none" — scalar path only.
    kernel: str = "none"
    learns_from: Tuple[str, ...] = ("branch",)
    n_inputs: int = 1

    # -- derived totals ------------------------------------------------
    @property
    def sram_bits(self) -> int:
        return sum(t.total_bits for t in self.tables if t.kind == "sram")

    @property
    def flop_bits(self) -> int:
        return sum(t.total_bits for t in self.tables if t.kind == "flop")

    @property
    def total_bits(self) -> int:
        return self.sram_bits + self.flop_bits

    @property
    def meta_bits(self) -> int:
        return sum(field.total_bits for field in self.meta_fields)

    @property
    def branchless_inert(self) -> bool:
        """Derived: inert unless the spec says it learns from any packet."""
        return "any" not in self.learns_from

    @property
    def closed_form_updates(self) -> bool:
        return all(t.update in CLOSED_FORM_UPDATES for t in self.tables)

    @property
    def engine_drivable(self) -> bool:
        """Could the columnar engine drive this component from columns?"""
        return (
            self.n_inputs == 1
            and self.lhist_bits == 0
            and self.phist_bits == 0
            and self.ghist_bits <= 64
            and all(
                t.index is not None and t.index.scheme in ENGINE_SCHEMES
                for t in self.tables
            )
        )

    def storage_report(self, name: str) -> StorageReport:
        """The :class:`StorageReport` this spec predicts for ``name``."""
        breakdown: Dict[str, int] = {}
        for table in self.tables:
            share, rem = divmod(table.total_bits, len(table.breakdown_keys))
            for i, key in enumerate(table.breakdown_keys):
                breakdown[key] = breakdown.get(key, 0) + share + (rem if i == 0 else 0)
        return StorageReport(
            name,
            sram_bits=self.sram_bits,
            flop_bits=self.flop_bits,
            breakdown=breakdown,
        )

    # -- well-formedness ----------------------------------------------
    def validate(self) -> List[str]:
        """Structural problems with the spec itself (SPEC008 fodder)."""
        problems: List[str] = []
        if not self.component:
            problems.append("component name is empty")
        if not self.tables:
            problems.append("spec declares no tables")
        seen_tables = set()
        for table in self.tables:
            where = f"table {table.name!r}"
            if table.name in seen_tables:
                problems.append(f"duplicate table name {table.name!r}")
            seen_tables.add(table.name)
            if table.entries <= 0 or table.ways <= 0:
                problems.append(f"{where}: entries and ways must be positive")
            if table.kind not in TABLE_KINDS:
                problems.append(f"{where}: unknown kind {table.kind!r}")
            if table.update not in UPDATE_RULES:
                problems.append(f"{where}: unknown update rule {table.update!r}")
            if not table.fields:
                problems.append(f"{where}: no payload fields")
            for field in table.fields:
                if field.bits <= 0 or field.count <= 0:
                    problems.append(
                        f"{where}: field {field.name!r} bits/count must be positive"
                    )
            if table.index is not None:
                fn = table.index
                if fn.scheme not in INDEX_SCHEMES:
                    problems.append(f"{where}: unknown index scheme {fn.scheme!r}")
                elif fn.scheme not in ("none", "custom"):
                    if fn.index_bits <= 0:
                        problems.append(f"{where}: index_bits must be positive")
                    if fn.scheme != "pc" and fn.history_bits <= 0 and (
                        fn.scheme != "gselect"
                    ):
                        problems.append(
                            f"{where}: scheme {fn.scheme!r} requires history_bits"
                        )
                if fn.key not in ("packet", "branch_pc"):
                    problems.append(f"{where}: unknown index key {fn.key!r}")
        seen_meta = set()
        for field in self.meta_fields:
            if field.name in seen_meta:
                problems.append(f"duplicate metadata field {field.name!r}")
            seen_meta.add(field.name)
            if field.bits <= 0 or field.count <= 0:
                problems.append(
                    f"metadata field {field.name!r}: bits/count must be positive"
                )
        for bits_name in ("ghist_bits", "lhist_bits", "phist_bits"):
            if getattr(self, bits_name) < 0:
                problems.append(f"{bits_name} is negative")
        if self.kernel not in KERNEL_KINDS:
            problems.append(f"unknown kernel class {self.kernel!r}")
        for trigger in self.learns_from:
            if trigger not in LEARN_TRIGGERS:
                problems.append(f"unknown learn trigger {trigger!r}")
        if self.n_inputs < 1:
            problems.append("n_inputs must be >= 1")
        return problems


# ---------------------------------------------------------------------------
# Waivers: explicit, reasoned opt-outs from individual SPEC rules.
# ---------------------------------------------------------------------------

_WAIVERS: Dict[Tuple[str, str], str] = {
    # The perceptron's update is a closed-form weight adjustment, but its
    # prediction is a ghist dot product the columnar engine has no lane
    # for; it stays on the scalar path by design (docs/backends.md).
    ("PERCEPTRON", "SPEC006"): (
        "dot-product prediction over ghist has no columnar formulation"
    ),
}


def register_waiver(subject: str, rule: str, reason: str) -> None:
    """Waive ``rule`` for ``subject`` (class name or library base name)."""
    if not reason:
        raise ValueError("a waiver requires a non-empty reason")
    _WAIVERS[(subject.upper(), rule.upper())] = reason


def clear_waiver(subject: str, rule: str) -> None:
    _WAIVERS.pop((subject.upper(), rule.upper()), None)


def waiver_for(subjects: Iterable[str], rule: str) -> Optional[str]:
    """The waiver reason covering any of ``subjects`` for ``rule``."""
    for subject in subjects:
        reason = _WAIVERS.get((subject.upper(), rule.upper()))
        if reason is not None:
            return reason
    return None


# ---------------------------------------------------------------------------
# Spec-declared legal sizing ranges for the standard library.
# ---------------------------------------------------------------------------

#: ``standard_library(**params)`` keyword arguments the fuzzer may vary,
#: with the values the specs declare legal.  Set counts are powers of two
#: (``log2_exact`` enforces this); history lengths stay within the
#: composer's 64-bit global history so TOP006 keeps passing.
LEGAL_SIZINGS: Dict[str, Tuple[int, ...]] = {
    "bim_sets": (1024, 2048, 4096, 8192),
    "gbim_sets": (1024, 2048, 4096),
    "lbim_sets": (128, 256, 512),
    "btb_sets": (128, 256, 512, 1024),
    "btb_ways": (1, 2, 4, 8),
    "ubtb_entries": (16, 32, 64),
    "gtag_sets": (128, 256, 512, 1024),
    "gtag_history_bits": (8, 12, 16, 24),
    "tourney_sets": (64, 128, 256, 512),
    "loop_entries": (64, 128, 256),
    "perceptron_entries": (64, 128, 256, 512),
}
