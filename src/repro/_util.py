"""Bit-manipulation and hashing utilities shared across the COBRA framework.

Hardware predictors operate on fixed-width bit vectors: folded histories,
partial tags, saturating counters.  These helpers keep that arithmetic in one
place so components stay readable and the bit-accurate behaviour is testable
in isolation.
"""

from __future__ import annotations

import functools


def mask(bits: int) -> int:
    """Return an all-ones mask of ``bits`` bits (``mask(3) == 0b111``)."""
    if bits < 0:
        raise ValueError(f"bit width must be non-negative, got {bits}")
    return (1 << bits) - 1


def truncate(value: int, bits: int) -> int:
    """Truncate ``value`` to its low ``bits`` bits."""
    return value & mask(bits)


@functools.lru_cache(maxsize=1 << 16)
def fold_history(history: int, history_bits: int, folded_bits: int) -> int:
    """Fold a ``history_bits``-wide history into ``folded_bits`` by XOR.

    This mirrors the cyclic-shift-register folding used by hardware TAGE
    implementations: the history is split into ``folded_bits``-wide chunks
    which are XORed together.  Folding a history into zero bits yields zero.
    (Cached: predictors re-fold the same history at predict and update
    time, exactly as a hardware circular-shift-register fold would hold it.)
    """
    if folded_bits <= 0:
        return 0
    history &= (1 << history_bits) - 1
    chunk_mask = (1 << folded_bits) - 1
    folded = 0
    while history:
        folded ^= history & chunk_mask
        history >>= folded_bits
    return folded


def hash_pc(pc: int, bits: int) -> int:
    """Hash a PC into ``bits`` bits.

    Uses a XOR of shifted copies, the standard cheap hardware PC hash, so
    nearby PCs map to distinct indices without a multiplier.
    """
    if bits <= 0:
        return 0
    h = pc ^ (pc >> bits) ^ (pc >> (2 * bits))
    return h & ((1 << bits) - 1)


def hash_combine(*values: int, bits: int) -> int:
    """Combine several values into a ``bits``-wide index by XOR."""
    h = 0
    for v in values:
        h ^= v
    return truncate(h, bits)


def saturating_update(counter: int, taken: bool, bits: int) -> int:
    """Advance a ``bits``-wide saturating counter toward taken/not-taken."""
    top = mask(bits)
    if taken:
        return counter + 1 if counter < top else top
    return counter - 1 if counter > 0 else 0


def counter_taken(counter: int, bits: int) -> bool:
    """Interpret a saturating counter's MSB as the taken prediction."""
    return bool(counter >> (bits - 1))


def counter_is_weak(counter: int, bits: int) -> bool:
    """True when the counter sits just either side of the decision boundary."""
    mid_hi = 1 << (bits - 1)
    return counter in (mid_hi, mid_hi - 1)


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer."""
    value = truncate(value, bits)
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


def shift_in(history: int, taken: bool, bits: int) -> int:
    """Shift one outcome into the LSB of a ``bits``-wide history register."""
    return ((history << 1) | int(taken)) & ((1 << bits) - 1)


def popcount(value: int) -> int:
    """Count set bits (portable across Python minor versions)."""
    return bin(value).count("1")


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of an exact power of two, raising otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
