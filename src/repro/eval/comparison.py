"""The evaluated-systems table (Table III).

Describes every system in the Fig. 10 comparison: the three COBRA-BOOM
variants and the two commercial-core proxies, with their measurement
methodology — the reproduction's analogue of the paper's
Skylake/Graviton/BOOM comparison matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import presets
from repro.baselines.proxy_cores import graviton_proxy, skylake_proxy
from repro.frontend.config import CoreConfig


@dataclass(frozen=True)
class EvaluatedSystem:
    """One row of the Table III analogue."""

    name: str
    core: str
    branch_predictor: str
    l1_caches: str
    l2_cache: str
    platform: str
    predictor_factory: Callable
    core_config: CoreConfig


def _boom_system(preset: str, label: str) -> EvaluatedSystem:
    config = CoreConfig()
    kib = config.cache.l1_sets * config.cache.l1_ways * config.cache.line_words * 8 // 1024
    return EvaluatedSystem(
        name=label,
        core="BOOM-model (4-wide)",
        branch_predictor=label,
        l1_caches=f"{kib}/{kib} KB",
        l2_cache="512 KB model",
        platform="cycle-level Python simulation (FireSim analogue)",
        predictor_factory=lambda: presets.build(preset),
        core_config=config,
    )


def evaluated_systems() -> List[EvaluatedSystem]:
    """All five systems of the Fig. 10 comparison."""
    sky_pred, sky_core = skylake_proxy()
    grav_pred, grav_core = graviton_proxy()
    systems = [
        EvaluatedSystem(
            name="skylake-proxy",
            core="wide OoO model (6-wide)",
            branch_predictor="SC3 > LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1 (large)",
            l1_caches="32/32 KB",
            l2_cache="512 KB model",
            platform="cycle-level Python simulation (perf analogue)",
            predictor_factory=lambda: skylake_proxy()[0],
            core_config=sky_core,
        ),
        EvaluatedSystem(
            name="graviton-proxy",
            core="moderate OoO model (3-wide)",
            branch_predictor="TAGE3 > BTB2 > BIM2 (mid-size)",
            l1_caches="32/32 KB",
            l2_cache="512 KB model",
            platform="cycle-level Python simulation (perf analogue)",
            predictor_factory=lambda: graviton_proxy()[0],
            core_config=grav_core,
        ),
        _boom_system("tourney", "Tournament"),
        _boom_system("b2", "B2"),
        _boom_system("tage_l", "TAGE-L"),
    ]
    return systems


def format_table(systems: Optional[List[EvaluatedSystem]] = None) -> str:
    """Render the Table III analogue as aligned text."""
    systems = systems or evaluated_systems()
    header = f"{'System':16s} {'Core':26s} {'Predictor':44s} {'L1 (I/D)':10s} {'L2':14s}"
    lines = [header, "-" * len(header)]
    for system in systems:
        lines.append(
            f"{system.name:16s} {system.core:26s} "
            f"{system.branch_predictor:44s} {system.l1_caches:10s} "
            f"{system.l2_cache:14s}"
        )
    return "\n".join(lines)
