"""Deterministic on-disk result caching for evaluation runs.

Sweeps re-run the same (predictor, workload, core) triples constantly —
design iteration loops re-evaluate unchanged baselines, CI re-runs the
whole matrix on every push.  Simulated runs are pure functions of their
inputs (power-on-fresh predictor state, fixed workload generator seeds), so
results can be keyed by a content hash of everything that determines the
outcome and replayed from disk.

The fingerprint deliberately hashes *behaviour-bearing state*, not just
names:

- the topology string **plus** per-component storage reports and the
  :class:`~repro.core.composer.ComposerConfig` fields, so two predictors
  that print the same topology but differ in sizing (``tage_sets``,
  history lengths, ...) get different keys;
- a digest of the program's instructions, initial data, and entry point —
  not the workload's name — so regenerating a workload with a different
  seed or scale invalidates the entry;
- every :class:`~repro.frontend.config.CoreConfig` field and the run
  bounds (``max_instructions``/``max_cycles``) — including the
  ``telemetry`` flag, so telemetry-on entries (whose stats carry a summary
  payload) never alias telemetry-off entries;
- the execution backend name and, for ``replay`` jobs, a content hash of
  the npz trace file, so cycle/trace/replay runs of the same design never
  alias each other and editing a stored trace invalidates its entries;
- :data:`CODE_VERSION`, bumped whenever simulator semantics change, so a
  stale cache can never leak results across incompatible versions.

Entries are one JSON file per key, written atomically (temp file +
``os.replace``).  A corrupt or truncated entry is treated as a miss and
recomputed; the cache never raises on read.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.composer import ComposedPredictor
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.frontend.core import CoreStats
from repro.isa.program import Program

#: Bump when a change to the simulator alters results for identical inputs.
CODE_VERSION = 1

#: ``CoreStats`` dicts keyed by int (stage index / branch PC); JSON turns
#: the keys into strings, so loading must convert them back for dataclass
#: equality to hold across a round trip.
_INT_KEYED_STATS = ("stage_redirects", "mispredicts_by_pc", "executions_by_pc")


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def program_digest(program: Program) -> str:
    """Content hash of a workload: instructions, initial data, entry point."""
    h = hashlib.sha256()
    h.update(program.name.encode())
    h.update(str(program.entry).encode())
    for instr in program.instructions:
        h.update(repr(instr).encode())
    for addr in sorted(program.data):
        h.update(f"{addr}:{program.data[addr]};".encode())
    return h.hexdigest()


def predictor_fingerprint(predictor: ComposedPredictor) -> Dict[str, Any]:
    """Everything that determines a predictor's behaviour from power-on."""
    storage = {}
    for name, report in predictor.storage_reports().items():
        storage[name] = {
            "sram_bits": report.sram_bits,
            "flop_bits": report.flop_bits,
            "access_bits": report.access_bits,
            "breakdown": dict(sorted(report.breakdown.items())),
        }
    return {
        "topology": predictor.describe(),
        "depth": predictor.depth,
        "composer_config": dataclasses.asdict(predictor.config),
        "storage": storage,
    }


def trace_file_digest(path: Union[str, Path]) -> str:
    """Content hash of a stored trace file (npz bytes, chunked read)."""
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def job_fingerprint(
    predictor: ComposedPredictor,
    program: Optional[Program],
    core_config: Optional[CoreConfig],
    max_instructions: Optional[int],
    max_cycles: Optional[int] = None,
    backend: str = "cycle",
    trace_digest: Optional[str] = None,
    workload: Optional[str] = None,
) -> Dict[str, Any]:
    """The full cache-key payload for one (predictor, workload, core) run.

    ``program`` may be None for replay jobs driven purely from a stored
    trace; such jobs must supply ``trace_digest`` (and ``workload`` for the
    human-readable name) instead.
    """
    if program is None and trace_digest is None:
        raise ValueError("job_fingerprint needs a program or a trace digest")
    return {
        "code_version": CODE_VERSION,
        "predictor": predictor_fingerprint(predictor),
        "program": program_digest(program) if program is not None else None,
        "workload": workload or (program.name if program is not None else ""),
        "core_config": dataclasses.asdict(core_config or CoreConfig()),
        "max_instructions": max_instructions,
        "max_cycles": max_cycles,
        "backend": backend,
        "trace": trace_digest,
    }


def fingerprint_key(fingerprint: Mapping[str, Any]) -> str:
    """Stable hex key for a fingerprint payload."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _stats_to_payload(stats: CoreStats) -> Dict[str, Any]:
    return dataclasses.asdict(stats)


def _stats_from_payload(payload: Dict[str, Any]) -> CoreStats:
    fields = dict(payload)
    for name in _INT_KEYED_STATS:
        if name in fields and isinstance(fields[name], dict):
            fields[name] = {int(k): v for k, v in fields[name].items()}
    return CoreStats(**fields)


def result_to_payload(result: RunResult) -> Dict[str, Any]:
    payload = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(RunResult)
        if f.name != "stats"
    }
    payload["stats"] = (
        _stats_to_payload(result.stats) if result.stats is not None else None
    )
    return payload


def result_from_payload(payload: Dict[str, Any]) -> RunResult:
    fields = dict(payload)
    stats = fields.pop("stats", None)
    return RunResult(
        stats=_stats_from_payload(stats) if stats is not None else None, **fields
    )


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ResultCache:
    """One-JSON-file-per-key store of :class:`RunResult` records.

    ``get`` is tolerant by construction: any failure to read, parse, or
    reconstruct an entry (missing file, truncated write from a killed
    process, hand-edited JSON, schema drift) counts as a miss and the
    caller recomputes.  ``put`` is atomic, so a concurrent reader never
    observes a half-written entry.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        try:
            payload = json.loads(self.path_for(key).read_text())
            result = result_from_payload(payload["result"])
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "result": result_to_payload(result)}
        text = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


def resolve_cache(
    cache: Union[None, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Accept a cache instance, a directory path, or None (caching off)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
