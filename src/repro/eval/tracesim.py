"""Trace-driven software simulation of a composed predictor (§II-B).

The paper's motivation is that trace-based simulators "cannot model
microarchitectural behaviors like speculation and superscalar execution"
and "demonstrate substantial modelling error".  This module implements that
very methodology over the same predictor pipelines, so the modelling error
is directly measurable in this repository: run the same workload through
:class:`TraceSimulator` and through :class:`~repro.frontend.core.Core` and
compare accuracies (see ``benchmarks/bench_trace_vs_core.py``).

The packet walk itself lives in :mod:`repro.backends.packets` and is
shared with the ``replay`` backend; this class remains as the thin,
historical front door (``repro.backends`` is the full backend layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.packets import (
    drive_stream,
    interpreter_stream,
    program_packets,
)
from repro.core.composer import ComposedPredictor
from repro.isa.program import Program


@dataclass
class TraceResult:
    branches: int
    mispredicts: int
    #: Architectural instructions covered by the walk (0 on results built
    #: by very old callers that never supplied it).
    instructions: int = 0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredicts / self.branches if self.branches else 1.0

    @property
    def mpki(self) -> float:
        """Mispredicts per kilo-*instruction* — the paper's MPKI metric."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredicts / self.instructions

    @property
    def mpki_per_branch(self) -> float:
        """Mispredicts per kilo-*branch* (not per kilo-instruction).

        Historical misnomer kept for compatibility: this is a pure
        accuracy rescaling (``1000 * (1 - accuracy)``).  For the MPKI the
        paper reports, use :attr:`mpki`.
        """
        return 1000.0 * self.mispredicts / self.branches if self.branches else 0.0


class TraceSimulator:
    """Feeds the architectural path straight through a composed predictor."""

    def __init__(self, predictor: ComposedPredictor, program: Program):
        self.predictor = predictor
        self.program = program
        self._packets = program_packets(program, predictor.config.fetch_width)

    def run(self, max_instructions: int = 1_000_000) -> TraceResult:
        """Drive the predictor down the architectural path, packet by packet."""
        counts = drive_stream(
            self.predictor,
            interpreter_stream(self.program, max_instructions),
            self._packets,
        )
        return TraceResult(counts.branches, counts.mispredicts, counts.instructions)


def trace_accuracy(
    predictor: ComposedPredictor,
    program: Program,
    max_instructions: int = 1_000_000,
) -> TraceResult:
    """Convenience wrapper: trace-simulate ``program`` on ``predictor``."""
    return TraceSimulator(predictor, program).run(max_instructions)
