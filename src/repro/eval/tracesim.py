"""Trace-driven software simulation of a composed predictor (§II-B).

The paper's motivation is that trace-based simulators "cannot model
microarchitectural behaviors like speculation and superscalar execution"
and "demonstrate substantial modelling error".  This module implements that
very methodology over the same predictor pipelines, so the modelling error
is directly measurable in this repository: run the same workload through
:class:`TraceSimulator` and through :class:`~repro.frontend.core.Core` and
compare accuracies (see ``benchmarks/bench_trace_vs_core.py``).

The trace simulator presents each architectural branch to the predictor in
commit order, one fetch packet per control-flow transfer, with no wrong
path, no speculative history corruption, and no update delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composer import ComposedPredictor, PreDecodedSlot
from repro.core.prediction import packet_span, predecode_slot
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program


@dataclass
class TraceResult:
    branches: int
    mispredicts: int

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredicts / self.branches if self.branches else 1.0

    @property
    def mpki_per_branch(self) -> float:
        return 1000.0 * self.mispredicts / self.branches if self.branches else 0.0


class TraceSimulator:
    """Feeds the architectural path straight through a composed predictor."""

    def __init__(self, predictor: ComposedPredictor, program: Program):
        self.predictor = predictor
        self.program = program
        self._packet_cache = {}

    def _predecode(self, pc: int) -> PreDecodedSlot:
        # The shared, memoized pre-decode rule — identical to the cycle-level
        # frontend's, so trace-vs-core comparisons measure modelling error,
        # never classification skew.
        return predecode_slot(self.program.fetch(pc))

    def run(self, max_instructions: int = 1_000_000) -> TraceResult:
        """Drive the predictor down the architectural path, packet by packet."""
        width = self.predictor.config.fetch_width
        branches = 0
        mispredicts = 0
        interp = Interpreter(self.program)
        stream = interp.run(max_instructions)
        record = next(stream, None)
        while record is not None:
            fetch_pc = record.pc
            slots = self._packet_cache.get(fetch_pc)
            if slots is None:
                slots = tuple(
                    self._predecode(fetch_pc + i)
                    for i in range(packet_span(fetch_pc, width))
                )
                self._packet_cache[fetch_pc] = slots
            span = len(slots)
            result = self.predictor.predict(fetch_pc, slots, None)

            # Walk the architectural records covered by this packet: they
            # follow sequentially until a taken transfer or the packet ends.
            mispredict_info = None
            consumed = 0
            while record is not None and record.pc == fetch_pc + consumed:
                slot_idx = consumed
                instr = record.instr
                if instr.is_cond_branch:
                    branches += 1
                    predicted = result.final.slots[slot_idx].taken
                    if predicted != record.taken:
                        mispredicts += 1
                        if mispredict_info is None:
                            mispredict_info = (
                                slot_idx,
                                record.taken,
                                record.next_pc if record.taken else None,
                            )
                consumed += 1
                ends_packet = (
                    record.next_pc != record.pc + 1
                    or consumed >= span
                    or (mispredict_info is not None and result.cut == slot_idx)
                )
                record = next(stream, None)
                if ends_packet:
                    break
            if mispredict_info is not None:
                slot_idx, taken, target = mispredict_info
                self.predictor.resolve_mispredict(
                    result.ftq_id, slot_idx, taken, target
                )
            self.predictor.commit_packet(result.ftq_id)
        return TraceResult(branches, mispredicts)


def trace_accuracy(
    predictor: ComposedPredictor,
    program: Program,
    max_instructions: int = 1_000_000,
) -> TraceResult:
    """Convenience wrapper: trace-simulate ``program`` on ``predictor``."""
    return TraceSimulator(predictor, program).run(max_instructions)
