"""Experiment artifacts: persist, reload, and compare run results.

Reproduction workflows need durable records: every benchmark run writes its
rows as text, and this module adds JSON round-tripping of
:class:`~repro.eval.metrics.RunResult` matrices plus a regression
comparator so two sweeps (e.g. before/after a predictor change) can be
diffed mechanically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Union

from repro.eval.metrics import RunResult

_FIELDS = (
    "cycles",
    "instructions",
    "ipc",
    "mpki",
    "total_mpki",
    "branch_accuracy",
    "branches",
    "branch_mispredicts",
    "target_mispredicts",
    "flushes",
)


def _result_payload(result: RunResult) -> Dict[str, object]:
    payload = {field: getattr(result, field) for field in _FIELDS}
    if result.telemetry is not None:
        # Telemetry summaries are JSON-canonical by construction, so the
        # payload survives the round trip bit-identically.
        payload["telemetry"] = result.telemetry
    return payload


def save_results(
    results: Mapping[str, Mapping[str, RunResult]],
    path: Union[str, Path],
) -> None:
    """Persist a results[system][workload] matrix to JSON."""
    payload = {
        system: {
            workload: _result_payload(r)
            for workload, r in rows.items()
        }
        for system, rows in results.items()
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> Dict[str, Dict[str, RunResult]]:
    """Reload a saved matrix; ``stats`` is not round-tripped."""
    payload = json.loads(Path(path).read_text())
    out: Dict[str, Dict[str, RunResult]] = {}
    for system, rows in payload.items():
        out[system] = {}
        for workload, fields in rows.items():
            fields = dict(fields)
            telemetry = fields.pop("telemetry", None)
            out[system][workload] = RunResult(
                system=system,
                workload=workload,
                stats=None,
                telemetry=telemetry,
                **fields,
            )
    return out


@dataclass(frozen=True)
class Regression:
    """One metric that moved beyond tolerance between two runs."""

    system: str
    workload: str
    metric: str
    before: float
    after: float

    @property
    def relative_change(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / self.before


def compare_results(
    before: Mapping[str, Mapping[str, RunResult]],
    after: Mapping[str, Mapping[str, RunResult]],
    ipc_tolerance: float = 0.03,
    mpki_tolerance: float = 0.10,
) -> List[Regression]:
    """Metrics that degraded between two result matrices.

    Reports IPC drops beyond ``ipc_tolerance`` (relative) and MPKI rises
    beyond ``mpki_tolerance`` (relative), for every (system, workload) pair
    present in both.
    """
    regressions: List[Regression] = []
    for system, rows in before.items():
        for workload, old in rows.items():
            new = after.get(system, {}).get(workload)
            if new is None:
                continue
            if old.ipc > 0 and new.ipc < old.ipc * (1 - ipc_tolerance):
                regressions.append(
                    Regression(system, workload, "ipc", old.ipc, new.ipc)
                )
            if new.mpki > old.mpki * (1 + mpki_tolerance) and new.mpki - old.mpki > 0.5:
                regressions.append(
                    Regression(system, workload, "mpki", old.mpki, new.mpki)
                )
    return regressions
