"""Result records and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from repro.frontend.core import CoreStats


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, as used for the Fig. 10 HARMEAN column.

    Zero values are invalid for a harmonic mean; MPKI columns that can
    legitimately reach zero should be summarized with
    :func:`arithmetic_mean` instead.
    """
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


@dataclass
class RunResult:
    """Measurements from one (system, workload) run."""

    system: str
    workload: str
    cycles: int
    instructions: int
    ipc: float
    mpki: float
    total_mpki: float
    branch_accuracy: float
    branches: int
    branch_mispredicts: int
    target_mispredicts: int
    flushes: int
    stats: Optional[CoreStats] = None
    #: Telemetry summary payload when the run was telemetry-enabled
    #: (JSON-canonical; survives artifact and cache round-trips).
    telemetry: Optional[Dict[str, Any]] = None
    #: Which execution backend produced this result (``cycle``, ``trace``,
    #: or ``replay``).  Trace-driven results carry no timing: ``cycles``,
    #: ``ipc``, ``target_mispredicts`` and ``flushes`` are zero and ``mpki``
    #: equals ``total_mpki`` (direction mispredicts only).
    backend: str = "cycle"

    @classmethod
    def from_stats(
        cls, system: str, workload: str, stats: CoreStats, backend: str = "cycle"
    ) -> "RunResult":
        return cls(
            system=system,
            workload=workload,
            cycles=stats.cycles,
            instructions=stats.committed_instructions,
            ipc=stats.ipc,
            mpki=stats.mpki,
            total_mpki=stats.total_mpki,
            branch_accuracy=stats.branch_accuracy,
            branches=stats.committed_branches,
            branch_mispredicts=stats.branch_mispredicts,
            target_mispredicts=stats.target_mispredicts,
            flushes=stats.flushes,
            stats=stats,
            telemetry=stats.telemetry,
            backend=backend,
        )

    def row(self) -> str:
        return (
            f"{self.system:16s} {self.workload:12s} "
            f"IPC={self.ipc:5.2f}  MPKI={self.mpki:6.2f}  "
            f"acc={self.branch_accuracy * 100:5.1f}%  cycles={self.cycles}"
        )
