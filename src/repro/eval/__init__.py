"""Evaluation harness: run workloads on cores, collect MPKI/IPC (§V-B).

This plays the role of the paper's FireSim simulations plus the Linux
``perf`` measurements: :func:`run_workload` attaches a composed predictor to
the host-core model, runs a workload to completion, and returns the metrics
Fig. 10 reports.  :class:`TraceSimulator` additionally provides the
trace-driven software-simulator methodology the paper argues *against*
(§II-B), so the modelling gap is itself measurable.
"""

from repro.eval.cache import ResultCache
from repro.eval.metrics import RunResult, harmonic_mean
from repro.eval.parallel import EvalJob, ParallelRunner, job_cache_key
from repro.eval.runner import run_workload, run_suite
from repro.eval.tracesim import TraceSimulator, trace_accuracy
from repro.eval.comparison import EvaluatedSystem, evaluated_systems
from repro.eval.artifacts import Regression, compare_results, load_results, save_results
from repro.eval.golden import check_goldens, update_goldens
from repro.eval.profiler import (
    AttributedSite,
    SiteReport,
    coverage,
    format_attribution,
    format_profile,
    site_attribution,
    top_offenders,
)
from repro.eval.sweep import (
    DesignPoint,
    evaluate_designs,
    format_points,
    pareto_frontier,
)

__all__ = [
    "ResultCache",
    "EvalJob",
    "ParallelRunner",
    "job_cache_key",
    "RunResult",
    "harmonic_mean",
    "run_workload",
    "run_suite",
    "TraceSimulator",
    "trace_accuracy",
    "EvaluatedSystem",
    "evaluated_systems",
    "Regression",
    "compare_results",
    "load_results",
    "save_results",
    "AttributedSite",
    "SiteReport",
    "check_goldens",
    "coverage",
    "format_attribution",
    "format_profile",
    "site_attribution",
    "top_offenders",
    "update_goldens",
    "DesignPoint",
    "evaluate_designs",
    "format_points",
    "pareto_frontier",
]
