"""Run workloads on cores and collect results."""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, Iterable, Mapping, Optional, Union

from repro.core.composer import ComposedPredictor
from repro.eval.cache import ResultCache
from repro.eval.metrics import RunResult
from repro.eval.parallel import EvalJob, ParallelRunner
from repro.frontend.config import CoreConfig
from repro.isa.program import Program
from repro import presets

#: A "system" is a predictor plus (optionally) a core configuration; a bare
#: predictor runs on the default Table-II core.
SystemSpec = Union[str, ComposedPredictor, tuple]


def _resolve_system(spec: SystemSpec, default_config: Optional[CoreConfig] = None):
    """Normalize a system spec to (name, predictor_spec, core_config).

    ``predictor_spec`` is what :class:`~repro.eval.parallel.EvalJob`
    carries: a preset name or a zero-argument factory, never a live
    predictor (each run must start from power-on state).
    """
    if isinstance(spec, str):
        return spec, spec, default_config or CoreConfig()
    if isinstance(spec, ComposedPredictor):
        raise TypeError(
            "pass a predictor *factory* (callable) or preset name so each "
            "run starts from power-on state"
        )
    name, factory, config = spec
    return name, factory, config or default_config or CoreConfig()


def run_workload(
    predictor: Union[str, ComposedPredictor],
    program: Union[Program, str],
    core_config: Optional[CoreConfig] = None,
    max_instructions: Optional[int] = None,
    max_cycles: Optional[int] = None,
    system_name: Optional[str] = None,
    telemetry: bool = False,
    trace_path: Optional[Union[str, Path]] = None,
    backend: str = "cycle",
) -> RunResult:
    """Run one workload to completion on one predictor.

    ``predictor`` may be a preset name (a fresh instance is built) or an
    already-constructed :class:`ComposedPredictor` (which is *not* reset:
    callers own warm-up semantics).  ``program`` may be a live
    :class:`Program`, a registered workload name, or a stored-trace
    ``.npz`` path (see :mod:`repro.workloads.registry`).

    ``backend`` picks the execution methodology (``cycle``, ``trace``, or
    ``replay`` — see :mod:`repro.backends`).  ``telemetry`` attaches a
    collector and publishes its summary on the result; ``trace_path``
    additionally streams a bounded JSONL event trace to that file (and
    implies ``telemetry``).
    """
    # Function-level import: repro.backends imports repro.eval.metrics and
    # must not be pulled in while repro.eval is itself initializing.
    from repro.backends import RunLimits, get_backend
    from repro.workloads.registry import resolve_workload

    if isinstance(predictor, str):
        name = system_name or predictor
        predictor = presets.build(predictor)
    else:
        name = system_name or predictor.describe()
    source = resolve_workload(program)
    config = core_config or CoreConfig()
    trace = None
    if trace_path is not None:
        from repro.telemetry import EventTrace

        trace = EventTrace(path=trace_path)
    if (telemetry or trace is not None) and not config.telemetry:
        config = dataclasses.replace(config, telemetry=True)
    try:
        return get_backend(backend).run(
            predictor,
            source,
            RunLimits(max_instructions, max_cycles),
            core_config=config,
            system=name,
            trace=trace,
        )
    finally:
        if trace is not None:
            trace.close()


def run_suite(
    systems: Iterable[SystemSpec],
    programs: Mapping[str, Union[Program, str, Path]],
    max_instructions: Optional[int] = None,
    progress: Optional[Callable[[str, str], None]] = None,
    max_cycles: Optional[int] = None,
    core_config: Optional[CoreConfig] = None,
    jobs: int = 1,
    cache: Union[None, str, Path, ResultCache] = None,
    telemetry: bool = False,
    backend: str = "cycle",
) -> Dict[str, Dict[str, RunResult]]:
    """Run every (system, workload) pair; returns results[system][workload].

    Each pair gets a freshly built predictor so runs are independent, as in
    the paper's per-benchmark FPGA simulations.

    ``core_config`` is the shared default core for systems that do not
    carry their own (a ``(name, factory, config)`` tuple with a non-None
    config still wins).  ``max_cycles`` bounds each run like
    :func:`run_workload` does.  ``jobs`` > 1 fans the matrix over worker
    processes and ``cache`` (a directory path or
    :class:`~repro.eval.cache.ResultCache`) replays previously computed
    cells; both default to the serial, uncached reference behaviour and
    are guaranteed to produce identical results.

    ``telemetry`` turns the collector on for every cell (systems carrying
    their own config get a telemetry-enabled copy of it).  Telemetry flips
    the cache fingerprint — telemetry-on and telemetry-off results never
    alias — and the summary payload round-trips through cached entries.

    ``backend`` selects the execution methodology for every cell; a
    ``programs`` value may be a stored-trace ``.npz`` path (replay jobs
    carry the trace file, not a live program).  The backend (and the trace
    file's content hash) is part of the cache fingerprint.
    """
    batch = []
    order: Dict[str, None] = {}
    for spec in systems:
        name, predictor_spec, config = _resolve_system(spec, core_config)
        if telemetry and not config.telemetry:
            config = dataclasses.replace(config, telemetry=True)
        order.setdefault(name)
        for workload_name, workload in programs.items():
            is_program = isinstance(workload, Program)
            batch.append(
                EvalJob(
                    system=name,
                    spec=predictor_spec,
                    workload=workload_name,
                    program=workload if is_program else None,
                    core_config=config,
                    max_instructions=max_instructions,
                    max_cycles=max_cycles,
                    backend=backend,
                    trace_path=None if is_program else str(workload),
                )
            )
    runner = ParallelRunner(jobs=jobs, cache=cache, progress=progress)
    results: Dict[str, Dict[str, RunResult]] = {name: {} for name in order}
    for job, result in zip(batch, runner.run(batch)):
        results[job.system][job.workload] = result
    return results
