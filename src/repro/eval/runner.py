"""Run workloads on cores and collect results."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Union

from repro.core.composer import ComposedPredictor
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.frontend.core import Core
from repro.isa.program import Program
from repro import presets

#: A "system" is a predictor plus (optionally) a core configuration; a bare
#: predictor runs on the default Table-II core.
SystemSpec = Union[str, ComposedPredictor, tuple]


def _resolve_system(spec: SystemSpec):
    """Normalize a system spec to (name, predictor_factory, core_config)."""
    if isinstance(spec, str):
        return spec, (lambda: presets.build(spec)), CoreConfig()
    if isinstance(spec, ComposedPredictor):
        raise TypeError(
            "pass a predictor *factory* (callable) or preset name so each "
            "run starts from power-on state"
        )
    name, factory, config = spec
    return name, factory, config or CoreConfig()


def run_workload(
    predictor: Union[str, ComposedPredictor],
    program: Program,
    core_config: Optional[CoreConfig] = None,
    max_instructions: Optional[int] = None,
    max_cycles: Optional[int] = None,
    system_name: Optional[str] = None,
) -> RunResult:
    """Run one workload to completion on one predictor.

    ``predictor`` may be a preset name (a fresh instance is built) or an
    already-constructed :class:`ComposedPredictor` (which is *not* reset:
    callers own warm-up semantics).
    """
    if isinstance(predictor, str):
        name = system_name or predictor
        predictor = presets.build(predictor)
    else:
        name = system_name or predictor.describe()
    core = Core(program, predictor, core_config or CoreConfig())
    stats = core.run(max_instructions=max_instructions, max_cycles=max_cycles)
    return RunResult.from_stats(name, program.name, stats)


def run_suite(
    systems: Iterable[SystemSpec],
    programs: Mapping[str, Program],
    max_instructions: Optional[int] = None,
    progress: Optional[Callable[[str, str], None]] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run every (system, workload) pair; returns results[system][workload].

    Each pair gets a freshly built predictor so runs are independent, as in
    the paper's per-benchmark FPGA simulations.
    """
    results: Dict[str, Dict[str, RunResult]] = {}
    for spec in systems:
        name, factory, config = _resolve_system(spec)
        results[name] = {}
        for workload_name, program in programs.items():
            if progress is not None:
                progress(name, workload_name)
            predictor = factory()
            core = Core(program, predictor, config)
            stats = core.run(max_instructions=max_instructions)
            results[name][workload_name] = RunResult.from_stats(
                name, workload_name, stats
            )
    return results
