"""Design-space exploration utilities.

The composer's purpose is cheap design iteration (Fig. 1's loop).  This
module runs a set of candidate designs over a workload mix and computes the
accuracy/area Pareto frontier — the design-exploration workflow §V-A
sketches with its three points, generalized.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.composer import ComposedPredictor
from repro.eval.cache import ResultCache
from repro.eval.metrics import arithmetic_mean, harmonic_mean
from repro.eval.parallel import EvalJob, ParallelRunner
from repro.frontend.config import CoreConfig
from repro.isa.program import Program
from repro.synthesis.area import AreaModel


@dataclass
class DesignPoint:
    """One evaluated design: costs and merits."""

    name: str
    topology: str
    mean_mpki: float
    harmean_ipc: float
    mean_accuracy: float
    area_um2: float
    direction_storage_kib: float
    per_workload_mpki: Dict[str, float]
    #: Pipeline depth in cycles (the slowest component's response stage) —
    #: the predict-latency objective ``repro explore`` trades against MPKI
    #: and area.  0 for points loaded from pre-explore artifacts.
    predict_latency: int = 0

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (accuracy up, area down)."""
        no_worse = (
            self.mean_accuracy >= other.mean_accuracy
            and self.area_um2 <= other.area_um2
        )
        strictly_better = (
            self.mean_accuracy > other.mean_accuracy
            or self.area_um2 < other.area_um2
        )
        return no_worse and strictly_better


def evaluate_designs(
    designs: Mapping[str, Callable[[], ComposedPredictor]],
    programs: Mapping[str, Program],
    core_config: Optional[CoreConfig] = None,
    area_model: Optional[AreaModel] = None,
    jobs: int = 1,
    cache: Union[None, str, Path, ResultCache] = None,
    telemetry: bool = False,
    backend: str = "cycle",
    max_instructions: Optional[int] = None,
) -> List[DesignPoint]:
    """Run every design over every workload; return one point per design.

    ``jobs`` and ``cache`` behave as in
    :func:`~repro.eval.runner.run_suite`: the (design × workload) cells are
    independent, so they fan over worker processes and replay from the
    deterministic result cache without changing any number.  ``telemetry``
    attaches per-run collectors, as in :func:`run_suite`.

    ``backend`` selects the execution methodology for every cell (see
    :mod:`repro.backends`).  Trace-driven backends report zero IPC, so
    ``harmean_ipc`` is forced to 0.0 for them rather than fed through the
    harmonic mean (which rejects zeros).  ``max_instructions`` bounds every
    cell's run (it is part of the cache fingerprint) — the search engine
    uses it to keep fitness evaluations cheap.
    """
    area_model = area_model or AreaModel()
    config = core_config or CoreConfig()
    if telemetry and not config.telemetry:
        config = dataclasses.replace(config, telemetry=True)
    batch = [
        EvalJob(
            system=name,
            spec=factory,
            workload=workload_name,
            program=program,
            core_config=config,
            backend=backend,
            max_instructions=max_instructions,
        )
        for name, factory in designs.items()
        for workload_name, program in programs.items()
    ]
    runner = ParallelRunner(jobs=jobs, cache=cache)
    by_design: Dict[str, Dict[str, "object"]] = {}
    for job, result in zip(batch, runner.run(batch)):
        by_design.setdefault(job.system, {})[job.workload] = result
    points: List[DesignPoint] = []
    for name, factory in designs.items():
        reference = factory()
        area = area_model.predictor_total(reference)
        storage = reference.direction_storage_kib()
        topology = reference.describe()
        mpki: Dict[str, float] = {}
        ipcs: List[float] = []
        accs: List[float] = []
        for workload_name in programs:
            result = by_design[name][workload_name]
            mpki[workload_name] = result.mpki
            ipcs.append(result.ipc)
            accs.append(result.branch_accuracy)
        points.append(
            DesignPoint(
                name=name,
                topology=topology,
                mean_mpki=arithmetic_mean(list(mpki.values())),
                harmean_ipc=harmonic_mean(ipcs) if backend == "cycle" else 0.0,
                mean_accuracy=arithmetic_mean(accs),
                area_um2=area,
                direction_storage_kib=storage,
                per_workload_mpki=mpki,
                predict_latency=reference.depth,
            )
        )
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated designs, ordered by increasing area."""
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.area_um2)


def format_points(points: Sequence[DesignPoint]) -> str:
    header = (
        f"{'design':16s} {'MPKI':>7s} {'IPC':>6s} {'acc':>7s} "
        f"{'KiB':>7s} {'area um2':>10s}  topology"
    )
    lines = [header, "-" * len(header)]
    for p in sorted(points, key=lambda p: p.area_um2):
        lines.append(
            f"{p.name:16s} {p.mean_mpki:7.1f} {p.harmean_ipc:6.2f} "
            f"{p.mean_accuracy * 100:6.1f}% {p.direction_storage_kib:7.1f} "
            f"{p.area_um2:10.0f}  {p.topology}"
        )
    return "\n".join(lines)
