"""Golden-stats regression gate: committed exact-match run snapshots.

The simulator is deterministic end to end: workloads are generated from
fixed seeds, simulation state is all-integer, and telemetry observes
without perturbing.  That makes *exact* stats stable across machines and
Python versions, so the repo commits a golden snapshot of a small
preset × micro-workload matrix and CI re-runs the matrix on every push,
failing on any drift.  Unlike the tolerance-based
:func:`~repro.eval.artifacts.compare_results` (meant for cross-design
comparisons where noise is semantic), this gate is bit-exact: any change
to predictor or core semantics must regenerate the goldens (``repro
golden --update``) and justify the diff in review.

Snapshot contents per cell (schema 2): under ``"cycle"``, the cycle-level
run — cycle count, committed instructions, control mispredicts, flushes,
MPKI (fixed-precision string so float formatting cannot drift), and the
per-component telemetry counters, so the gate catches attribution
regressions, not just end-to-end totals; under ``"trace"``, the
trace-backend run of the same (preset, workload) pair — branch and
mispredict counts plus MPKI/accuracy — so drift in the trace-driven
walker (which ``replay`` is bit-identical to by construction and by test)
is gated exactly like drift in the core.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import presets
from repro.eval.runner import run_workload
from repro.frontend.config import CoreConfig
from repro.workloads.micro import build_micro

GOLDEN_SCHEMA = 2

#: The golden matrix: every preset over a spread of branchy micro kernels,
#: small enough to run in seconds but long enough to exercise mispredict /
#: repair / commit paths thousands of times.
GOLDEN_PRESETS: Tuple[str, ...] = tuple(presets.PRESET_NAMES)
GOLDEN_WORKLOADS: Tuple[str, ...] = ("biased", "dispatch", "counted_loops")
GOLDEN_SCALE = 0.2
GOLDEN_MAX_INSTRUCTIONS = 4000

DEFAULT_GOLDEN_PATH = Path("goldens") / "golden_stats.json"


def _entry_payload(result) -> Dict[str, Any]:
    """The exact-match snapshot of one (preset, workload) run."""
    telemetry = result.telemetry or {}
    repair = telemetry.get("repair", {})
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "branch_mispredicts": result.branch_mispredicts,
        "target_mispredicts": result.target_mispredicts,
        "flushes": result.flushes,
        # Serialized with fixed precision so the comparison is string
        # equality, immune to float-repr differences.
        "mpki": f"{result.mpki:.6f}",
        "components": telemetry.get("components", {}),
        "unattributed": telemetry.get("unattributed", {}),
        "repair": {
            "walks": repair.get("walks", 0),
            "entries": repair.get("entries", 0),
            "cycles": repair.get("cycles", 0),
        },
    }


def _trace_payload(result) -> Dict[str, Any]:
    """The exact-match snapshot of one trace-backend run."""
    return {
        "branches": result.branches,
        "mispredicts": result.branch_mispredicts,
        "instructions": result.instructions,
        "mpki": f"{result.mpki:.6f}",
        "accuracy": f"{result.branch_accuracy:.6f}",
    }


def collect_stats(
    progress=None,
) -> Dict[str, Any]:
    """Run the golden matrix fresh and return the snapshot payload."""
    entries: Dict[str, Dict[str, Any]] = {}
    for preset in GOLDEN_PRESETS:
        entries[preset] = {}
        for workload in GOLDEN_WORKLOADS:
            if progress is not None:
                progress(preset, workload)
            program = build_micro(workload, scale=GOLDEN_SCALE)
            result = run_workload(
                preset,
                program,
                core_config=CoreConfig(),
                max_instructions=GOLDEN_MAX_INSTRUCTIONS,
                telemetry=True,
            )
            trace_result = run_workload(
                preset,
                program,
                core_config=CoreConfig(),
                max_instructions=GOLDEN_MAX_INSTRUCTIONS,
                backend="trace",
            )
            entries[preset][workload] = {
                "cycle": _entry_payload(result),
                "trace": _trace_payload(trace_result),
            }
    return {
        "schema": GOLDEN_SCHEMA,
        "suite": {
            "presets": list(GOLDEN_PRESETS),
            "workloads": list(GOLDEN_WORKLOADS),
            "scale": GOLDEN_SCALE,
            "max_instructions": GOLDEN_MAX_INSTRUCTIONS,
        },
        "entries": entries,
    }


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    else:
        out[prefix] = value


def diff_goldens(
    expected: Dict[str, Any], actual: Dict[str, Any]
) -> List[str]:
    """Exact-match comparison; one message per divergent leaf value."""
    messages: List[str] = []
    if expected.get("schema") != actual.get("schema"):
        messages.append(
            f"schema: expected {expected.get('schema')}, "
            f"got {actual.get('schema')}"
        )
        return messages
    if expected.get("suite") != actual.get("suite"):
        messages.append(
            f"suite definition changed: expected {expected.get('suite')}, "
            f"got {actual.get('suite')} (regenerate with --update)"
        )
        return messages
    flat_expected: Dict[str, Any] = {}
    flat_actual: Dict[str, Any] = {}
    _flatten("", expected.get("entries", {}), flat_expected)
    _flatten("", actual.get("entries", {}), flat_actual)
    for key in sorted(set(flat_expected) | set(flat_actual)):
        if key not in flat_actual:
            messages.append(f"{key}: missing from fresh run")
        elif key not in flat_expected:
            messages.append(f"{key}: not in golden snapshot")
        elif flat_expected[key] != flat_actual[key]:
            messages.append(
                f"{key}: golden {flat_expected[key]!r} != "
                f"fresh {flat_actual[key]!r}"
            )
    return messages


def load_goldens(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def save_goldens(payload: Dict[str, Any], path: Union[str, Path]) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check_goldens(
    path: Union[str, Path] = DEFAULT_GOLDEN_PATH,
    progress=None,
    fresh: Optional[Dict[str, Any]] = None,
) -> Tuple[bool, List[str]]:
    """Compare a fresh run of the matrix against the committed snapshot.

    Returns ``(ok, messages)``; ``messages`` lists every divergent value
    (or the reason no comparison was possible).  ``fresh`` lets tests and
    the CLI reuse an already-collected payload.
    """
    target = Path(path)
    if not target.is_file():
        return False, [
            f"no golden snapshot at {target} (run `repro golden --update`)"
        ]
    try:
        expected = load_goldens(target)
    except (OSError, json.JSONDecodeError) as exc:
        return False, [f"unreadable golden snapshot {target}: {exc}"]
    actual = fresh if fresh is not None else collect_stats(progress=progress)
    messages = diff_goldens(expected, actual)
    return not messages, messages


def update_goldens(
    path: Union[str, Path] = DEFAULT_GOLDEN_PATH,
    progress=None,
) -> Dict[str, Any]:
    """Regenerate and write the snapshot; returns the fresh payload."""
    payload = collect_stats(progress=progress)
    save_goldens(payload, path)
    return payload
