"""Parallel evaluation engine: fan (system × workload) jobs over processes.

The paper's workflow evaluates every candidate design over every workload —
an embarrassingly parallel matrix whose cells share nothing (each run
starts from a power-on-fresh predictor).  This module turns that matrix
into picklable :class:`EvalJob` records and executes them over a
``concurrent.futures.ProcessPoolExecutor``, with a deterministic on-disk
result cache (:mod:`repro.eval.cache`) consulted before any work is
scheduled.

Design rules:

- **Jobs ship specs, not objects.**  A job carries a preset name (or a
  picklable factory) plus the :class:`~repro.isa.program.Program`; the
  worker rebuilds the predictor from scratch, which both keeps the job
  picklable and guarantees power-on-fresh state — exactly what the serial
  path does.
- **Serial is the reference.**  ``jobs=1`` executes in submission order in
  the parent process with no executor involved; the parallel path must be
  bit-identical to it (runs are deterministic), which the test suite
  checks.
- **Degrade, never fail.**  Unpicklable jobs (closure factories) fall back
  to in-process execution.  A worker crash (``BrokenProcessPool``) reruns
  the unfinished jobs serially.  A job that raises in a worker is retried
  once in the parent so real errors surface with a clean traceback.

This module must not import :mod:`repro.eval.runner` (the runner builds on
the engine, not the other way around).
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import presets
from repro.core.composer import ComposedPredictor
from repro.eval import cache as result_cache
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.isa.program import Program

#: Called as ``progress(system, workload)`` as each job is dispatched.
ProgressFn = Callable[[str, str], None]


@dataclass
class EvalJob:
    """One (system, workload) cell of an evaluation matrix.

    ``spec`` is a preset name or a zero-argument predictor factory; the
    predictor is always built *inside* the executing process so every run
    starts from power-on state.
    """

    system: str
    spec: Union[str, Callable[[], ComposedPredictor]]
    workload: str
    program: Optional[Program] = None
    core_config: CoreConfig = field(default_factory=CoreConfig)
    max_instructions: Optional[int] = None
    max_cycles: Optional[int] = None
    #: Execution backend name (see :mod:`repro.backends`).
    backend: str = "cycle"
    #: Stored ``BranchTrace`` npz for replay jobs with no live program.
    trace_path: Optional[str] = None


def build_predictor(spec: Union[str, Callable[[], ComposedPredictor]]):
    """Instantiate the job's predictor (fresh, power-on state)."""
    if isinstance(spec, str):
        return presets.build(spec)
    return spec()


def _execute_job(job: EvalJob) -> RunResult:
    """Run one job to completion; module-level so workers can unpickle it."""
    # Function-level imports: repro.backends pulls in repro.eval.metrics, so
    # importing it at module scope here would cycle through repro.eval.
    from repro.backends import RunLimits, get_backend
    from repro.workloads.registry import WorkloadSource

    predictor = build_predictor(job.spec)
    source = WorkloadSource(
        name=job.workload, program=job.program, trace_path=job.trace_path
    )
    return get_backend(job.backend).run(
        predictor,
        source,
        RunLimits(job.max_instructions, job.max_cycles),
        core_config=job.core_config,
        system=job.system,
    )


def job_cache_key(job: EvalJob) -> str:
    """The deterministic result-cache key for one job.

    Shared by :class:`ParallelRunner` and the evaluation service
    (:mod:`repro.service`), so an HTTP job submission, a CLI sweep, and a
    warm cache entry written by either all agree on what "the same run"
    means.  Building the key builds the predictor once (fingerprints hash
    behaviour-bearing state, not names).
    """
    trace_digest = (
        result_cache.trace_file_digest(job.trace_path)
        if job.trace_path is not None
        else None
    )
    fingerprint = result_cache.job_fingerprint(
        build_predictor(job.spec),
        job.program,
        job.core_config,
        job.max_instructions,
        job.max_cycles,
        backend=job.backend,
        trace_digest=trace_digest,
        workload=job.workload,
    )
    return result_cache.fingerprint_key(fingerprint)


def _is_picklable(job: EvalJob) -> bool:
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False


class ParallelRunner:
    """Executes a batch of :class:`EvalJob` with caching and fan-out.

    Parameters
    ----------
    jobs:
        Worker-process count.  ``1`` (the default) runs everything in the
        parent process — the bit-identical reference path.
    cache:
        A :class:`~repro.eval.cache.ResultCache`, a directory path, or
        None (caching off).  Cached results are returned without
        scheduling any work; fresh results are written back.
    retries:
        In-parent retries for a job whose worker raised (a worker-side
        exception is retried serially so the real traceback surfaces).
    progress:
        Optional ``progress(system, workload)`` callback fired once per
        job as it is dispatched (including cache hits).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[None, str, "result_cache.ResultCache"] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = result_cache.resolve_cache(cache)
        self.retries = retries
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, batch: Sequence[EvalJob]) -> List[RunResult]:
        """Execute every job; results are returned in submission order."""
        batch = list(batch)
        results: List[Optional[RunResult]] = [None] * len(batch)
        keys: List[Optional[str]] = [None] * len(batch)

        pending: List[int] = []
        for index, job in enumerate(batch):
            if self.cache is not None:
                keys[index] = self._key_for(job)
                cached = self.cache.get(keys[index])
                if cached is not None:
                    self._report(job)
                    results[index] = cached
                    continue
            pending.append(index)

        if self.jobs > 1 and len(pending) > 1:
            parallelizable = [i for i in pending if _is_picklable(batch[i])]
            serial_only = [i for i in pending if i not in set(parallelizable)]
            for index in parallelizable:
                self._report(batch[index])
            self._run_parallel(batch, parallelizable, results)
        else:
            serial_only = pending
        for index in serial_only:
            self._report(batch[index])
            results[index] = _execute_job(batch[index])

        if self.cache is not None:
            for index, result in enumerate(results):
                if keys[index] is not None and result is not None:
                    if not self.cache.path_for(keys[index]).exists():
                        self.cache.put(keys[index], result)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    def _report(self, job: EvalJob) -> None:
        if self.progress is not None:
            self.progress(job.system, job.workload)

    def _key_for(self, job: EvalJob) -> str:
        return job_cache_key(job)

    def _run_parallel(
        self,
        batch: Sequence[EvalJob],
        indices: List[int],
        results: List[Optional[RunResult]],
    ) -> None:
        """Fan ``indices`` over a process pool, filling ``results``.

        Any pool-level failure (a worker killed by the OS, a broken pipe)
        falls back to executing the unfinished jobs serially; a job-level
        exception is retried in the parent up to ``retries`` times before
        propagating.
        """
        unfinished = list(indices)
        failed: Dict[int, BaseException] = {}
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {pool.submit(_execute_job, batch[i]): i for i in indices}
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index = futures[future]
                        error = future.exception()
                        if error is None:
                            results[index] = future.result()
                            unfinished.remove(index)
                        elif isinstance(error, BrokenProcessPool):
                            raise error
                        else:
                            failed[index] = error
                            unfinished.remove(index)
        except BrokenProcessPool:
            # The pool died (e.g. a worker was OOM-killed); everything not
            # yet finished reruns in-process.
            for index in list(unfinished):
                results[index] = _execute_job(batch[index])
                unfinished.remove(index)

        for index, error in failed.items():
            last: BaseException = error
            for _ in range(self.retries):
                try:
                    results[index] = _execute_job(batch[index])
                    break
                except Exception as retry_error:  # pragma: no cover - rare
                    last = retry_error
            else:
                raise last
