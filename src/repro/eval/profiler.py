"""Per-branch-site profiling: where does a predictor lose its accuracy?

The FireSim out-of-band profilers the paper uses produce exactly this kind
of report: the static branch sites responsible for most mispredictions,
with their execution counts and local mispredict rates — the starting point
of every predictor-tuning loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.frontend.core import CoreStats
from repro.isa.program import Program


@dataclass(frozen=True)
class SiteReport:
    """One static branch site's behaviour over a run."""

    pc: int
    executions: int
    mispredicts: int
    instruction: str

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.executions if self.executions else 0.0


def top_offenders(
    stats: CoreStats,
    program: Optional[Program] = None,
    limit: int = 10,
) -> List[SiteReport]:
    """Branch sites ranked by absolute mispredict count."""
    reports = []
    for pc, misses in stats.mispredicts_by_pc.items():
        executions = stats.executions_by_pc.get(pc, misses)
        text = ""
        if program is not None:
            instr = program.fetch(pc)
            text = str(instr) if instr is not None else "?"
        reports.append(SiteReport(pc, executions, misses, text))
    reports.sort(key=lambda r: -r.mispredicts)
    return reports[:limit]


def coverage(stats: CoreStats, top_n: int = 5) -> float:
    """Fraction of all mispredicts attributable to the worst ``top_n`` sites.

    High coverage means the predictor's losses are concentrated (a targeted
    fix — a loop predictor, an SFB conversion — can pay off); low coverage
    means the losses are diffuse (capacity or fundamental randomness).
    """
    total = sum(stats.mispredicts_by_pc.values())
    if total == 0:
        return 0.0
    worst = sorted(stats.mispredicts_by_pc.values(), reverse=True)[:top_n]
    return sum(worst) / total


def format_profile(
    stats: CoreStats, program: Optional[Program] = None, limit: int = 10
) -> str:
    """Human-readable top-offenders table."""
    rows = top_offenders(stats, program, limit)
    if not rows:
        return "(no mispredicts recorded)"
    lines = [
        f"{'pc':>8s} {'execs':>8s} {'misses':>8s} {'rate':>7s}  instruction",
    ]
    for row in rows:
        lines.append(
            f"{row.pc:8d} {row.executions:8d} {row.mispredicts:8d} "
            f"{row.mispredict_rate * 100:6.1f}%  {row.instruction}"
        )
    lines.append(
        f"top-{min(limit, len(rows))} coverage: "
        f"{coverage(stats, limit) * 100:.1f}% of all mispredicts"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Component attribution (telemetry-backed)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttributedSite:
    """One branch site with per-component right/wrong final directions.

    Built from a telemetry summary's ``sites`` payload
    (:meth:`repro.telemetry.TelemetryCollector.summary`), which records,
    for every resolved final direction, *which sub-component supplied it*.
    ``providers`` maps component name (or ``"(none)"`` for the fall-through
    default) to ``(right, wrong)`` counts.
    """

    pc: int
    instruction: str = ""
    providers: Dict[str, tuple] = field(default_factory=dict)

    @property
    def wrong(self) -> int:
        return sum(w for _, w in self.providers.values())

    @property
    def right(self) -> int:
        return sum(r for r, _ in self.providers.values())

    def worst_provider(self) -> Optional[str]:
        """The component charged with the most wrong directions here."""
        if not self.providers:
            return None
        name, counts = max(self.providers.items(), key=lambda kv: kv[1][1])
        return name if counts[1] else None


def site_attribution(
    telemetry: Mapping[str, Any],
    program: Optional[Program] = None,
    limit: int = 10,
) -> List[AttributedSite]:
    """Branch sites ranked by attributed-wrong count, worst first.

    ``telemetry`` is a summary payload (``CoreStats.telemetry`` /
    ``RunResult.telemetry``); site PCs arrive JSON-canonical as strings
    and are converted back to ints here.
    """
    sites = []
    for pc_text, by_provider in telemetry.get("sites", {}).items():
        pc = int(pc_text)
        text = ""
        if program is not None:
            instr = program.fetch(pc)
            text = str(instr) if instr is not None else "?"
        providers = {
            name: (counts[0], counts[1])
            for name, counts in by_provider.items()
        }
        sites.append(AttributedSite(pc=pc, instruction=text, providers=providers))
    sites.sort(key=lambda s: (-s.wrong, s.pc))
    return sites[:limit]


def format_attribution(
    telemetry: Mapping[str, Any],
    program: Optional[Program] = None,
    limit: int = 10,
) -> str:
    """Human-readable per-site attribution table."""
    rows = [s for s in site_attribution(telemetry, program, limit) if s.wrong]
    if not rows:
        return "(no attributed mispredicts recorded)"
    lines = [
        f"{'pc':>8s} {'right':>8s} {'wrong':>8s}  worst offender      instruction",
    ]
    for row in rows:
        worst = row.worst_provider() or "-"
        detail = ", ".join(
            f"{name}={wrong}"
            for name, (_, wrong) in sorted(
                row.providers.items(), key=lambda kv: -kv[1][1]
            )
            if wrong
        )
        lines.append(
            f"{row.pc:8d} {row.right:8d} {row.wrong:8d}  "
            f"{worst:18s}  {row.instruction}"
        )
        if detail and "," in detail:
            lines.append(f"{'':28s}({detail})")
    return "\n".join(lines)
