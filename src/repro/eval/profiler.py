"""Per-branch-site profiling: where does a predictor lose its accuracy?

The FireSim out-of-band profilers the paper uses produce exactly this kind
of report: the static branch sites responsible for most mispredictions,
with their execution counts and local mispredict rates — the starting point
of every predictor-tuning loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.frontend.core import CoreStats
from repro.isa.program import Program


@dataclass(frozen=True)
class SiteReport:
    """One static branch site's behaviour over a run."""

    pc: int
    executions: int
    mispredicts: int
    instruction: str

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.executions if self.executions else 0.0


def top_offenders(
    stats: CoreStats,
    program: Optional[Program] = None,
    limit: int = 10,
) -> List[SiteReport]:
    """Branch sites ranked by absolute mispredict count."""
    reports = []
    for pc, misses in stats.mispredicts_by_pc.items():
        executions = stats.executions_by_pc.get(pc, misses)
        text = ""
        if program is not None:
            instr = program.fetch(pc)
            text = str(instr) if instr is not None else "?"
        reports.append(SiteReport(pc, executions, misses, text))
    reports.sort(key=lambda r: -r.mispredicts)
    return reports[:limit]


def coverage(stats: CoreStats, top_n: int = 5) -> float:
    """Fraction of all mispredicts attributable to the worst ``top_n`` sites.

    High coverage means the predictor's losses are concentrated (a targeted
    fix — a loop predictor, an SFB conversion — can pay off); low coverage
    means the losses are diffuse (capacity or fundamental randomness).
    """
    total = sum(stats.mispredicts_by_pc.values())
    if total == 0:
        return 0.0
    worst = sorted(stats.mispredicts_by_pc.values(), reverse=True)[:top_n]
    return sum(worst) / total


def format_profile(
    stats: CoreStats, program: Optional[Program] = None, limit: int = 10
) -> str:
    """Human-readable top-offenders table."""
    rows = top_offenders(stats, program, limit)
    if not rows:
        return "(no mispredicts recorded)"
    lines = [
        f"{'pc':>8s} {'execs':>8s} {'misses':>8s} {'rate':>7s}  instruction",
    ]
    for row in rows:
        lines.append(
            f"{row.pc:8d} {row.executions:8d} {row.mispredicts:8d} "
            f"{row.mispredict_rate * 100:6.1f}%  {row.instruction}"
        )
    lines.append(
        f"top-{min(limit, len(rows))} coverage: "
        f"{coverage(stats, limit) * 100:.1f}% of all mispredicts"
    )
    return "\n".join(lines)
