"""Asyncio client for the evaluation service.

One connection per request (the server speaks ``Connection: close``), pure
stdlib.  Used by the ``repro submit`` CLI verb, the service load generator
(``benchmarks/bench_service.py``), the CI smoke script, and the tests — so
every consumer exercises exactly the wire protocol a third-party client
would.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


class ServiceClientError(RuntimeError):
    """A non-2xx response (status and decoded body attached)."""

    def __init__(self, status: int, payload: Any, headers: Dict[str, str]):
        message = (
            payload.get("error") if isinstance(payload, dict) else None
        ) or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        try:
            return float(value) if value is not None else None
        except ValueError:  # pragma: no cover - server always sends numbers
            return None


@dataclass
class ServiceClient:
    """Minimal HTTP/1.1 JSON client bound to one service address."""

    host: str = "127.0.0.1"
    port: int = 8765
    timeout: float = 60.0

    async def request(
        self, method: str, path: str, body: Any = None
    ) -> Tuple[int, Any, Dict[str, str]]:
        """One round trip; returns (status, decoded JSON, headers)."""
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer reset
                pass
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        decoded = json.loads(body_blob.decode()) if body_blob else None
        return status, decoded, headers

    async def _checked(self, method: str, path: str, body: Any = None) -> Any:
        status, payload, headers = await self.request(method, path, body)
        if status >= 400:
            raise ServiceClientError(status, payload, headers)
        return payload

    # ------------------------------------------------------------------
    async def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST one job spec; returns the job view."""
        return await self._checked("POST", "/jobs", spec)

    async def submit_batch(self, specs: List[Dict[str, Any]]) -> Dict[str, Any]:
        """POST a batch; returns ``{"jobs": [...], "accepted": n}``."""
        return await self._checked("POST", "/jobs", {"jobs": specs})

    async def job(self, job_id: str) -> Dict[str, Any]:
        return await self._checked("GET", f"/jobs/{job_id}")

    async def wait_job(
        self, job_id: str, timeout: float = 300.0
    ) -> Dict[str, Any]:
        """Long-poll until the job is terminal (re-polls on server timeout)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not terminal after {timeout}s")
            step = min(remaining, 30.0)
            view = await self._checked(
                "GET", f"/jobs/{job_id}?wait=1&timeout={step:g}"
            )
            if view["state"] in ("done", "failed"):
                return view

    async def healthz(self) -> Dict[str, Any]:
        return await self._checked("GET", "/healthz")

    async def metrics(self) -> Dict[str, Any]:
        return await self._checked("GET", "/metrics")
