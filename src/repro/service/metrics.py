"""Service metrics: counters, gauges, and per-backend latency histograms.

Follows the telemetry package's counter idiom (a ``__slots__``-pinned
counter record with an explicit field tuple and a dict snapshot), so the
``GET /metrics`` payload is stable, cheap to produce, and additive —
adding a counter means adding a name to one tuple.

Latencies go into :class:`LatencyHistogram`: fixed log2 buckets over
microseconds, so recording is O(1), the histogram never grows, and
percentiles are read off the bucket boundaries (upper-bound estimates —
fine for a dashboard, documented in docs/service.md).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional

#: One event counter per slot; ``snapshot()`` mirrors this tuple exactly.
_COUNTER_FIELDS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_shed",
    "jobs_rejected",
    "cache_hits",
    "cache_misses",
    "dedup_coalesced",
    "executions",
    "worker_restarts",
    "worker_retries",
    "requests",
)

#: Histogram bucket upper bounds in seconds: 31 log2 steps from 64 us to
#: ~19 hours, plus a catch-all.  64 us resolves a warm HTTP round trip;
#: the top end outlives any bounded simulation.
_BUCKET_BOUNDS = tuple((1 << i) / 1_000_000.0 for i in range(6, 37))


class LatencyHistogram:
    """Fixed-bucket log2 latency histogram (seconds in, summary out)."""

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket bound containing the q-quantile observation."""
        if not self.count:
            return None
        rank = q * (self.count - 1)
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if bucket and seen > rank:
                if index >= len(_BUCKET_BOUNDS):
                    return self.max
                return min(_BUCKET_BOUNDS[index], self.max)
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "count": self.count,
            "mean_ms": (self.total / self.count * 1000.0) if self.count else None,
            "max_ms": self.max * 1000.0 if self.count else None,
        }
        for name, q in (("p50_ms", 0.5), ("p90_ms", 0.9), ("p99_ms", 0.99)):
            value = self.quantile(q)
            payload[name] = value * 1000.0 if value is not None else None
        payload["buckets"] = {
            f"le_{bound * 1000.0:g}ms": count
            for bound, count in zip(_BUCKET_BOUNDS, self.counts)
            if count
        }
        overflow = self.counts[-1]
        if overflow:
            payload["buckets"]["overflow"] = overflow
        return payload


class ServiceMetrics:
    """Every counter the service publishes, plus per-backend latencies.

    Counter semantics:

    - ``jobs_submitted``: specs accepted into the job table (including
      cache hits and coalesced followers).
    - ``jobs_completed`` / ``jobs_failed``: terminal transitions, followers
      included.
    - ``jobs_shed``: submissions refused with 429 at the high-water mark.
    - ``jobs_rejected``: submissions refused with 400 (bad spec).
    - ``cache_hits``: served straight from the result cache, no worker.
    - ``cache_misses``: submissions that had to consult the queue.
    - ``dedup_coalesced``: followers attached to an identical in-flight
      leader instead of executing.
    - ``executions``: jobs actually handed to the worker pool.
    - ``worker_restarts``: process-pool respawns after a worker death.
    - ``worker_retries``: job re-submissions caused by those deaths.
    - ``requests``: HTTP requests served (any endpoint, any status).
    """

    __slots__ = _COUNTER_FIELDS + ("latency", "cache_hit_latency")

    def __init__(self) -> None:
        for name in _COUNTER_FIELDS:
            setattr(self, name, 0)
        #: Per-backend execution latency (submit -> done, cold path).
        self.latency: Dict[str, LatencyHistogram] = {}
        #: Warm-path latency (submit -> served from cache).
        self.cache_hit_latency = LatencyHistogram()

    def record_latency(self, backend: str, seconds: float) -> None:
        histogram = self.latency.get(backend)
        if histogram is None:
            histogram = self.latency[backend] = LatencyHistogram()
        histogram.record(seconds)

    def cache_hit_rate(self) -> Optional[float]:
        seen = self.cache_hits + self.cache_misses
        return (self.cache_hits / seen) if seen else None

    def snapshot(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            name: getattr(self, name) for name in _COUNTER_FIELDS
        }
        payload["cache_hit_rate"] = self.cache_hit_rate()
        payload["latency_by_backend"] = {
            backend: histogram.snapshot()
            for backend, histogram in sorted(self.latency.items())
        }
        payload["cache_hit_latency"] = self.cache_hit_latency.snapshot()
        return payload
