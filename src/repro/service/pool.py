"""A worker pool that survives worker death.

``concurrent.futures.ProcessPoolExecutor`` has one catastrophic failure
mode: when any worker process dies (OOM kill, segfault, an operator's
``kill -9``), the *whole pool* breaks — every in-flight future raises
``BrokenProcessPool`` and the executor refuses further submissions.  A
long-lived service cannot treat that as fatal, so :class:`WorkerPool`
wraps the executor with a generation counter: the first caller to observe
a broken pool of the current generation shuts it down, spawns a fresh
executor, and bumps the generation; every other caller that raced into the
same wreckage sees the generation already advanced and simply resubmits.
Jobs interrupted by a worker death are retried up to ``max_retries`` times
(they are pure functions of their inputs, so a retry is safe), then
surfaced as :class:`WorkerPoolBroken`.

Job-level exceptions (the submitted function raising) are *not* retried
here — they are deterministic and propagate to the caller, which marks the
job failed.  Only pool-level breakage is retried.

The pool is asyncio-native: :meth:`run` awaits the executor future via
``asyncio.wrap_future``, so dispatcher tasks stay cooperative while the
work happens in another process.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Tuple

from repro.service.metrics import ServiceMetrics


class WorkerPoolBroken(RuntimeError):
    """A job kept landing on dying workers past the retry budget."""


def _worker_init() -> None:
    """Give every worker a clean, self-contained signal setup.

    Workers must never share signal plumbing with the parent's event
    loop: a worker that inherits the loop's ``signal.set_wakeup_fd``
    socket echoes any trappable signal it receives (notably the SIGTERM
    ``terminate_broken`` sends to surviving workers when a sibling dies)
    straight into the *parent's* loop, which dutifully runs the parent's
    SIGTERM handler and gracefully drains a perfectly healthy server.
    The spawn start method (see :meth:`WorkerPool._spawn`) already
    guarantees a fresh interpreter, so this initializer only has to pin
    the dispositions: default SIGTERM so ``terminate_broken`` can reap
    the worker, ignored SIGINT so a terminal Ctrl-C reaches only the
    parent, which owns the drain decision.
    """
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _worker_pid() -> int:
    """Trivial priming task: forces a worker to exist, reports its pid."""
    return os.getpid()


class WorkerPool:
    """Respawning ``ProcessPoolExecutor`` front-end (see module docstring).

    Parameters
    ----------
    workers:
        Process count per executor generation.
    max_retries:
        How many worker-death resubmissions one job is allowed before
        :class:`WorkerPoolBroken` propagates.
    metrics:
        Optional :class:`ServiceMetrics`; ``worker_restarts`` counts
        executor respawns, ``worker_retries`` counts job resubmissions.
    """

    def __init__(
        self,
        workers: int = 2,
        max_retries: int = 2,
        metrics: Optional[ServiceMetrics] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.max_retries = max_retries
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._generation = 0
        self._executor: Optional[ProcessPoolExecutor] = self._spawn()
        self._closed = False

    # ------------------------------------------------------------------
    def _spawn(self) -> ProcessPoolExecutor:
        # The spawn start method is load-bearing, not a style choice.  A
        # forked worker inherits the parent event loop's wakeup fd and
        # signal handlers until the initializer runs (a window in which a
        # signal to the worker echoes into the parent's loop), and a fork
        # issued *while the previous generation's manager thread is mid-
        # ``terminate_broken``* can snapshot held multiprocessing locks
        # and deadlock the new worker before it ever runs a job.  Spawn
        # starts workers from a fresh interpreter, eliminating both; the
        # ~0.5 s numpy import per worker is amortized over the service's
        # lifetime.
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
        )

    def _respawn(self, seen_generation: int) -> None:
        """Replace a broken executor exactly once per generation."""
        if self._closed or self._generation != seen_generation:
            return  # another caller already replaced this generation
        broken = self._executor
        self._generation += 1
        self._executor = self._spawn()
        self.metrics.worker_restarts += 1
        if broken is not None:
            broken.shutdown(wait=False)

    # ------------------------------------------------------------------
    async def run(self, fn: Callable, *args):
        """Execute ``fn(*args)`` in a worker, riding out worker deaths."""
        attempts = 0
        while True:
            if self._closed:
                raise WorkerPoolBroken("worker pool is shut down")
            generation = self._generation
            try:
                future = self._executor.submit(fn, *args)
            except (BrokenProcessPool, RuntimeError):
                # Submission itself can find the pool already broken (a
                # worker died while the pool was idle).
                self._respawn(generation)
                attempts += 1
                if attempts > self.max_retries:
                    raise WorkerPoolBroken(
                        f"worker pool broken at submission after "
                        f"{attempts} attempt(s)"
                    ) from None
                self.metrics.worker_retries += 1
                continue
            try:
                return await asyncio.wrap_future(future)
            except BrokenProcessPool:
                self._respawn(generation)
                attempts += 1
                if attempts > self.max_retries:
                    raise WorkerPoolBroken(
                        f"job kept landing on dying workers "
                        f"({attempts} attempt(s)); giving up"
                    ) from None
                self.metrics.worker_retries += 1

    # ------------------------------------------------------------------
    async def prime(self) -> Tuple[int, ...]:
        """Start worker processes eagerly; returns the pids that answered.

        Best-effort: with idle-worker reuse a single process may serve
        every priming task, so the tuple's length is a lower bound on the
        live worker count.  ``/healthz`` reports the authoritative set via
        :meth:`worker_pids`.
        """
        pids = await asyncio.gather(
            *(self.run(_worker_pid) for _ in range(self.workers)),
            return_exceptions=True,
        )
        return tuple(sorted({p for p in pids if isinstance(p, int)}))

    def worker_pids(self) -> Tuple[int, ...]:
        """Live worker pids of the current executor generation."""
        if self._executor is None:
            return ()
        processes = getattr(self._executor, "_processes", None) or {}
        return tuple(sorted(processes))

    @property
    def generation(self) -> int:
        return self._generation

    def shutdown(self) -> None:
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
