"""Evaluation-as-a-service: an asyncio job server over the parallel engine.

``repro serve`` turns the one-shot evaluation layer (``run_suite`` /
``evaluate_designs``, PR 1's process fan-out + content-hashed result
cache) into a long-lived HTTP service: clients POST declarative job specs,
the server normalizes each spec to the *same* cache key the CLI sweeps
use, serves warm hits in O(ms) without touching a worker, coalesces
identical in-flight requests onto one execution, sheds load past a
high-water mark with 429 + ``Retry-After``, and executes cold jobs on a
``ProcessPoolExecutor`` pool that survives worker death (respawn +
bounded requeue).  Stdlib only — asyncio, a ~40-line HTTP/1.1 reader, and
JSON bodies.

Modules
-------
- :mod:`repro.service.protocol` — job-spec schema, validation, and the
  normalization into :class:`~repro.eval.parallel.EvalJob` + cache key.
- :mod:`repro.service.metrics` — counters and log2 latency histograms
  behind ``GET /metrics`` (telemetry-package counter idiom).
- :mod:`repro.service.pool` — the respawning worker pool.
- :mod:`repro.service.queue` — admission: warm hit / coalesce / shed /
  enqueue, plus the dispatcher tasks and graceful drain.
- :mod:`repro.service.server` — the HTTP front-end and lifecycle
  (``serve``, SIGTERM drain).
- :mod:`repro.service.client` — the stdlib asyncio client the CLI, the
  load generator, and the tests share.

See ``docs/service.md`` for the schema, endpoint catalog, metrics
reference, and deployment notes.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.pool import WorkerPool, WorkerPoolBroken
from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    parse_job_spec,
    parse_jobs_body,
)
from repro.service.queue import JobTable, QueueFull, ServiceDraining
from repro.service.server import EvalService, ServiceConfig, serve

__all__ = [
    "EvalService",
    "JobSpec",
    "JobTable",
    "LatencyHistogram",
    "ProtocolError",
    "QueueFull",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceMetrics",
    "WorkerPool",
    "WorkerPoolBroken",
    "parse_job_spec",
    "parse_jobs_body",
    "serve",
]
