"""The asyncio HTTP server: ``repro serve``.

A deliberately minimal HTTP/1.1 implementation over
``asyncio.start_server`` — request line, headers, ``Content-Length`` body,
JSON in and out, ``Connection: close`` per request — because the stdlib
has no async HTTP server and the service must not grow dependencies.
This is enough for every client we ship (the ``repro submit`` CLI, the
load generator, curl) and keeps the parser ~40 lines; it is not a general
web server (no chunked encoding, no keep-alive, no TLS — deployment notes
in docs/service.md cover fronting it with a real proxy).

Endpoints
---------
- ``POST /jobs``         submit one spec or ``{"jobs": [...]}`` (batch).
- ``GET /jobs/<id>``     job status/result; ``?wait=1[&timeout=S]``
  long-polls until the job is terminal, so clients need no sleep loops.
- ``GET /healthz``       liveness: status, backlog, worker pids, uptime.
- ``GET /metrics``       the full :class:`ServiceMetrics` snapshot.

Lifecycle: ``serve()`` installs SIGTERM/SIGINT handlers that trigger a
graceful drain — stop admitting (503), run the backlog dry, complete
every open long-poll, then return.  CI's service-smoke job asserts this
path: SIGTERM must exit 0 with no job abandoned.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.eval.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WorkerPool
from repro.service.protocol import ProtocolError, parse_jobs_body
from repro.service.queue import JobTable, QueueFull, ServiceDraining

#: Refuse request bodies beyond this (a job batch is a few KiB).
MAX_BODY_BYTES = 4 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune (defaults match the CLI)."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    cache_dir: Optional[str] = None
    high_water: int = 64
    max_retries: int = 2
    #: Written once the socket is bound (the actual port, for ``port=0``).
    port_file: Optional[str] = None
    quiet: bool = False


class HttpError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str, headers: Optional[Dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; None when the client closed without sending."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def _encode_response(
    status: int, payload: Any, extra_headers: Optional[Dict] = None
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode()
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class EvalService:
    """The assembled service: pool + job table + HTTP front-end.

    ``run_job`` overrides the execution step (an async callable taking an
    :class:`~repro.eval.parallel.EvalJob`); when given, no worker pool is
    spawned at all — the tests use this to drive the full HTTP surface
    deterministically without real processes.
    """

    def __init__(
        self,
        config: ServiceConfig,
        cache: Optional[ResultCache] = None,
        run_job=None,
    ):
        self.config = config
        self.metrics = ServiceMetrics()
        self.pool: Optional[WorkerPool] = None
        if run_job is None:
            self.pool = WorkerPool(
                workers=config.workers,
                max_retries=config.max_retries,
                metrics=self.metrics,
            )
        if cache is None and config.cache_dir is not None:
            cache = ResultCache(config.cache_dir)
        self.cache = cache
        self.table = JobTable(
            pool=self.pool,
            cache=cache,
            metrics=self.metrics,
            high_water=config.high_water,
            run_job=run_job,
        )
        self.started_mono = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Dispatch one request; returns (status, payload, headers)."""
        self.metrics.requests += 1
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)

        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), {}
        if path == "/metrics" and method == "GET":
            return 200, self._metrics(), {}
        if path == "/jobs" and method == "POST":
            return await self._post_jobs(body)
        if path.startswith("/jobs/") and method == "GET":
            return await self._get_job(path[len("/jobs/") :], query)
        if path in ("/jobs", "/healthz", "/metrics") or path.startswith("/jobs/"):
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no such endpoint: {path}")

    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.table.draining else "ok",
            "backlog": self.table.backlog,
            "high_water": self.table.high_water,
            "workers": self.pool.workers if self.pool is not None else 0,
            "worker_pids": (
                list(self.pool.worker_pids()) if self.pool is not None else []
            ),
            "worker_generation": (
                self.pool.generation if self.pool is not None else 0
            ),
            "uptime_seconds": round(time.monotonic() - self.started_mono, 3),
        }

    def _metrics(self) -> Dict[str, Any]:
        payload = self.metrics.snapshot()
        payload["queue"] = {
            "depth": self.table.backlog,
            "high_water": self.table.high_water,
        }
        payload["workers"] = {
            "count": self.pool.workers if self.pool is not None else 0,
            "pids": (
                list(self.pool.worker_pids()) if self.pool is not None else []
            ),
            "generation": self.pool.generation if self.pool is not None else 0,
        }
        payload["cache"] = {
            "enabled": self.cache is not None,
            "entries": len(self.cache) if self.cache is not None else 0,
        }
        return payload

    async def _post_jobs(self, body: bytes) -> Tuple[int, Any, Dict[str, str]]:
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.metrics.jobs_rejected += 1
            raise HttpError(400, f"request body is not JSON: {error}") from None
        try:
            specs = parse_jobs_body(payload)
        except ProtocolError as error:
            self.metrics.jobs_rejected += 1
            raise HttpError(400, str(error)) from None

        batch = "jobs" in payload if isinstance(payload, dict) else False
        views = []
        shed = None
        for spec in specs:
            try:
                job = self.table.submit(spec)
            except ProtocolError as error:
                self.metrics.jobs_rejected += 1
                raise HttpError(400, str(error)) from None
            except ServiceDraining as error:
                raise HttpError(503, str(error)) from None
            except QueueFull as error:
                shed = error
                views.append(
                    {
                        "state": "shed",
                        "error": str(error),
                        "retry_after_seconds": error.retry_after,
                        "spec": spec.to_payload(),
                    }
                )
                continue
            views.append(job.view(self.table.backlog).to_payload())

        accepted = sum(1 for v in views if v.get("state") != "shed")
        headers: Dict[str, str] = {}
        if shed is not None and accepted == 0:
            # Nothing was admitted: make the whole response a 429 so dumb
            # clients (curl -f, Retry-After-aware proxies) do the right
            # thing without parsing the body.
            headers["Retry-After"] = str(int(shed.retry_after + 0.5) or 1)
            if not batch:
                raise HttpError(429, str(shed), headers)
            return 429, {"jobs": views, "accepted": 0}, headers
        if not batch:
            return 200, views[0], headers
        return 200, {"jobs": views, "accepted": accepted}, headers

    async def _get_job(
        self, job_id: str, query: Dict[str, list]
    ) -> Tuple[int, Any, Dict[str, str]]:
        job = self.table.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        if query.get("wait", ["0"])[-1] not in ("", "0", "false"):
            timeout_text = query.get("timeout", ["30"])[-1]
            try:
                timeout = min(max(float(timeout_text), 0.0), 300.0)
            except ValueError:
                raise HttpError(400, f"bad timeout: {timeout_text!r}") from None
            await job.wait(timeout)
        return 200, job.view(self.table.backlog).to_payload(), {}

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                method, target, _headers, body = request
                status, payload, headers = await self.handle(method, target, body)
            except HttpError as error:
                status, payload, headers = (
                    error.status,
                    {"error": error.message},
                    error.headers,
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as error:  # pragma: no cover - defense in depth
                status, payload, headers = (
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                    {},
                )
            try:
                writer.write(_encode_response(status, payload, headers))
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        self._shutdown.set()

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(message, flush=True)

    async def serve(self) -> int:
        """Run until SIGTERM/SIGINT (or request_shutdown), then drain."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

        self.table.start()
        pids = await self.pool.prime() if self.pool is not None else ()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            Path(self.config.port_file).write_text(f"{port}\n")
        workers = self.pool.workers if self.pool is not None else 0
        self._log(
            f"repro service listening on http://{self.config.host}:{port} "
            f"(workers={workers} pids={sorted(pids)} "
            f"cache={'on' if self.cache is not None else 'off'} "
            f"high_water={self.table.high_water})"
        )

        await self._shutdown.wait()
        self._log("SIGTERM/shutdown: draining ...")
        self._server.close()
        await self._server.wait_closed()
        drained = await self.table.drain()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        if self.pool is not None:
            self.pool.shutdown()
        self._log(
            f"drain complete: {drained} in-flight job(s) finished, "
            f"{self.metrics.jobs_completed} total completed, exiting"
        )
        return 0


async def serve(config: ServiceConfig) -> int:
    """Entry point for ``repro serve``."""
    return await EvalService(config).serve()
