"""The job table: admission, dedup, load shedding, and dispatch.

This is the heart of the service.  :meth:`JobTable.submit` admits one
validated :class:`~repro.service.protocol.JobSpec` and decides, in one
synchronous (no-await) block so the decision is atomic with respect to the
event loop, which of four paths it takes:

1. **Warm cache hit** — the spec normalizes to a cache key the result
   cache already holds: the job completes immediately without touching a
   worker.  This is the O(ms) "millions of users" path.
2. **Coalesce** — an identical job (same cache key) is already queued or
   running: the new job becomes a *follower* of that leader, completes
   when the leader does, and never executes.  Duplicate in-flight
   requests cost one execution total.
3. **Shed** — the backlog (queued + running leaders) is at the high-water
   mark: the submission is refused with :class:`QueueFull` (the server
   turns it into 429 + ``Retry-After``).  Followers and cache hits are
   never shed — they consume no worker.
4. **Enqueue** — a cold, novel job joins the dispatch queue; one of the
   dispatcher tasks (one per pool worker) will execute it via the
   respawning :class:`~repro.service.pool.WorkerPool` and write the result
   back to the cache, completing the leader and every follower at once.

Spec normalization (building the predictor + workload to fingerprint
them) is memoized on the spec's value, so repeat submissions — the whole
point of a long-lived service — skip straight to the key lookup.

The execution step is injectable (``run_job``), so tests drive the
admission/coalescing/shedding machinery deterministically with gated
futures instead of real processes.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.eval.cache import ResultCache
from repro.eval.metrics import RunResult
from repro.eval.parallel import EvalJob, _execute_job
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WorkerPool
from repro.service.protocol import (
    JobSpec,
    JobView,
    PreparedJob,
    result_view,
)

#: ``run_job`` signature: executes one EvalJob somewhere, returns its result.
JobRunner = Callable[[EvalJob], Awaitable[RunResult]]


class QueueFull(RuntimeError):
    """Backlog at the high-water mark; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, high_water: int, retry_after: float):
        super().__init__(
            f"job queue at high-water mark ({depth}/{high_water})"
        )
        self.depth = depth
        self.high_water = high_water
        self.retry_after = retry_after


class ServiceDraining(RuntimeError):
    """The server received SIGTERM and no longer admits jobs (HTTP 503)."""


class Job:
    """One submitted job's full lifecycle state."""

    __slots__ = (
        "id",
        "prepared",
        "state",
        "cache_hit",
        "coalesced",
        "attempts",
        "result",
        "error",
        "followers",
        "submitted_at",
        "submitted_mono",
        "finished_mono",
        "done",
    )

    def __init__(self, job_id: str, prepared: PreparedJob):
        self.id = job_id
        self.prepared = prepared
        self.state = "queued"
        self.cache_hit = False
        self.coalesced = False
        self.attempts = 0
        self.result: Optional[RunResult] = None
        self.error: Optional[str] = None
        self.followers: List["Job"] = []
        self.submitted_at = time.time()
        self.submitted_mono = time.monotonic()
        self.finished_mono: Optional[float] = None
        self.done = asyncio.Event()

    @property
    def spec(self) -> JobSpec:
        return self.prepared.spec

    @property
    def cache_key(self) -> str:
        return self.prepared.cache_key

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.finished_mono is None:
            return None
        return self.finished_mono - self.submitted_mono

    async def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (long-poll)."""
        if timeout is None:
            await self.done.wait()
            return True
        try:
            await asyncio.wait_for(asyncio.shield(self.done.wait()), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def view(self, queue_depth: int = 0) -> JobView:
        return JobView(
            id=self.id,
            state=self.state,
            spec=self.spec,
            cache_hit=self.cache_hit,
            coalesced=self.coalesced,
            attempts=self.attempts,
            error=self.error,
            result=result_view(self.result) if self.result is not None else None,
            submitted_at=self.submitted_at,
            latency_seconds=self.latency_seconds,
            queue_depth=queue_depth,
        )


class JobTable:
    """Admission control + dispatch over a :class:`WorkerPool`.

    Parameters
    ----------
    pool:
        The respawning worker pool cold jobs execute on.
    cache:
        Optional :class:`ResultCache` consulted before any work is
        scheduled and written back after every successful execution.
    metrics:
        Shared :class:`ServiceMetrics` (the pool should use the same one).
    high_water:
        Backlog bound: queued + running leaders above which submissions
        are shed with :class:`QueueFull`.
    run_job:
        Override for the execution step (tests); defaults to running
        ``_execute_job`` on the pool.
    max_jobs:
        Completed-job history bound; the oldest terminal jobs are evicted
        from the id table past this point so a long-lived server's memory
        stays flat.
    """

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        cache: Optional[ResultCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        high_water: int = 64,
        run_job: Optional[JobRunner] = None,
        max_jobs: int = 4096,
    ):
        self.pool = pool
        self.cache = cache
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.high_water = high_water
        self.max_jobs = max_jobs
        self._run_job = run_job if run_job is not None else self._run_on_pool
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._prepared: Dict[Tuple, PreparedJob] = {}
        self._queue: "asyncio.Queue[Optional[Job]]" = asyncio.Queue()
        self._dispatchers: List[asyncio.Task] = []
        self._next_id = 0
        self.backlog = 0
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, dispatchers: Optional[int] = None) -> None:
        """Spawn the dispatcher tasks (call from a running event loop)."""
        if self._dispatchers:
            raise RuntimeError("JobTable already started")
        count = dispatchers or (self.pool.workers if self.pool else 1)
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{i}")
            for i in range(count)
        ]

    async def drain(self) -> int:
        """Stop admitting, run the backlog dry, stop dispatchers.

        Returns the number of jobs that were still in flight when the
        drain began (all of them complete before this returns).
        """
        self.draining = True
        outstanding = [job for job in self._inflight.values() if not job.done.is_set()]
        for job in outstanding:
            await job.done.wait()
        for _ in self._dispatchers:
            self._queue.put_nowait(None)
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        return len(outstanding)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _prepare(self, spec: JobSpec) -> PreparedJob:
        identity = spec.normalized()
        prepared = self._prepared.get(identity)
        if prepared is None:
            prepared = spec.prepare()
            self._prepared[identity] = prepared
        return prepared

    def submit(self, spec: JobSpec) -> Job:
        """Admit one spec (see the module docstring for the four paths)."""
        if self.draining:
            raise ServiceDraining("server is draining; not accepting jobs")
        prepared = self._prepare(spec)
        self._next_id += 1
        job = Job(f"job-{self._next_id:06d}", prepared)
        self.metrics.jobs_submitted += 1

        if self.cache is not None:
            cached = self.cache.get(job.cache_key)
            if cached is not None:
                self.metrics.cache_hits += 1
                self._register(job)
                self._complete(job, result=cached, cache_hit=True)
                return job
        self.metrics.cache_misses += 1

        leader = self._inflight.get(job.cache_key)
        if leader is not None and not leader.done.is_set():
            job.coalesced = True
            leader.followers.append(job)
            self.metrics.dedup_coalesced += 1
            self._register(job)
            return job

        if self.backlog >= self.high_water:
            self.metrics.jobs_shed += 1
            raise QueueFull(self.backlog, self.high_water, self._retry_after())

        self._inflight[job.cache_key] = job
        self.backlog += 1
        self._register(job)
        self._queue.put_nowait(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        if len(self._jobs) > self.max_jobs:
            for job_id in list(self._jobs):
                if len(self._jobs) <= self.max_jobs:
                    break
                if self._jobs[job_id].done.is_set():
                    del self._jobs[job_id]

    def _retry_after(self) -> float:
        """Seconds a shed client should wait: backlog x mean latency / workers."""
        means = [
            h.total / h.count for h in self.metrics.latency.values() if h.count
        ]
        mean = max(means) if means else 1.0
        workers = self.pool.workers if self.pool is not None else 1
        return max(1.0, round(self.backlog * mean / workers, 1))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _run_on_pool(self, eval_job: EvalJob) -> RunResult:
        return await self.pool.run(_execute_job, eval_job)

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            await self._execute(job)

    async def _execute(self, job: Job) -> None:
        job.state = "running"
        for follower in job.followers:
            follower.state = "running"
        job.attempts += 1
        self.metrics.executions += 1
        try:
            result = await self._run_job(job.prepared.eval_job)
        except Exception as error:
            self._complete(job, error=f"{type(error).__name__}: {error}")
            return
        if self.cache is not None:
            try:
                self.cache.put(job.cache_key, result)
            except OSError:
                pass  # a full disk must not fail the job itself
        self._complete(job, result=result)

    # ------------------------------------------------------------------
    def _complete(
        self,
        job: Job,
        result: Optional[RunResult] = None,
        error: Optional[str] = None,
        cache_hit: bool = False,
    ) -> None:
        """Terminal transition for a job and all its followers (atomic)."""
        now = time.monotonic()
        was_inflight = self._inflight.get(job.cache_key) is job
        if was_inflight:
            del self._inflight[job.cache_key]
            self.backlog -= 1
        for member in (job, *job.followers):
            member.result = result
            member.error = error
            member.cache_hit = cache_hit
            member.attempts = max(member.attempts, job.attempts)
            member.state = "done" if error is None else "failed"
            member.finished_mono = now
            if error is None:
                self.metrics.jobs_completed += 1
            else:
                self.metrics.jobs_failed += 1
            latency = member.latency_seconds or 0.0
            if cache_hit:
                self.metrics.cache_hit_latency.record(latency)
            elif result is not None or error is not None:
                self.metrics.record_latency(member.spec.backend, latency)
            member.done.set()
