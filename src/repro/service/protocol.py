"""Wire types for the evaluation service: job specs, states, and views.

A job spec is the JSON body a client POSTs to ``/jobs`` — the declarative
description of one (predictor, workload, backend, limits) evaluation.  This
module owns its schema: :func:`parse_job_spec` validates a decoded JSON
payload into a :class:`JobSpec`, and :meth:`JobSpec.prepare` normalizes the
spec into the *existing* evaluation vocabulary — an
:class:`~repro.eval.parallel.EvalJob` plus the deterministic result-cache
key from :func:`~repro.eval.parallel.job_cache_key`.  Everything downstream
(dedup of in-flight duplicates, warm-cache hits, worker execution) keys off
that normalization, so an HTTP submission and a CLI ``sweep --cache`` run
of the same cell share one cache entry.

Schema (``docs/service.md`` has the full catalog)::

    {
      "predictor": "tage_l" | "<topology string>",   # required
      "workload":  "<registered name>" | "x.npz",    # required
      "backend":   "cycle" | "trace" | "replay",     # default "cycle"
      "scale":     0.5,                              # workload scale
      "max_instructions": 200000,                    # optional bound
      "max_cycles": null,                            # optional bound
      "sfb":       false,                            # CoreConfig.sfb_enabled
      "telemetry": false                             # attach a collector
    }

Validation failures raise :class:`ProtocolError` with a client-facing
message (the server turns it into a 400); nothing in this module touches
the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import presets
from repro.core import compose
from repro.core.composer import ComposedPredictor
from repro.eval.cache import result_to_payload
from repro.eval.metrics import RunResult
from repro.eval.parallel import EvalJob, job_cache_key
from repro.frontend.config import CoreConfig

#: Job lifecycle states, in order.  ``queued`` covers both jobs waiting for
#: a worker and followers coalesced onto an identical in-flight leader.
JOB_STATES = ("queued", "running", "done", "failed")

_SPEC_FIELDS = frozenset(
    {
        "predictor",
        "workload",
        "backend",
        "scale",
        "max_instructions",
        "max_cycles",
        "sfb",
        "telemetry",
    }
)


class ProtocolError(ValueError):
    """A malformed or unsatisfiable job spec (client error, HTTP 400)."""


@dataclass(frozen=True)
class TopologyFactory:
    """Picklable zero-argument predictor factory for a raw topology string.

    Jobs ship to worker processes, so a non-preset predictor spec must
    survive pickling — a closure over :func:`repro.core.compose` would
    not.  Mirrors the fuzzer's factory without dragging the fuzz package
    into the service import graph.
    """

    spec: str

    def __call__(self) -> ComposedPredictor:
        return compose(self.spec)


@dataclass(frozen=True)
class JobSpec:
    """One validated evaluation request (still unnormalized — see prepare)."""

    predictor: str
    workload: str
    backend: str = "cycle"
    scale: float = 0.5
    max_instructions: Optional[int] = None
    max_cycles: Optional[int] = None
    sfb: bool = False
    telemetry: bool = False

    def normalized(self) -> Tuple:
        """Hashable identity used to memoize spec -> (EvalJob, cache key).

        Two specs with equal tuples describe byte-identical runs: every
        field below feeds :meth:`prepare` deterministically (workload
        builders are pure functions of (name, scale)).
        """
        return (
            self.predictor,
            self.workload,
            self.backend,
            self.scale,
            self.max_instructions,
            self.max_cycles,
            self.sfb,
            self.telemetry,
        )

    def prepare(self) -> "PreparedJob":
        """Normalize to the eval layer: build the EvalJob and its cache key.

        Raises :class:`ProtocolError` for anything the eval layer would
        reject later (unknown workload, unparsable topology, a stored
        trace handed to an instruction-executing backend), so clients get
        a 400 at submission time instead of a failed job.
        """
        from repro.backends import backend_names
        from repro.workloads.registry import resolve_workload

        if self.backend not in backend_names():
            raise ProtocolError(
                f"unknown backend {self.backend!r}; "
                f"have {sorted(backend_names())}"
            )

        key = self.predictor.lower().replace("-", "_")
        spec: Any
        if key in presets.PRESET_NAMES:
            system = key
            spec = key
        else:
            system = self.predictor
            try:
                compose(self.predictor)
            except Exception as error:
                raise ProtocolError(
                    f"unparsable topology {self.predictor!r}: {error}"
                ) from None
            spec = TopologyFactory(self.predictor)

        if self.workload.endswith(".npz") and not Path(self.workload).is_file():
            raise ProtocolError(f"stored trace not found: {self.workload}")
        try:
            source = resolve_workload(self.workload, self.scale)
        except KeyError as error:
            raise ProtocolError(str(error)) from None
        if source.program is None and self.backend != "replay":
            raise ProtocolError(
                f"workload {self.workload!r} is a stored trace; only the "
                f"replay backend accepts .npz workloads "
                f"(got backend={self.backend!r})"
            )

        job = EvalJob(
            system=system,
            spec=spec,
            workload=source.name,
            program=source.program,
            core_config=CoreConfig(sfb_enabled=self.sfb, telemetry=self.telemetry),
            max_instructions=self.max_instructions,
            max_cycles=self.max_cycles,
            backend=self.backend,
            trace_path=(
                str(source.trace_path) if source.trace_path is not None else None
            ),
        )
        return PreparedJob(spec=self, eval_job=job, cache_key=job_cache_key(job))

    def to_payload(self) -> Dict[str, Any]:
        return {
            "predictor": self.predictor,
            "workload": self.workload,
            "backend": self.backend,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "max_cycles": self.max_cycles,
            "sfb": self.sfb,
            "telemetry": self.telemetry,
        }


@dataclass(frozen=True)
class PreparedJob:
    """A spec normalized into the eval layer's terms (memoizable)."""

    spec: JobSpec
    eval_job: EvalJob
    cache_key: str


def _require(payload: Mapping[str, Any], name: str) -> Any:
    if name not in payload or payload[name] is None:
        raise ProtocolError(f"job spec missing required field {name!r}")
    return payload[name]


def _typed(payload: Mapping[str, Any], name: str, kind, default):
    value = payload.get(name, default)
    if value is None:
        return None
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool) != (kind is bool):
        raise ProtocolError(
            f"job spec field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate one decoded JSON object into a :class:`JobSpec`."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"job spec must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _SPEC_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown job spec field(s) {unknown}; have {sorted(_SPEC_FIELDS)}"
        )
    predictor = _require(payload, "predictor")
    workload = _require(payload, "workload")
    if not isinstance(predictor, str) or not isinstance(workload, str):
        raise ProtocolError("'predictor' and 'workload' must be strings")
    spec = JobSpec(
        predictor=predictor,
        workload=workload,
        backend=_typed(payload, "backend", str, "cycle"),
        scale=_typed(payload, "scale", float, 0.5),
        max_instructions=_typed(payload, "max_instructions", int, None),
        max_cycles=_typed(payload, "max_cycles", int, None),
        sfb=_typed(payload, "sfb", bool, False),
        telemetry=_typed(payload, "telemetry", bool, False),
    )
    for name in ("max_instructions", "max_cycles"):
        bound = getattr(spec, name)
        if bound is not None and bound <= 0:
            raise ProtocolError(f"job spec field {name!r} must be positive")
    if spec.scale is None or spec.scale <= 0:
        raise ProtocolError("job spec field 'scale' must be positive")
    return spec


def parse_jobs_body(payload: Any) -> Tuple[JobSpec, ...]:
    """Parse a ``POST /jobs`` body: one spec object or ``{"jobs": [...]}``."""
    if isinstance(payload, Mapping) and "jobs" in payload:
        jobs = payload["jobs"]
        if not isinstance(jobs, list) or not jobs:
            raise ProtocolError("'jobs' must be a non-empty JSON array")
        extra = sorted(set(payload) - {"jobs"})
        if extra:
            raise ProtocolError(f"unknown batch field(s) {extra}")
        return tuple(parse_job_spec(item) for item in jobs)
    return (parse_job_spec(payload),)


# ----------------------------------------------------------------------
# Result views
# ----------------------------------------------------------------------
#: RunResult fields echoed in the compact wire view (stats and telemetry
#: payloads stay server-side; fetch the cache entry for the full record).
_RESULT_FIELDS = (
    "system",
    "workload",
    "backend",
    "instructions",
    "cycles",
    "ipc",
    "mpki",
    "total_mpki",
    "branch_accuracy",
    "branches",
    "branch_mispredicts",
    "target_mispredicts",
    "flushes",
)


def result_view(result: RunResult) -> Dict[str, Any]:
    """Compact JSON view of a run result for job-status responses."""
    payload = result_to_payload(result)
    return {name: payload[name] for name in _RESULT_FIELDS}


@dataclass
class JobView:
    """What ``GET /jobs/<id>`` reports (see docs/service.md)."""

    id: str
    state: str
    spec: JobSpec
    cache_hit: bool = False
    coalesced: bool = False
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    submitted_at: float = 0.0
    latency_seconds: Optional[float] = None
    queue_depth: int = 0

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_payload(),
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "queue_depth": self.queue_depth,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        if self.latency_seconds is not None:
            payload["latency_seconds"] = self.latency_seconds
        return payload
