"""Self-contained reproducer artifacts for failing fuzz cases.

A reproducer is one compressed ``.npz`` file that replays a failure with
no other state: topology spec (or preset name), campaign seed, oracle
name, the full minimized program as instruction columns, the recorded
expected/actual mismatch payloads, and — for backend-identity failures —
the captured schema-2 :class:`~repro.workloads.traces.BranchTrace`
columns for forensics.

The *program columns* are authoritative, not the program spec: if the
workload generators later change, the artifact still replays the exact
instruction sequence that failed.  On load, the spec is rebuilt and
compared against the stored columns; only when they differ does the case
fall back to the stored columns (and the loader says so).

``replay_reproducer`` reruns the recorded oracle and classifies the
outcome: ``clean`` (the failure is fixed), ``reproduced`` (the same
mismatch payloads), or ``diverged`` (still failing, but differently).
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.fuzz.generate import (
    TopologyFactory,
    spec_from_payload,
    spec_to_payload,
)
from repro.fuzz.oracles import FuzzCase, Mismatch, run_oracle
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.workloads.traces import BranchTrace

#: Artifact format version (bump on incompatible layout changes).
REPRODUCER_FORMAT = 1

#: Sentinel for "no register / no target" in the int64 program columns.
_NONE = -1


# ----------------------------------------------------------------------
# Program <-> columns
# ----------------------------------------------------------------------
def program_to_arrays(program: Program) -> Dict[str, np.ndarray]:
    """Encode a program as npz-storable columns (opcodes by enum name)."""
    instrs = program.instructions

    def column(get) -> np.ndarray:
        return np.asarray(
            [_NONE if get(i) is None else int(get(i)) for i in instrs],
            dtype=np.int64,
        )

    addrs = sorted(program.data)
    return {
        "prog_ops": np.asarray([i.op.name for i in instrs]),
        "prog_rd": column(lambda i: i.rd),
        "prog_rs1": column(lambda i: i.rs1),
        "prog_rs2": column(lambda i: i.rs2),
        "prog_imm": np.asarray([i.imm for i in instrs], dtype=np.int64),
        "prog_target": column(lambda i: i.target),
        "prog_data_addrs": np.asarray(addrs, dtype=np.int64),
        "prog_data_values": np.asarray(
            [program.data[a] for a in addrs], dtype=np.int64
        ),
    }


def program_from_arrays(
    data: Any, name: str, entry: int
) -> Program:
    """Decode :func:`program_to_arrays` columns back into a Program."""

    def opt(value: int) -> Optional[int]:
        return None if value == _NONE else int(value)

    instructions = [
        Instruction(
            Opcode[str(op)],
            rd=opt(rd),
            rs1=opt(rs1),
            rs2=opt(rs2),
            imm=int(imm),
            target=opt(target),
        )
        for op, rd, rs1, rs2, imm, target in zip(
            data["prog_ops"],
            data["prog_rd"],
            data["prog_rs1"],
            data["prog_rs2"],
            data["prog_imm"],
            data["prog_target"],
        )
    ]
    memory = {
        int(a): int(v)
        for a, v in zip(data["prog_data_addrs"], data["prog_data_values"])
    }
    return Program(instructions, memory, name=name, entry=entry)


def _programs_equal(a: Program, b: Program) -> bool:
    return (
        a.instructions == b.instructions
        and a.data == b.data
        and a.entry == b.entry
    )


# ----------------------------------------------------------------------
# Save / load
# ----------------------------------------------------------------------
def save_reproducer(
    path: Union[str, Path],
    case: FuzzCase,
    oracle: str,
    mismatches: List[Mismatch],
    trace: Optional[BranchTrace] = None,
) -> Path:
    """Write one self-contained reproducer artifact and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    program = case.program()
    meta = {
        "format": REPRODUCER_FORMAT,
        "oracle": oracle,
        "case_id": case.case_id,
        "seed": case.seed,
        "label": case.label,
        "topology": case.topology,
        "predictor": {
            "kind": "preset" if case.is_preset else "topology",
            "spec": case.predictor_spec
            if case.is_preset
            else case.topology,
            "library_params": [
                [name, value]
                for name, value in getattr(
                    case.predictor_spec, "library_params", ()
                )
            ],
        },
        "max_instructions": case.max_instructions,
        "program_spec": spec_to_payload(case.program_spec),
        "program_name": program.name,
        "program_entry": program.entry,
        "mismatches": [m.payload() for m in mismatches],
    }
    payload: Dict[str, Any] = {"meta": json.dumps(meta, sort_keys=True)}
    payload.update(program_to_arrays(program))
    if trace is not None and trace.replayable:
        payload.update(
            trace_pcs=trace.pcs,
            trace_types=trace.types,
            trace_taken=trace.taken,
            trace_targets=trace.targets,
            trace_instruction_count=np.int64(trace.instruction_count),
            trace_entry_pc=np.int64(trace.entry_pc),
            trace_slot_kinds=trace.slot_kinds,
            trace_slot_targets=trace.slot_targets,
        )
    np.savez_compressed(path, **payload)
    return path


@dataclasses.dataclass
class Reproducer:
    """A loaded artifact: the case to rerun plus what it recorded."""

    oracle: str
    case: FuzzCase
    recorded_mismatches: List[Dict[str, Any]]
    trace: Optional[BranchTrace]
    meta: Dict[str, Any]
    #: True when the stored program columns no longer match what the
    #: current generators rebuild from the spec (the columns win).
    generator_drift: bool = False


def load_reproducer(path: Union[str, Path]) -> Reproducer:
    data = np.load(Path(path))
    meta = json.loads(str(data["meta"][()]))
    if meta.get("format") != REPRODUCER_FORMAT:
        raise ValueError(
            f"unsupported reproducer format {meta.get('format')!r} "
            f"(this build reads format {REPRODUCER_FORMAT})"
        )
    program = program_from_arrays(
        data, name=meta["program_name"], entry=int(meta["program_entry"])
    )
    program_spec = spec_from_payload(meta["program_spec"])

    predictor = meta["predictor"]
    spec: Union[str, TopologyFactory]
    if predictor["kind"] == "preset":
        spec = str(predictor["spec"])
    else:
        # Artifacts written before library sizings existed carry none.
        params = tuple(
            (str(name), int(value))
            for name, value in predictor.get("library_params", [])
        )
        spec = TopologyFactory(str(predictor["spec"]), params)

    # The stored columns are authoritative; only fall back to them when the
    # generators no longer reproduce the program bit-for-bit.
    from repro.fuzz.generate import build_program

    try:
        rebuilt = build_program(program_spec)
        drift = not _programs_equal(rebuilt, program)
    except Exception:
        drift = True
    case = FuzzCase(
        case_id=int(meta["case_id"]),
        seed=int(meta["seed"]),
        label=str(meta["label"]),
        predictor_spec=spec,
        topology=str(meta["topology"]),
        program_spec=program_spec,
        max_instructions=int(meta["max_instructions"]),
        program_override=program if drift else None,
    )

    trace = None
    if "trace_pcs" in data.files:
        trace = BranchTrace(
            pcs=data["trace_pcs"],
            types=data["trace_types"],
            taken=data["trace_taken"],
            targets=data["trace_targets"],
            instruction_count=int(data["trace_instruction_count"]),
            entry_pc=int(data["trace_entry_pc"]),
            slot_kinds=data["trace_slot_kinds"],
            slot_targets=data["trace_slot_targets"],
        )
    return Reproducer(
        oracle=str(meta["oracle"]),
        case=case,
        recorded_mismatches=list(meta["mismatches"]),
        trace=trace,
        meta=meta,
        generator_drift=drift,
    )


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ReplayOutcome:
    """Result of rerunning a reproducer's oracle."""

    #: ``clean`` (fixed), ``reproduced`` (same payloads), or ``diverged``.
    status: str
    mismatches: List[Mismatch]
    recorded: List[Dict[str, Any]]
    reproducer: Reproducer

    @property
    def exit_code(self) -> int:
        return {"clean": 0, "reproduced": 1, "diverged": 2}[self.status]


def replay_reproducer(
    path: Union[str, Path],
    scratch: Optional[Path] = None,
    predictor_factory: Optional[Callable[[], Any]] = None,
) -> ReplayOutcome:
    """Rerun a stored failure and classify the outcome.

    ``predictor_factory`` overrides the artifact's predictor — needed when
    the failing component lives outside the standard library (for example
    the injected-bug fixture's private registry).
    """
    repro = load_reproducer(path)
    case = repro.case
    if predictor_factory is not None:
        case = dataclasses.replace(case, predictor_spec=predictor_factory)
    if scratch is None:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            found = run_oracle(repro.oracle, case, Path(tmp))
    else:
        found = run_oracle(repro.oracle, case, Path(scratch))
    if not found:
        status = "clean"
    elif [m.payload() for m in found] == repro.recorded_mismatches:
        status = "reproduced"
    else:
        status = "diverged"
    return ReplayOutcome(
        status=status,
        mismatches=found,
        recorded=repro.recorded_mismatches,
        reproducer=repro,
    )
