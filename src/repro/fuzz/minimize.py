"""Automatic shrinking of failing fuzz cases.

A raw failing case is rarely actionable: it names a four-kernel workload
over thousands of instructions and a deep topology.  This module reduces
it while preserving the failure, with the classic delta-debugging loop
(ddmin: chunk deletion over the kernel-spec list) plus domain-aware
shrinks:

1. drop whole kernels from the workload (``ddmin``);
2. reduce the driver loop's outer iteration count;
3. shrink the run's instruction budget;
4. shrink each kernel's size parameters toward their domain floor;
5. simplify the topology — replace an override with its subordinate chain
   or its head alone, replace an arbitration with one of its children —
   until no simpler topology still fails.

Every candidate is a *well-formed* case (specs, never raw instruction
edits), so the predicate is simply "does the recorded oracle still report
a mismatch".  The shrink is deterministic and bounded by ``max_evals``
oracle executions.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, List, Sequence, TypeVar

from repro.fuzz.generate import (
    TopologyFactory,
    param_floor,
    shrink_param,
)
from repro.fuzz.oracles import FuzzCase, Mismatch, run_oracle

T = TypeVar("T")

#: The smallest instruction budget the minimizer will try.
MIN_INSTRUCTIONS = 256


def ddmin(
    items: Sequence[T], predicate: Callable[[List[T]], bool]
) -> List[T]:
    """Classic delta debugging: a 1-minimal failing subset of ``items``.

    ``predicate(subset)`` must return True when the failure reproduces on
    ``subset``.  The caller guarantees ``predicate(items)`` holds.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate and predicate(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(items))
    return items


def topology_candidates(spec: str) -> List[str]:
    """Strictly simpler topology specs, smallest first.

    Candidates come from structural rewrites of the parsed tree: an
    override collapses to its subordinate chain or to its head alone; an
    arbitration collapses to any one child; rewrites recurse into
    subtrees.  Candidates only need to *compose* — analysis warnings are
    irrelevant to a minimizer chasing a dynamic divergence.
    """
    from repro.components.library import standard_library
    from repro.core.parser import parse_topology
    from repro.core.topology import Arbitrate, Leaf, Override

    try:
        root = parse_topology(spec, standard_library())
    except Exception:
        return []

    def variants(node):
        if isinstance(node, Override):
            yield node.lo
            yield Leaf(node.hi)
            for alt in variants(node.lo):
                yield Override(node.hi, alt)
        elif isinstance(node, Arbitrate):
            for child in node.children:
                yield child
            for index, child in enumerate(node.children):
                for alt in variants(child):
                    children = list(node.children)
                    children[index] = alt
                    yield Arbitrate(node.selector, children)

    seen = set()
    out: List[str] = []
    for candidate in sorted((v.describe() for v in variants(root)), key=len):
        if candidate not in seen and candidate != spec:
            seen.add(candidate)
            out.append(candidate)
    return out


@dataclasses.dataclass
class MinimizationResult:
    """The shrunk case plus the mismatches it still produces."""

    case: FuzzCase
    mismatches: List[Mismatch]
    evals: int


def minimize_case(
    case: FuzzCase,
    oracle_name: str,
    scratch: Path,
    max_evals: int = 200,
) -> MinimizationResult:
    """Shrink ``case`` while ``oracle_name`` still reports a mismatch."""
    evals = 0
    last_mismatches: List[Mismatch] = []

    def fails(candidate: FuzzCase) -> bool:
        nonlocal evals, last_mismatches
        if evals >= max_evals:
            return False
        evals += 1
        found = run_oracle(oracle_name, candidate, scratch)
        if found:
            last_mismatches = found
        return bool(found)

    if not fails(case):
        # Flaky or budget-zero: report the case unshrunk.
        return MinimizationResult(case, last_mismatches or [], evals)
    current = case
    baseline = last_mismatches

    def with_kernels(kernels: Sequence) -> FuzzCase:
        spec = dataclasses.replace(current.program_spec, kernels=tuple(kernels))
        return dataclasses.replace(current, program_spec=spec)

    # 1. Drop whole kernels (delta debugging by chunk deletion).
    kernels = ddmin(
        list(current.program_spec.kernels),
        lambda subset: fails(with_kernels(subset)),
    )
    current = with_kernels(kernels)

    # 2. Reduce the driver loop's outer iteration count.
    while current.program_spec.outer_iterations > 1:
        outer = current.program_spec.outer_iterations
        for trial in (1, outer // 2):
            if trial >= outer:
                continue
            spec = dataclasses.replace(current.program_spec, outer_iterations=trial)
            candidate = dataclasses.replace(current, program_spec=spec)
            if fails(candidate):
                current = candidate
                break
        else:
            break

    # 3. Shrink the instruction budget.
    while current.max_instructions > MIN_INSTRUCTIONS:
        trial = max(MIN_INSTRUCTIONS, current.max_instructions // 2)
        candidate = dataclasses.replace(current, max_instructions=trial)
        if not fails(candidate):
            break
        current = candidate

    # 4. Shrink each kernel's size parameters toward the domain floor.
    for index, kernel in enumerate(current.program_spec.kernels):
        for param, value in kernel.params:
            floor = param_floor(kernel.kernel, param)
            while value > floor:
                trial_value = max(floor, value // 2)
                kernels = list(current.program_spec.kernels)
                kernels[index] = shrink_param(kernels[index], param, trial_value)
                candidate = with_kernels(kernels)
                if not fails(candidate):
                    break
                current = candidate
                value = trial_value

    # 5. Simplify the topology (random-topology cases only; presets are
    # named designs with their own libraries, not spec strings).  Drawn
    # library sizings are carried through every rewrite; dropping them
    # back to the default sizing is itself a shrink, tried first.
    if not current.is_preset:
        params = getattr(current.predictor_spec, "library_params", ())
        if params:
            candidate = dataclasses.replace(
                current,
                predictor_spec=TopologyFactory(current.topology),
            )
            if fails(candidate):
                current = candidate
                params = ()
        simplified = True
        while simplified:
            simplified = False
            for spec in topology_candidates(current.topology):
                candidate = dataclasses.replace(
                    current,
                    predictor_spec=TopologyFactory(spec, params),
                    topology=spec,
                )
                if fails(candidate):
                    current = candidate
                    simplified = True
                    break

    # Record the mismatches of the final minimal case (re-run so the
    # reproducer stores exactly what this case produces, not a stale
    # intermediate).
    final = run_oracle(oracle_name, current, scratch)
    evals += 1
    if not final:  # pragma: no cover - deterministic oracles cannot flake
        final = baseline
    return MinimizationResult(current, final, evals)
