"""Differential oracles: equivalence contracts a fuzz case must satisfy.

Each oracle runs one generated (predictor, workload) case through two or
more execution paths that the framework guarantees agree exactly, and
reports every disagreement as a :class:`Mismatch`.  The catalog:

``backends``
    Bit-identity of the trace-driven family: the ``trace`` backend
    (interpreter stream) versus a save/load ``replay`` of the captured
    :class:`~repro.workloads.traces.BranchTrace` versus the stream walker
    with the branchless-skip enabled versus the columnar walker driven
    both ways — scalar and through the batch-kernel segment engine
    (``repro.kernels``) — when the composition is eligible.  The
    ``cycle`` backend is deliberately *not* in this oracle: its wrong-path
    predictor pollution makes its mispredict counts differ from the
    trace-driven methodology by design (§II-B, ``docs/backends.md``).
``parallel``
    ``run_suite`` with ``jobs=2`` must reproduce the serial reference run
    payload-for-payload (results, stats, everything).
``cache``
    A result served from the deterministic result cache must equal both
    the run that populated it and a fresh uncached run.
``telemetry``
    Attaching a telemetry collector must not change any measured count, on
    the cycle backend and on replay (where telemetry forces the fallback
    walker — so this doubles as a columnar-versus-fallback check).
``check``
    ``repro check`` on the generated topology must report zero
    error-severity diagnostics (warnings are legal for random designs).
``spec``
    ``repro check --spec`` semantics over the composed predictor: every
    instantiated component — including ones built from fuzz-drawn library
    sizings — must conform to its declarative
    :class:`repro.spec.ComponentSpec` (zero error-severity SPEC
    diagnostics).
``derive``
    For composed components in the spec-derived families (HBIM, the
    two-level variants, GTag), a fresh twin built through
    :mod:`repro.derive` must be bit-identical — prediction and metadata,
    step for step — to the frozen pre-refactor reference implementation
    (:mod:`repro.derive.reference`) on seeded stimulus at the case's
    fuzz-drawn sizing.
``explore``
    The `repro explore` search operators applied to the case's topology
    (at its fuzz-drawn library sizings) must produce children that
    round-trip through ``parse_topology(describe())``, stay check-clean
    (zero error-severity topology diagnostics), and respect the storage
    budget the operator was invoked with — the check-clean-by-construction
    claim the optimizer rests on, fuzzed over the same topology
    distribution the other oracles see.

Any exception inside an oracle is itself a finding (subject ``crash``):
generated inputs must never crash the framework.
"""

from __future__ import annotations

import dataclasses
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro import presets
from repro.backends import RunLimits, get_backend
from repro.backends.packets import drive_stream
from repro.backends.replay import drive_columns, trace_packets, trace_stream
from repro.eval.cache import ResultCache, result_to_payload
from repro.eval.metrics import RunResult
from repro.eval.parallel import EvalJob, ParallelRunner
from repro.eval.runner import run_suite, run_workload
from repro.frontend.config import CoreConfig
from repro.fuzz.generate import ProgramSpec, TopologyFactory, build_program
from repro.kernels.engine import engine_for
from repro.isa.program import Program
from repro.workloads.registry import WorkloadSource
from repro.workloads.traces import capture_trace

#: Predictor spec a case carries: a preset name or a picklable factory.
PredictorSpec = Union[str, TopologyFactory]

#: Instruction budget for the cycle-backend oracles (the cycle core is an
#: order of magnitude slower than the trace-driven walkers, so they run a
#: shorter prefix of the same program).
CYCLE_BUDGET = 1_500


@dataclasses.dataclass(frozen=True)
class Mismatch:
    """One oracle disagreement (or crash) on one case."""

    oracle: str
    subject: str
    expected: Dict[str, Any]
    actual: Dict[str, Any]
    detail: str = ""

    def payload(self) -> Dict[str, Any]:
        """The identity-bearing part (``detail`` may carry tracebacks)."""
        return {
            "oracle": self.oracle,
            "subject": self.subject,
            "expected": self.expected,
            "actual": self.actual,
        }

    def format(self) -> str:
        lines = [
            f"[{self.oracle}] {self.subject}:",
            f"  expected {self.expected}",
            f"  actual   {self.actual}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)


@dataclasses.dataclass
class FuzzCase:
    """One generated (predictor, workload) input to the oracle battery."""

    case_id: int
    seed: int
    label: str
    predictor_spec: PredictorSpec
    topology: str
    program_spec: ProgramSpec
    max_instructions: int = 4_000
    #: Authoritative program columns decoded from a reproducer artifact.
    #: Normally None: the program is rebuilt from ``program_spec``.  Set
    #: only when a stored artifact's columns no longer match what the
    #: generators produce (generator drift after the artifact was saved).
    program_override: Optional[Program] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def is_preset(self) -> bool:
        return isinstance(self.predictor_spec, str)

    def build_predictor(self):
        """A power-on-fresh predictor for this case."""
        if isinstance(self.predictor_spec, str):
            return presets.build(self.predictor_spec)
        return self.predictor_spec()

    def program(self) -> Program:
        if self.program_override is not None:
            return self.program_override
        return build_program(self.program_spec)

    def describe(self) -> str:
        return (
            f"case {self.case_id} [{self.label}] {self.topology} :: "
            f"{self.program_spec.describe()} (<= {self.max_instructions} instrs)"
        )


def run_signature(result: RunResult) -> Dict[str, Any]:
    """The comparable measurement fields of a run."""
    return {
        "instructions": result.instructions,
        "branches": result.branches,
        "branch_mispredicts": result.branch_mispredicts,
        "target_mispredicts": result.target_mispredicts,
        "cycles": result.cycles,
        "flushes": result.flushes,
    }


def _walk_signature(counts) -> Dict[str, Any]:
    return {
        "instructions": counts.instructions,
        "branches": counts.branches,
        "branch_mispredicts": counts.mispredicts,
        "target_mispredicts": 0,
        "cycles": 0,
        "flushes": 0,
    }


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def oracle_backends(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Trace/replay/columnar/stream bit-identity."""
    program = case.program()
    limits = RunLimits(max_instructions=case.max_instructions)
    live = WorkloadSource(name=program.name, program=program)
    reference = get_backend("trace").run(case.build_predictor(), live, limits)
    expected = run_signature(reference)
    mismatches: List[Mismatch] = []

    # Save/load round trip, then the replay backend (columnar fast path
    # when the composition is branchless-inert, fallback walker otherwise).
    trace = capture_trace(program, max_instructions=case.max_instructions)
    npz = scratch / f"case{case.case_id}.npz"
    trace.save(npz)
    stored = WorkloadSource(name=program.name, trace_path=npz)
    replayed = get_backend("replay").run(case.build_predictor(), stored, limits)
    if run_signature(replayed) != expected:
        mismatches.append(
            Mismatch(
                "backends",
                "trace-vs-replay",
                expected,
                run_signature(replayed),
                "stored-trace replay diverged from the trace backend",
            )
        )

    # The shared stream walker with the branchless skip enabled, over the
    # reconstructed record stream (the non-columnar replay path).
    predictor = case.build_predictor()
    walked = drive_stream(
        predictor,
        trace_stream(trace, case.max_instructions),
        trace_packets(trace, predictor.config.fetch_width),
        skip_inert=True,
    )
    if _walk_signature(walked) != expected:
        mismatches.append(
            Mismatch(
                "backends",
                "trace-vs-stream-skip",
                expected,
                _walk_signature(walked),
                "stream walker with branchless skip diverged",
            )
        )

    # The columnar walker both ways: scalar (engine disabled) and with the
    # batch-kernel segment engine, pinned to the reference independently of
    # how the replay backend gates between them.  Only branchless-inert
    # compositions may take the columnar walker at all; the kernel leg
    # additionally needs every component to advertise a columnar kernel.
    if predictor.branchless_inert:
        scalar_pred = case.build_predictor()
        skipped = drive_columns(
            scalar_pred,
            trace,
            trace_packets(trace, scalar_pred.config.fetch_width),
            case.max_instructions,
            engine=None,
        )
        if _walk_signature(skipped) != expected:
            mismatches.append(
                Mismatch(
                    "backends",
                    "trace-vs-columnar-skip",
                    expected,
                    _walk_signature(skipped),
                    "columnar walker (scalar, no kernels) diverged",
                )
            )
        kernel_pred = case.build_predictor()
        engine = engine_for(kernel_pred)
        if engine is not None:
            batched = drive_columns(
                kernel_pred,
                trace,
                trace_packets(trace, kernel_pred.config.fetch_width),
                case.max_instructions,
                engine=engine,
            )
            if _walk_signature(batched) != expected:
                mismatches.append(
                    Mismatch(
                        "backends",
                        "trace-vs-columnar-kernel",
                        expected,
                        _walk_signature(batched),
                        "columnar walker with batch kernels diverged",
                    )
                )
    return mismatches


def oracle_parallel(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Serial ``run_suite`` is the reference; ``jobs=2`` must match it."""
    program = case.program()
    budget = min(case.max_instructions, CYCLE_BUDGET)
    # Two systems make two picklable jobs, so the pool genuinely fans out.
    systems = [(case.label, case.predictor_spec, None), "b2"]
    programs = {program.name: program}
    serial = run_suite(systems, programs, max_instructions=budget, jobs=1)
    fanned = run_suite(systems, programs, max_instructions=budget, jobs=2)
    mismatches: List[Mismatch] = []
    for system, rows in serial.items():
        for workload, result in rows.items():
            expected = result_to_payload(result)
            actual = result_to_payload(fanned[system][workload])
            if actual != expected:
                mismatches.append(
                    Mismatch(
                        "parallel",
                        f"{system}/{workload}",
                        run_signature(result),
                        run_signature(fanned[system][workload]),
                        "jobs=2 result payload differs from the serial run",
                    )
                )
    return mismatches


def oracle_cache(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Cache round trip: computed == cached == fresh uncached."""
    program = case.program()
    budget = min(case.max_instructions, CYCLE_BUDGET)
    job = EvalJob(
        system=case.label,
        spec=case.predictor_spec,
        workload=program.name,
        program=program,
        core_config=CoreConfig(),
        max_instructions=budget,
        backend="cycle",
    )
    cache_dir = scratch / f"cache{case.case_id}"
    first = ParallelRunner(cache=ResultCache(cache_dir)).run([job])[0]
    second_cache = ResultCache(cache_dir)
    second = ParallelRunner(cache=second_cache).run([job])[0]
    mismatches: List[Mismatch] = []
    if second_cache.hits != 1:
        mismatches.append(
            Mismatch(
                "cache",
                "vacuous",
                {"hits": 1},
                {"hits": second_cache.hits},
                "second run did not hit the cache; the oracle tested nothing",
            )
        )
    fresh = ParallelRunner().run([job])[0]
    for name, result in (("cached", second), ("fresh", fresh)):
        if result_to_payload(result) != result_to_payload(first):
            mismatches.append(
                Mismatch(
                    "cache",
                    f"first-vs-{name}",
                    run_signature(first),
                    run_signature(result),
                    f"{name} result payload diverged from the computed run",
                )
            )
    return mismatches


def oracle_telemetry(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Attaching a telemetry collector must not change any count."""
    program = case.program()
    mismatches: List[Mismatch] = []
    for backend, budget in (
        ("cycle", min(case.max_instructions, CYCLE_BUDGET)),
        ("replay", case.max_instructions),
    ):
        bare = run_workload(
            case.build_predictor(),
            program,
            max_instructions=budget,
            backend=backend,
            system_name=case.label,
        )
        with_telemetry = run_workload(
            case.build_predictor(),
            program,
            max_instructions=budget,
            backend=backend,
            system_name=case.label,
            telemetry=True,
        )
        if with_telemetry.telemetry is None:
            mismatches.append(
                Mismatch(
                    "telemetry",
                    f"{backend}-vacuous",
                    {"telemetry": "summary"},
                    {"telemetry": None},
                    "telemetry run produced no summary; the oracle tested "
                    "nothing",
                )
            )
        if run_signature(with_telemetry) != run_signature(bare):
            mismatches.append(
                Mismatch(
                    "telemetry",
                    f"{backend}-attach",
                    run_signature(bare),
                    run_signature(with_telemetry),
                    f"telemetry attach changed {backend} backend counts",
                )
            )
    return mismatches


def oracle_check(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Static analysis must report zero error-severity diagnostics."""
    from repro.analysis.diagnostics import ERROR
    from repro.analysis.topology_check import check_spec, check_topology

    if case.is_preset:
        predictor = case.build_predictor()
        diags = check_topology(
            predictor.topology, predictor.config, subject=case.label
        )
    else:
        diags = check_spec(case.topology)
    errors = [d for d in diags if d.severity == ERROR]
    if not errors:
        return []
    return [
        Mismatch(
            "check",
            "topology-errors",
            {"errors": []},
            {"errors": [f"{d.code}: {d.message}" for d in errors]},
            "generated topology fails static analysis",
        )
    ]


def oracle_spec(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Every composed component must conform to its declarative spec.

    Runs ``repro check --spec`` semantics over the case's instantiated
    components rather than the shipped library, so fuzz-drawn sizings
    (:func:`repro.fuzz.generate.random_library_params`) are covered too.
    """
    from repro.analysis.diagnostics import ERROR
    from repro.analysis.spec_check import check_component_spec

    predictor = case.build_predictor()
    errors = []
    for component in predictor.components:
        diags = check_component_spec(component, subject=component.name)
        errors.extend(d for d in diags if d.severity == ERROR)
    if not errors:
        return []
    return [
        Mismatch(
            "spec",
            "component-spec",
            {"errors": []},
            {"errors": [f"{d.code}: {d.message}" for d in errors]},
            "a composed component diverges from its declarative spec",
        )
    ]


def oracle_derive(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Spec-derived scalar paths must match the pre-refactor references.

    For every composed component in a migrated family (HBIM, two-level,
    GTag), builds a fresh twin pair — one through :mod:`repro.derive`,
    one frozen pre-refactor copy (:mod:`repro.derive.reference`) — at the
    case's fuzz-drawn sizing and drives both with identical seeded
    stimulus.  Predictions and metadata must be bit-identical step for
    step: the SPEC009 check widened from the shipped library defaults to
    whatever sizings the fuzzer draws.
    """
    from repro.analysis.contracts import _drive
    from repro.derive.reference import twin_dims, twin_pair

    predictor = case.build_predictor()
    mismatches: List[Mismatch] = []
    for component in predictor.components:
        pair = twin_pair(component)
        if pair is None:
            continue
        derived, reference = pair
        dims = twin_dims(derived)
        derived_log = _drive(derived, case.seed, 96, dims=dims)
        reference_log = _drive(reference, case.seed, 96, dims=dims)
        for step, (got, want) in enumerate(zip(derived_log, reference_log)):
            if got != want:
                mismatches.append(
                    Mismatch(
                        "derive",
                        f"{component.name}-step{step}",
                        {"log": want},
                        {"log": got},
                        f"{type(component).__name__} derived path diverges "
                        f"from its reference at step {step}",
                    )
                )
                break  # first divergence per component is enough
    return mismatches


def oracle_explore(case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Search-operator outputs must stay legal, check-clean, and budgeted.

    Applies the `repro explore` mutation operators (and one crossover
    against a fresh random mate) to the case's topology at its fuzz-drawn
    library sizings, then asserts for every child: the rendered spec
    composes and round-trips through ``parse_topology(describe())``
    unchanged; ``repro check`` reports zero error-severity diagnostics;
    and total storage respects the budget the operator was given.
    """
    import random

    from repro.analysis.diagnostics import ERROR
    from repro.analysis.topology_check import check_topology
    from repro.explore.operators import (
        Candidate,
        candidate_storage_kib,
        crossover,
        mutate,
    )
    from repro.fuzz.generate import random_topology_spec

    params = (
        case.predictor_spec.library_params
        if isinstance(case.predictor_spec, TopologyFactory)
        else ()
    )
    parent = Candidate(spec=case.topology, params=params)
    # Generous headroom over the parent so structural growth is exercised;
    # the oracle then holds children to exactly this bound.
    budget_kib = candidate_storage_kib(parent) * 2.0 + 64.0
    rng = random.Random(f"cobra-explore-oracle:{case.seed}:{case.case_id}")
    children = [mutate(rng, parent, budget_kib) for _ in range(3)]
    mate = Candidate(spec=random_topology_spec(rng), params=params)
    children.append(crossover(rng, parent, mate, budget_kib))

    mismatches: List[Mismatch] = []
    for child in children:
        predictor = child.build()
        described = predictor.describe()
        re_described = TopologyFactory(described, child.params)().describe()
        if re_described != described:
            mismatches.append(
                Mismatch(
                    "explore",
                    f"roundtrip:{child.origin or 'parent'}",
                    {"describe": described},
                    {"describe": re_described},
                    f"operator output {child.spec!r} does not round-trip "
                    "through parse_topology(describe())",
                )
            )
            continue
        errors = [
            d
            for d in check_topology(predictor.topology, predictor.config)
            if d.severity == ERROR
        ]
        if errors:
            mismatches.append(
                Mismatch(
                    "explore",
                    f"check:{child.origin or 'parent'}",
                    {"errors": []},
                    {"errors": [f"{d.code}: {d.message}" for d in errors]},
                    f"operator output {child.spec!r} fails static analysis",
                )
            )
        storage = predictor.total_storage_kib()
        if storage > budget_kib:
            mismatches.append(
                Mismatch(
                    "explore",
                    f"budget:{child.origin or 'parent'}",
                    {"storage_kib_within": budget_kib},
                    {"storage_kib": storage},
                    f"operator output {child.spec!r} busts the storage "
                    "budget it was constructed under",
                )
            )
    return mismatches


#: Oracle registry, in default execution order.
ORACLES: Dict[str, Callable[[FuzzCase, Path], List[Mismatch]]] = {
    "backends": oracle_backends,
    "parallel": oracle_parallel,
    "cache": oracle_cache,
    "telemetry": oracle_telemetry,
    "check": oracle_check,
    "spec": oracle_spec,
    "derive": oracle_derive,
    "explore": oracle_explore,
}

DEFAULT_ORACLES = tuple(ORACLES)


def run_oracle(name: str, case: FuzzCase, scratch: Path) -> List[Mismatch]:
    """Run one oracle; an exception becomes a ``crash`` mismatch."""
    try:
        oracle = ORACLES[name]
    except KeyError:
        raise KeyError(f"unknown oracle {name!r}; have {sorted(ORACLES)}") from None
    try:
        return oracle(case, scratch)
    except Exception as exc:
        return [
            Mismatch(
                name,
                "crash",
                {"outcome": "completes"},
                {"outcome": f"{type(exc).__name__}: {exc}"},
                traceback.format_exc(),
            )
        ]


def run_oracles(
    names, case: FuzzCase, scratch: Path, stop_on_first: bool = False
) -> List[Mismatch]:
    found: List[Mismatch] = []
    for name in names:
        found.extend(run_oracle(name, case, scratch))
        if found and stop_on_first:
            break
    return found


def failing_oracle(
    name: str, case: FuzzCase, scratch: Path
) -> Optional[List[Mismatch]]:
    """The minimizer's predicate helper: mismatches or None if clean."""
    found = run_oracle(name, case, scratch)
    return found or None
