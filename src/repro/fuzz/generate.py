"""Seeded generation of random topologies and branch-heavy programs.

Everything here is a pure function of a :class:`random.Random` stream (or
of a frozen spec), so a campaign seed fully determines every case the
fuzzer runs — the property the reproducer format and the minimizer both
rest on.  Two generators ship:

- :func:`random_topology_spec` draws well-formed topology strings in the
  paper notation, over the same component bases the shipped library
  registers.  Generated specs are *check-clean by construction* for the
  error-severity topology rules (an arbitration selector is never faster
  than its children, history components never get latency 1), so the
  ``check`` oracle can demand zero errors without false positives.
- :func:`random_program_spec` draws a :class:`ProgramSpec` — a declarative
  list of kernel invocations over
  :data:`repro.workloads.generators.KERNEL_EMITTERS` plus a data seed.
  :func:`build_program` turns a spec into a bit-identical
  :class:`~repro.isa.program.Program`; the minimizer shrinks the spec
  (delete kernels, drop iterations, halve sizes), never raw instructions,
  so every shrunk candidate is still a well-formed program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.components.library import standard_library
from repro.core.composer import ComposedPredictor, ComposerConfig, compose
from repro.isa.program import Program
from repro.spec import LEGAL_SIZINGS
from repro.workloads.generators import assemble_workload

#: Component bases that only see the PC and may respond in one cycle.
FAST_BASES = ("BIM", "BTB", "UBTB")
#: Component bases that consume a history register (latency >= 2, Fig. 2).
HISTORY_BASES = ("GSHARE", "GBIM", "LBIM", "PSHARE", "GSELECT", "GTAG", "TAGE")

#: Kernel parameter domains the generator samples (and the minimizer
#: shrinks toward each range's lower bound).  Integer ranges are inclusive.
KERNEL_PARAM_DOMAINS: Dict[str, Dict[str, Tuple[int, int]]] = {
    "stream": {"n": (8, 96)},
    "data_branches": {"n": (8, 96)},
    "lcg_branches": {"n": (8, 64)},
    "correlated": {"n": (16, 96)},
    "nested_loops": {},
    "linked_list": {"n_nodes": (8, 64)},
    "switch": {"n": (8, 48)},
    "recursive": {"depth": (2, 16)},
    "dense_branches": {"n": (8, 48)},
    "hammock": {"n": (8, 48)},
    "string_ops": {"length": (4, 16)},
}


def campaign_rng(seed: int, iteration: int) -> random.Random:
    """The per-iteration RNG: stable across platforms and oracle sets."""
    return random.Random(f"cobra-fuzz:{seed}:{iteration}")


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------
def _max_latency(spec: str) -> int:
    """Largest trailing latency digit in a generated spec (ours are 1-9)."""
    return max(int(ch) for ch in spec if ch.isdigit())


def random_unit(rng: random.Random) -> Tuple[str, int]:
    """Draw one (base, latency) pair, check-clean by construction.

    Fast (PC-only) bases may respond at cycle 1; history consumers start
    at cycle 2 (the Fig. 2 timing rule CON003 enforces).  Shared with the
    ``repro.explore`` mutation operators so searched and fuzzed designs
    draw components from the same pool.
    """
    if rng.random() < 0.4:
        return rng.choice(FAST_BASES), rng.randint(1, 4)
    return rng.choice(HISTORY_BASES), rng.randint(2, 4)


def random_topology_spec(rng: random.Random, depth: int = 0) -> str:
    """A random well-formed, check-clean topology spec in paper notation."""

    def unit() -> str:
        base, latency = random_unit(rng)
        return f"{base}{latency}"

    roll = rng.random()
    if depth < 2 and roll < 0.25:
        # TOURNEY takes exactly two predict_in inputs, so exactly two
        # children; the selector must be at least as slow as what it
        # arbitrates (TOP002), so its latency is drawn at or above the
        # slowest child.
        children = [random_topology_spec(rng, depth + 1) for _ in range(2)]
        floor = max(2, max(_max_latency(child) for child in children))
        latency = rng.randint(floor, max(floor, 4))
        return f"TOURNEY{latency} > [{', '.join(children)}]"
    if depth < 3 and roll < 0.75:
        return f"{unit()} > {random_topology_spec(rng, depth + 1)}"
    return unit()


def random_library_params(
    rng: random.Random, max_params: int = 3
) -> Tuple[Tuple[str, int], ...]:
    """Draw component sizings from the spec-declared legal ranges.

    Each drawn parameter is a ``standard_library`` keyword whose value
    comes from :data:`repro.spec.LEGAL_SIZINGS`, so every generated
    library is one the declarative specs vouch for — the spec oracle can
    demand a clean ``repro check --spec`` on every case without false
    positives.  An empty draw (the default sizing) stays common so the
    Table I configuration keeps getting fuzzed too.
    """
    count = rng.randint(0, max_params)
    names = sorted(rng.sample(sorted(LEGAL_SIZINGS), count))
    return tuple((name, rng.choice(LEGAL_SIZINGS[name])) for name in names)


@dataclass(frozen=True)
class TopologyFactory:
    """Picklable zero-argument predictor factory for a topology string.

    The parallel-evaluation oracle ships jobs to worker processes, so a
    fuzz case's predictor spec must survive pickling — a closure over
    ``compose`` would silently fall back to the serial path and the oracle
    would stop testing anything.

    ``library_params`` (``standard_library`` keyword/value pairs, usually
    drawn by :func:`random_library_params`) resizes the component library
    the topology is composed over; empty means the shipped defaults.
    """

    spec: str
    library_params: Tuple[Tuple[str, int], ...] = ()

    def __call__(self) -> ComposedPredictor:
        library = (
            standard_library(**dict(self.library_params))
            if self.library_params
            else None
        )
        return compose(self.spec, library=library, config=ComposerConfig())


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSpec:
    """One kernel invocation: registry name plus frozen parameters."""

    kernel: str
    params: Tuple[Tuple[str, int], ...] = ()

    def as_mapping(self) -> Dict[str, int]:
        return dict(self.params)


@dataclass(frozen=True)
class ProgramSpec:
    """A declarative, replayable recipe for one fuzz workload."""

    seed: int
    outer_iterations: int
    kernels: Tuple[KernelSpec, ...]
    name: str = "fuzzcase"

    def describe(self) -> str:
        parts = ", ".join(k.kernel for k in self.kernels)
        return f"{self.name}(seed={self.seed}, outer={self.outer_iterations}: {parts})"


def build_program(spec: ProgramSpec) -> Program:
    """Materialize a spec; same spec in, bit-identical program out."""
    return assemble_workload(
        spec.name,
        spec.seed,
        [(k.kernel, k.as_mapping()) for k in spec.kernels],
        outer_iterations=spec.outer_iterations,
    )


def random_kernel_spec(rng: random.Random, kernel: Optional[str] = None) -> KernelSpec:
    name = kernel or rng.choice(sorted(KERNEL_PARAM_DOMAINS))
    params = tuple(
        (param, rng.randint(lo, hi))
        for param, (lo, hi) in sorted(KERNEL_PARAM_DOMAINS[name].items())
    )
    return KernelSpec(kernel=name, params=params)


def random_program_spec(
    rng: random.Random,
    max_kernels: int = 4,
    max_outer_iterations: int = 4,
) -> ProgramSpec:
    n_kernels = rng.randint(1, max_kernels)
    return ProgramSpec(
        seed=rng.randrange(1, 1 << 30),
        outer_iterations=rng.randint(1, max_outer_iterations),
        kernels=tuple(random_kernel_spec(rng) for _ in range(n_kernels)),
    )


def shrink_param(spec: KernelSpec, param: str, value: int) -> KernelSpec:
    """A copy of ``spec`` with one parameter replaced."""
    params = tuple(
        (name, value if name == param else old) for name, old in spec.params
    )
    return replace(spec, params=params)


def param_floor(kernel: str, param: str) -> int:
    """The smallest legal value the minimizer may shrink ``param`` to."""
    return KERNEL_PARAM_DOMAINS[kernel][param][0]


# Re-exported for reproducer metadata: a spec as plain JSON-able data.
def spec_to_payload(spec: ProgramSpec) -> Dict[str, object]:
    return {
        "name": spec.name,
        "seed": spec.seed,
        "outer_iterations": spec.outer_iterations,
        "kernels": [
            {"kernel": k.kernel, "params": dict(k.params)} for k in spec.kernels
        ],
    }


def spec_from_payload(payload: Mapping[str, object]) -> ProgramSpec:
    kernels = tuple(
        KernelSpec(
            kernel=entry["kernel"],
            params=tuple(sorted((str(k), int(v)) for k, v in entry["params"].items())),
        )
        for entry in payload["kernels"]
    )
    return ProgramSpec(
        seed=int(payload["seed"]),
        outer_iterations=int(payload["outer_iterations"]),
        kernels=kernels,
        name=str(payload.get("name", "fuzzcase")),
    )
