"""Seed-driven differential fuzzing campaigns.

A campaign is a deterministic function of its seed: iteration ``i`` draws
its topology and workload from ``campaign_rng(seed, i)``, so any failure
is addressable as (seed, iteration) before a reproducer artifact even
exists.  Each case runs the configured oracle battery; on a mismatch the
case is shrunk (:mod:`repro.fuzz.minimize`) and written out as a
self-contained reproducer (:mod:`repro.fuzz.reproducer`).

Case mix: by default every fourth case exercises a shipped preset
(``tage_l``/``b2``/``tourney``), the rest draw random topologies — the
presets keep the battery honest on the configurations users actually run,
the random draws cover the composition space.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro import presets
from repro.fuzz.generate import (
    TopologyFactory,
    campaign_rng,
    random_library_params,
    random_program_spec,
    random_topology_spec,
)
from repro.fuzz.minimize import minimize_case
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    FuzzCase,
    Mismatch,
    run_oracles,
)
from repro.fuzz.reproducer import save_reproducer
from repro.workloads.traces import capture_trace

#: Shipped presets a campaign cycles through (every fourth case).
PRESET_POOL = presets.PRESET_NAMES

_PRESET_TOPOLOGIES = {
    "tage_l": presets.TAGE_L_TOPOLOGY,
    "b2": presets.B2_TOPOLOGY,
    "tourney": presets.TOURNEY_TOPOLOGY,
}


@dataclasses.dataclass
class FuzzConfig:
    """Everything that determines a campaign (and thus its failures)."""

    seed: int = 0
    iterations: int = 50
    oracles: Sequence[str] = DEFAULT_ORACLES
    max_instructions: int = 4_000
    max_kernels: int = 4
    #: Mix shipped presets into the case stream (every fourth case).
    include_presets: bool = True
    #: Fixed topology pool instead of random draws (None = random).
    topologies: Optional[Sequence[str]] = None
    #: Fixed predictor factory for every case (fixture/regression runs).
    predictor_factory: Optional[Callable] = None
    #: Label reported for ``predictor_factory`` cases.
    factory_label: str = "custom"
    #: Where minimized reproducer artifacts go (None = don't write).
    out_dir: Optional[Path] = None
    minimize: bool = True
    minimize_evals: int = 200
    #: Wall-clock budget in seconds; the campaign stops drawing new cases
    #: once exceeded (None = run all iterations).
    time_budget: Optional[float] = None
    #: Stop the campaign after this many failing cases (None = keep going).
    stop_after: Optional[int] = None


@dataclasses.dataclass
class FuzzFailure:
    """One failing case, its shrunk form, and where the artifact went."""

    iteration: int
    case: FuzzCase
    oracle: str
    mismatches: List[Mismatch]
    minimized: Optional[FuzzCase] = None
    reproducer_path: Optional[Path] = None


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one campaign."""

    seed: int
    iterations_requested: int
    iterations_run: int
    oracles: Sequence[str]
    failures: List[FuzzFailure]
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = (
            "clean" if self.ok else f"{len(self.failures)} failing case(s)"
        )
        lines = [
            f"fuzz seed={self.seed}: {self.iterations_run}/"
            f"{self.iterations_requested} case(s) in {self.elapsed:.1f}s "
            f"over oracles [{', '.join(self.oracles)}]: {verdict}"
        ]
        for failure in self.failures:
            shrunk = failure.minimized or failure.case
            lines.append(
                f"  iter {failure.iteration} [{failure.oracle}] "
                f"{shrunk.describe()}"
            )
            if failure.reproducer_path is not None:
                lines.append(f"    reproducer: {failure.reproducer_path}")
            for mismatch in failure.mismatches:
                lines.append(
                    "    " + mismatch.format().replace("\n", "\n    ")
                )
        return "\n".join(lines)


def case_for_iteration(config: FuzzConfig, iteration: int) -> FuzzCase:
    """The deterministic case drawn at ``(config.seed, iteration)``."""
    rng = campaign_rng(config.seed, iteration)
    program_spec = random_program_spec(rng, max_kernels=config.max_kernels)
    if config.predictor_factory is not None:
        spec = config.predictor_factory
        label = config.factory_label
        topology = config.factory_label
    elif config.topologies:
        chosen = config.topologies[iteration % len(config.topologies)]
        spec = TopologyFactory(chosen)
        label = f"fixed{iteration % len(config.topologies)}"
        topology = chosen
    elif config.include_presets and iteration % 4 == 3:
        name = PRESET_POOL[(iteration // 4) % len(PRESET_POOL)]
        spec = name
        label = name
        topology = _PRESET_TOPOLOGIES[name]
    else:
        drawn = random_topology_spec(rng)
        spec = TopologyFactory(drawn, random_library_params(rng))
        label = f"rand{iteration}"
        topology = drawn
    return FuzzCase(
        case_id=iteration,
        seed=config.seed,
        label=label,
        predictor_spec=spec,
        topology=topology,
        program_spec=program_spec,
        max_instructions=config.max_instructions,
    )


def _handle_failure(
    config: FuzzConfig,
    iteration: int,
    case: FuzzCase,
    mismatches: List[Mismatch],
    scratch: Path,
) -> FuzzFailure:
    oracle = mismatches[0].oracle
    failure = FuzzFailure(
        iteration=iteration, case=case, oracle=oracle, mismatches=mismatches
    )
    if config.minimize:
        shrunk = minimize_case(
            case, oracle, scratch, max_evals=config.minimize_evals
        )
        failure.minimized = shrunk.case
        failure.mismatches = shrunk.mismatches
    if config.out_dir is not None:
        final = failure.minimized or case
        trace = None
        if oracle == "backends":
            # Embed the captured branch trace for forensics.
            trace = capture_trace(
                final.program(), max_instructions=final.max_instructions
            )
        failure.reproducer_path = save_reproducer(
            Path(config.out_dir)
            / f"repro-seed{config.seed}-iter{iteration}-{oracle}.npz",
            final,
            oracle,
            failure.mismatches,
            trace=trace,
        )
    return failure


def run_campaign(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one campaign and return its report."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    started = time.monotonic()
    failures: List[FuzzFailure] = []
    iterations_run = 0
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        scratch = Path(tmp)
        for iteration in range(config.iterations):
            elapsed = time.monotonic() - started
            if (
                config.time_budget is not None
                and elapsed > config.time_budget
            ):
                note(
                    f"time budget {config.time_budget:.0f}s exhausted after "
                    f"{iterations_run} case(s)"
                )
                break
            case = case_for_iteration(config, iteration)
            mismatches = run_oracles(config.oracles, case, scratch)
            iterations_run += 1
            if not mismatches:
                note(f"[{iteration}] ok    {case.describe()}")
                continue
            note(
                f"[{iteration}] FAIL  {case.describe()} "
                f"({mismatches[0].oracle}: {len(mismatches)} mismatch(es))"
            )
            failure = _handle_failure(
                config, iteration, case, mismatches, scratch
            )
            if failure.minimized is not None:
                note(
                    f"[{iteration}] shrunk to {failure.minimized.describe()}"
                )
            if failure.reproducer_path is not None:
                note(f"[{iteration}] wrote {failure.reproducer_path}")
            failures.append(failure)
            if (
                config.stop_after is not None
                and len(failures) >= config.stop_after
            ):
                note(f"stopping after {len(failures)} failure(s)")
                break
    return FuzzReport(
        seed=config.seed,
        iterations_requested=config.iterations,
        iterations_run=iterations_run,
        oracles=tuple(config.oracles),
        failures=failures,
        elapsed=time.monotonic() - started,
    )
