"""Differential fuzzing of the framework's execution paths.

The fuzzer draws seeded random (topology, workload) cases, runs each
through a battery of differential oracles — equivalence contracts the
framework guarantees (backend bit-identity, parallel == serial, cache
round trips, telemetry attach invariance, check-clean topologies) — and,
on any disagreement, shrinks the case and writes a self-contained
reproducer artifact.  See ``docs/fuzzing.md``.
"""

from repro.fuzz.campaign import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    case_for_iteration,
    run_campaign,
)
from repro.fuzz.generate import (
    KernelSpec,
    ProgramSpec,
    TopologyFactory,
    build_program,
    campaign_rng,
    random_program_spec,
    random_topology_spec,
)
from repro.fuzz.minimize import MinimizationResult, ddmin, minimize_case
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    ORACLES,
    FuzzCase,
    Mismatch,
    run_oracle,
    run_oracles,
)
from repro.fuzz.reproducer import (
    ReplayOutcome,
    Reproducer,
    load_reproducer,
    replay_reproducer,
    save_reproducer,
)

__all__ = [
    "DEFAULT_ORACLES",
    "ORACLES",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "KernelSpec",
    "MinimizationResult",
    "Mismatch",
    "ProgramSpec",
    "ReplayOutcome",
    "Reproducer",
    "TopologyFactory",
    "build_program",
    "campaign_rng",
    "case_for_iteration",
    "ddmin",
    "load_reproducer",
    "minimize_case",
    "random_program_spec",
    "random_topology_spec",
    "replay_reproducer",
    "run_campaign",
    "run_oracle",
    "run_oracles",
    "save_reproducer",
]
