"""Human-readable rendering of telemetry summary payloads."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.telemetry.collector import UNATTRIBUTED

_TABLE_COLUMNS = (
    ("branches", "provided_branches"),
    ("dir-right", "direction_right"),
    ("dir-wrong", "direction_wrong"),
    ("tgt-wrong", "target_wrong"),
    ("ovr-won", "overrides_won"),
    ("ovr-lost", "overrides_lost"),
)


def format_component_table(payload: Dict[str, Any]) -> str:
    """Per-component counter table from a ``summary()`` payload."""
    header = "component  " + " ".join(f"{label:>10s}" for label, _ in _TABLE_COLUMNS)
    lines = [header, "-" * len(header)]
    rows = dict(payload.get("components", {}))
    unattributed = payload.get("unattributed")
    if unattributed and any(unattributed.values()):
        rows[UNATTRIBUTED] = unattributed
    for name, counters in rows.items():
        cells = " ".join(
            f"{counters.get(field, 0):10d}" for _, field in _TABLE_COLUMNS
        )
        lines.append(f"{name:10s} {cells}")
    return "\n".join(lines)


def format_summary(payload: Dict[str, Any]) -> str:
    """Component table plus packet / repair / occupancy headline numbers."""
    occupancy = payload.get("occupancy", {})
    repair = payload.get("repair", {})
    samples = occupancy.get("samples", 0)
    mean_occupancy = occupancy.get("total", 0) / samples if samples else 0.0
    lines: List[str] = [
        f"packets predicted: {payload.get('packets', 0)}",
        (
            f"history file: mean occupancy {mean_occupancy:.1f}, "
            f"max {occupancy.get('max', 0)}"
        ),
        (
            f"repair: {repair.get('walks', 0)} walks over "
            f"{repair.get('entries', 0)} entries "
            f"({repair.get('cycles', 0)} cycles)"
        ),
        "",
        format_component_table(payload),
    ]
    return "\n".join(lines)
