"""The telemetry collector: per-component and per-site attribution.

Attribution model
-----------------
During a telemetry-enabled predict, the topology evaluation records which
sub-component supplied each slot of every prediction vector it produced
(see ``TopologyNode.evaluate``'s ``attribution`` parameter).  The provider
of a final-prediction slot is:

- the component whose ``lookup`` produced the slot's value, when it formed
  a prediction for that slot (``hit``);
- resolved transitively through pass-through and ``merge_by_hit`` muxing,
  so an untouched ``predict_in`` slot keeps its original provider;
- ``None`` when no component predicted the slot (the fall-through
  default), reported under the ``"(none)"`` key.

The composer stores the final-stage provider tuple in the history-file
entry, which makes resolve- and commit-time attribution exact: the
component charged with a wrong (or credited with a right) direction is the
one whose prediction the frontend actually followed for that slot.

Override accounting compares consecutive pipeline stages of the staged
final prediction: when stage ``d`` changes a slot's decision relative to
stage ``d - 1``, the stage-``d`` provider scores ``overrides_won`` and the
displaced provider scores ``overrides_lost`` — the Alpha-21264-style
late-override traffic §IV-B's generated muxing creates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Bump when the summary payload's field set changes incompatibly.
SUMMARY_SCHEMA_VERSION = 1

#: Summary key for slots no component predicted (fall-through defaults).
UNATTRIBUTED = "(none)"

_COUNTER_FIELDS = (
    "lookups",
    "fire_events",
    "mispredict_events",
    "repair_events",
    "update_events",
    "provided_slots",
    "provided_branches",
    "overrides_won",
    "overrides_lost",
    "direction_right",
    "direction_wrong",
    "target_wrong",
)


class ComponentCounters:
    """Event and attribution counters for one sub-component.

    Attributes
    ----------
    lookups:
        Predict queries observed (one per fetch packet).
    fire_events, mispredict_events, repair_events, update_events:
        Interface-event dispatches this component actually received
        (components that leave a hook as the base-class no-op receive
        nothing; ``repair_events`` counts squashed entries walked).
    provided_slots, provided_branches:
        Final-prediction slots (and the conditional-branch subset)
        attributed to this component at predict time.
    overrides_won, overrides_lost:
        Late-stage decision changes won against (or lost to) another
        provider across consecutive pipeline stages.
    direction_right, direction_wrong:
        Resolved conditional-branch directions this component supplied.
    target_wrong:
        Indirect-target mispredicts on slots this component supplied.
    """

    __slots__ = _COUNTER_FIELDS

    def __init__(self) -> None:
        for name in _COUNTER_FIELDS:
            setattr(self, name, 0)

    def to_payload(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _COUNTER_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in _COUNTER_FIELDS
            if getattr(self, name)
        )
        return f"ComponentCounters({inner})"


def _decision_changed(a, b) -> bool:
    """Did slot prediction ``b`` change the packet's behaviour vs ``a``?"""
    return (
        a.taken != b.taken
        or a.target != b.target
        or a.is_branch != b.is_branch
        or a.is_jump != b.is_jump
    )


class TelemetryCollector:
    """Accumulates telemetry from one composed predictor's event stream.

    Bind with :meth:`repro.core.composer.ComposedPredictor.attach_telemetry`
    (or construct the core with ``CoreConfig(telemetry=True)``, which does
    it for you).  ``trace`` is an optional
    :class:`~repro.telemetry.trace.EventTrace` receiving one record per
    observed event.
    """

    def __init__(self, trace=None) -> None:
        self.trace = trace
        self.packets = 0
        self.occupancy_samples = 0
        self.occupancy_total = 0
        self.occupancy_max = 0
        self.repair_walks = 0
        self.repair_entries = 0
        self.repair_cycles = 0
        self.repair_depths: Dict[int, int] = {}
        self.components: Dict[str, ComponentCounters] = {}
        self.unattributed = ComponentCounters()
        #: pc -> provider -> [direction_right, direction_wrong]
        self.sites: Dict[int, Dict[str, List[int]]] = {}
        self._component_names: Tuple[str, ...] = ()
        self._fire_names: Tuple[str, ...] = ()
        self._mispredict_names: Tuple[str, ...] = ()
        self._repair_names: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def bind(self, predictor) -> None:
        """Capture the component roster of the predictor being observed."""
        self._component_names = tuple(c.name for c in predictor.components)
        self._fire_names = tuple(c.name for c in predictor._fire_components)
        self._mispredict_names = tuple(
            c.name for c in predictor._mispredict_components
        )
        self._repair_names = tuple(
            c.name for c in predictor._repair._repair_components
        )
        for name in self._component_names:
            self.components.setdefault(name, ComponentCounters())

    def _counters(self, provider: Optional[str]) -> ComponentCounters:
        if provider is None:
            return self.unattributed
        counters = self.components.get(provider)
        if counters is None:
            counters = self.components[provider] = ComponentCounters()
        return counters

    def _site(self, pc: int, provider: Optional[str]) -> List[int]:
        by_provider = self.sites.get(pc)
        if by_provider is None:
            by_provider = self.sites[pc] = {}
        key = provider if provider is not None else UNATTRIBUTED
        cell = by_provider.get(key)
        if cell is None:
            cell = by_provider[key] = [0, 0]
        return cell

    # ------------------------------------------------------------------
    # Event hooks (called by the composer)
    # ------------------------------------------------------------------
    def on_predict(self, entry, staged, attribution, occupancy: int) -> None:
        """One predict event: the packet was queried and fired."""
        self.packets += 1
        self.occupancy_samples += 1
        self.occupancy_total += occupancy
        if occupancy > self.occupancy_max:
            self.occupancy_max = occupancy
        for name in self._component_names:
            self.components[name].lookups += 1
        for name in self._fire_names:
            self.components[name].fire_events += 1

        providers = entry.slot_providers or ()
        for index, provider in enumerate(providers):
            if provider is None:
                continue
            counters = self.components[provider]
            counters.provided_slots += 1
            if entry.br_mask[index]:
                counters.provided_branches += 1

        previous = None
        for vector in staged:
            if vector is None or vector is previous:
                previous = vector if vector is not None else previous
                continue
            if previous is not None:
                prev_providers = attribution.get(id(previous))
                this_providers = attribution.get(id(vector))
                for index in range(len(vector.slots)):
                    if not _decision_changed(
                        previous.slots[index], vector.slots[index]
                    ):
                        continue
                    winner = this_providers[index] if this_providers else None
                    loser = prev_providers[index] if prev_providers else None
                    self._counters(winner).overrides_won += 1
                    self._counters(loser).overrides_lost += 1
            previous = vector

        if self.trace is not None:
            self.trace.emit(
                "predict",
                pc=entry.fetch_pc,
                ftq=entry.ftq_id,
                cfi=entry.cfi_idx,
                taken=list(entry.taken_mask),
                providers=[p if p is not None else UNATTRIBUTED for p in providers],
            )
            if self._fire_names:
                self.trace.emit(
                    "fire", ftq=entry.ftq_id, components=list(self._fire_names)
                )

    def on_resolve(
        self, entry, slot: int, actual_taken: bool, is_direction: bool
    ) -> None:
        """One mispredict event: the backend corrected this entry."""
        providers = entry.slot_providers
        provider = providers[slot] if providers else None
        counters = self._counters(provider)
        if is_direction:
            counters.direction_wrong += 1
            self._site(entry.fetch_pc + slot, provider)[1] += 1
        else:
            counters.target_wrong += 1
        for name in self._mispredict_names:
            self.components[name].mispredict_events += 1
        if self.trace is not None:
            self.trace.emit(
                "mispredict",
                pc=entry.fetch_pc + slot,
                ftq=entry.ftq_id,
                direction=is_direction,
                taken=actual_taken,
                provider=provider if provider is not None else UNATTRIBUTED,
            )

    def on_repair(self, entries: int, cycles: int) -> None:
        """One repair walk over ``entries`` squashed history-file entries."""
        self.repair_walks += 1
        self.repair_entries += entries
        self.repair_cycles += cycles
        self.repair_depths[entries] = self.repair_depths.get(entries, 0) + 1
        for name in self._repair_names:
            self.components[name].repair_events += entries
        if self.trace is not None:
            self.trace.emit("repair", entries=entries, cycles=cycles)

    def on_commit(self, entry) -> None:
        """One update event: the packet committed and updated components."""
        for name in self._component_names:
            self.components[name].update_events += 1
        providers = entry.slot_providers
        for index, is_branch in enumerate(entry.br_mask):
            if not is_branch:
                continue
            if entry.mispredicted and entry.mispredict_idx == index:
                continue  # charged at resolve time
            provider = providers[index] if providers else None
            self._counters(provider).direction_right += 1
            self._site(entry.fetch_pc + index, provider)[0] += 1
        if self.trace is not None:
            self.trace.emit("update", pc=entry.fetch_pc, ftq=entry.ftq_id)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-canonical payload: string keys, ints, and lists only.

        The payload round-trips byte-identically through ``json`` (and
        therefore through the result cache and artifact files), which the
        golden-stats gate relies on.
        """
        return {
            "schema": SUMMARY_SCHEMA_VERSION,
            "packets": self.packets,
            "occupancy": {
                "samples": self.occupancy_samples,
                "total": self.occupancy_total,
                "max": self.occupancy_max,
            },
            "repair": {
                "walks": self.repair_walks,
                "entries": self.repair_entries,
                "cycles": self.repair_cycles,
                "depths": {
                    str(depth): count
                    for depth, count in sorted(self.repair_depths.items())
                },
            },
            "components": {
                name: self.components[name].to_payload()
                for name in sorted(self.components)
            },
            "unattributed": self.unattributed.to_payload(),
            "sites": {
                str(pc): {
                    provider: list(cell)
                    for provider, cell in sorted(by_provider.items())
                }
                for pc, by_provider in sorted(self.sites.items())
            },
        }

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_total / self.occupancy_samples
