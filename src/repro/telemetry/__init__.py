"""Structured telemetry for composed predictors.

The paper's evaluation (§V) attributes accuracy loss to specific
sub-components and branch sites with FireSim's out-of-band profilers; this
package is the software analogue.  A :class:`TelemetryCollector` subscribes
to the composer's predict/fire/mispredict/repair/update events and
accumulates:

- per-component counters (lookups, final-prediction slots provided,
  overrides won/lost, mispredicts attributed to each sub-component, event
  dispatch counts);
- per-branch-site attribution of right/wrong final directions to the
  component that supplied them;
- repair-walk and history-file-occupancy statistics;
- an optional bounded JSONL event trace with a versioned schema
  (:class:`EventTrace`).

Collection is strictly opt-in (``CoreConfig(telemetry=True)`` or the
``--telemetry`` CLI flag) and never perturbs simulation results: the
collector observes completed composer decisions, it does not participate in
them.  The summary payload is JSON-canonical (string keys, ints, lists), so
it round-trips byte-identically through the result cache and
:mod:`repro.eval.artifacts`.
"""

from repro.telemetry.collector import (
    SUMMARY_SCHEMA_VERSION,
    ComponentCounters,
    TelemetryCollector,
)
from repro.telemetry.report import format_component_table, format_summary
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, EventTrace

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "ComponentCounters",
    "EventTrace",
    "TelemetryCollector",
    "format_component_table",
    "format_summary",
]
