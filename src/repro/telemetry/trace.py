"""Bounded JSONL event tracing with a versioned schema.

A trace is a sequence of JSON objects, one per line.  The first line is a
header record::

    {"schema": 1, "kind": "repro-telemetry-trace"}

Every subsequent line is one event::

    {"e": "<event>", ...event-specific fields...}

Event kinds mirror the COBRA interface events the collector observes
(:mod:`repro.core.events`): ``predict``, ``fire``, ``mispredict``,
``repair``, and ``update`` (commit).  The schema version is bumped whenever
an event's field set changes incompatibly, so downstream tooling can reject
traces it does not understand.

Traces are *bounded*: after ``max_events`` records the trace stops
appending and counts the overflow instead, so a long simulation cannot
exhaust memory or disk.  The bound applies to events, not the header.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when an event record's field set changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Default event bound; generous for micro-workloads, safe for long runs.
DEFAULT_MAX_EVENTS = 100_000


class EventTrace:
    """Buffer (and optionally stream) telemetry events as JSONL.

    Parameters
    ----------
    path:
        When given, events are written to this file as they arrive (the
        header first); :meth:`close` flushes and closes the stream.  When
        omitted, events accumulate in :attr:`events` and can be written
        later with :meth:`dump`.
    max_events:
        Hard bound on recorded events.  Events past the bound are counted
        in :attr:`dropped` but not stored or written.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self._path = Path(path) if path is not None else None
        self._stream = None
        if self._path is not None:
            self._stream = self._path.open("w")
            self._write_line(self.header())

    @staticmethod
    def header() -> Dict[str, Any]:
        return {"schema": TRACE_SCHEMA_VERSION, "kind": "repro-telemetry-trace"}

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def _write_line(self, record: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True))
        self._stream.write("\n")

    def emit(self, event: str, **fields: Any) -> None:
        """Record one event; a no-op (plus a drop count) past the bound."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        record = {"e": event, **fields}
        self.events.append(record)
        if self._stream is not None:
            self._write_line(record)

    def dump(self, path: Union[str, Path]) -> None:
        """Write the header plus all buffered events to ``path`` as JSONL."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in self.events)
        Path(path).write_text("\n".join(lines) + "\n")

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __len__(self) -> int:
        return len(self.events)


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; returns the header plus event records.

    Raises ``ValueError`` when the header is missing or declares a schema
    this reader does not understand.
    """
    records = [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    if not records or records[0].get("kind") != "repro-telemetry-trace":
        raise ValueError(f"{path}: not a repro telemetry trace")
    if records[0].get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trace schema {records[0].get('schema')!r} is not the "
            f"supported version {TRACE_SCHEMA_VERSION}"
        )
    return records
