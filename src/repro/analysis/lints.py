"""AST lints for reproducibility hazards (RPR rules).

A small, repo-specific lint pass covering hazards generic linters miss:

======  ========================================================
code    finding
======  ========================================================
RPR001  unseeded RNG or wall-clock call in deterministic code
RPR002  mutable default argument
RPR003  PredictorComponent subclass overrides fire without on_repair
RPR004  in-place mutation of an incoming ``predict_in`` vector
RPR005  noqa comment references an unknown rule code (warn)
======  ========================================================

RPR001 applies only to the determinism-critical packages (``core``,
``components``, ``frontend``, ``isa``): simulation results must be a pure
function of the workload and the seed, so module-level RNG (whose state is
process-global) and wall-clock reads are banned there.  Seeded generator
*instances* (``random.Random(seed)``, ``np.random.RandomState(seed)``,
``np.random.default_rng(seed)``) are fine anywhere.

RPR003 is the event-protocol lint: a component that speculatively updates
state at ``fire`` time without an ``on_repair`` handler corrupts its state
on every squashed packet (§III-E) — the bug only shows up as accuracy
degradation under mispredict pressure, which is why it deserves a lint.

Suppression: append ``# repro: noqa`` (any rule) or ``# repro: noqa[RPR001]``
(one rule) to the flagged line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import RULES, Diagnostic, diagnostic

#: Packages where simulation determinism is load-bearing (RPR001 scope).
DETERMINISTIC_PACKAGES = ("core", "components", "frontend", "isa")

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9, ]+)\])?")

#: Module-level callables that read process-global entropy or the clock.
#: Maps module name -> banned attribute set (None = every attribute).
_BANNED_MODULE_CALLS: Dict[str, Optional[Set[str]]] = {
    "random": None,  # module-level RNG shares process-global state
    "secrets": None,
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time", "process_time_ns"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
}
#: ``random`` attributes that are fine: constructing a seeded instance.
_ALLOWED_RANDOM = {"Random", "SystemRandom"}
#: ``numpy.random`` attributes that construct explicit generators.
_ALLOWED_NP_RANDOM = {"RandomState", "default_rng", "Generator",
                      "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
_BANNED_DATETIME_METHODS = {"now", "utcnow", "today"}

#: Methods that mutate their receiver in place (RPR004).
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "fill", "update", "add", "discard", "setdefault", "popitem",
}


class _ClassInfo:
    __slots__ = ("name", "bases", "methods", "file", "line")

    def __init__(self, name: str, bases: List[str], methods: Set[str],
                 file: str, line: int):
        self.name = name
        self.bases = bases
        self.methods = methods
        self.file = file
        self.line = line


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_root(node: ast.expr) -> Optional[str]:
    """The name at the root of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _dotted(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains as a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: List[str],
                 deterministic_scope: bool):
        self.path = path
        self.lines = source_lines
        self.deterministic_scope = deterministic_scope
        self.diags: List[Diagnostic] = []
        #: Local alias -> canonical module name (``import numpy as np``).
        self.module_aliases: Dict[str, str] = {}
        #: Names imported from banned modules (``from time import time``).
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        self.classes: List[_ClassInfo] = []
        #: Stack of function scopes carrying their predict_in parameter name.
        self._predict_in_stack: List[bool] = []

    # -- suppression ----------------------------------------------------
    def _suppressed(self, code: str, line: int) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        return code in {c.strip() for c in codes.split(",")}

    def _report(self, code: str, message: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(code, line):
            return
        self.diags.append(
            diagnostic(
                code,
                message,
                self.path,
                file=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
            )
        )

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self.from_imports[alias.asname or alias.name] = (module, alias.name)
            if module == "numpy" and alias.name == "random":
                self.module_aliases[alias.asname or alias.name] = "numpy.random"
        self.generic_visit(node)

    # -- RPR001 ---------------------------------------------------------
    def _check_entropy_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None and "." in dotted:
            root, rest = dotted.split(".", 1)
            module = self.module_aliases.get(root, root)
            full = f"{module}.{rest}"
            parts = full.split(".")
            if parts[0] == "numpy" and len(parts) >= 2 and parts[1] == "random":
                attr = parts[2] if len(parts) >= 3 else ""
                if attr and attr not in _ALLOWED_NP_RANDOM:
                    self._report(
                        "RPR001",
                        f"call to numpy.random.{attr} uses the process-global "
                        f"generator; construct a seeded RandomState/default_rng",
                        node,
                    )
                return
            if parts[0] == "datetime" and parts[-1] in _BANNED_DATETIME_METHODS:
                self._report(
                    "RPR001",
                    f"wall-clock read {full}() in deterministic code",
                    node,
                )
                return
            banned = _BANNED_MODULE_CALLS.get(parts[0])
            attr = parts[1] if len(parts) >= 2 else ""
            if banned is not None or parts[0] in _BANNED_MODULE_CALLS:
                if parts[0] == "random" and attr in _ALLOWED_RANDOM:
                    return
                if banned is None or attr in banned:
                    self._report(
                        "RPR001",
                        f"call to {full} is unseeded or reads the clock; "
                        f"simulation state must derive from the run seed",
                        node,
                    )
            return
        if isinstance(node.func, ast.Name):
            origin = self.from_imports.get(node.func.id)
            if origin is None:
                return
            module, name = origin
            banned = _BANNED_MODULE_CALLS.get(module)
            if module == "random" and name in _ALLOWED_RANDOM:
                return
            if module in _BANNED_MODULE_CALLS and (
                banned is None or name in banned
            ):
                self._report(
                    "RPR001",
                    f"call to {module}.{name} is unseeded or reads the "
                    f"clock; simulation state must derive from the run seed",
                    node,
                )
            elif module == "datetime" and name in _BANNED_DATETIME_METHODS:
                self._report(
                    "RPR001", f"wall-clock read datetime.{name}()", node
                )

    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic_scope:
            self._check_entropy_call(node)
        # RPR004: mutating method call on a predict_in-rooted chain.
        if (
            self._predict_in_stack
            and self._predict_in_stack[-1]
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and _call_root(node.func.value) == "predict_in"
        ):
            self._report(
                "RPR004",
                f"{node.func.attr}() mutates an incoming prediction vector; "
                f"copy predict_in before overriding slots (§III-F)",
                node,
            )
        self.generic_visit(node)

    # -- RPR002 ---------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._report(
                    "RPR002",
                    "mutable default argument is shared across calls; "
                    "default to None and allocate inside the function",
                    default,
                )

    def _visit_function(self, node) -> None:
        self._check_defaults(node)
        has_predict_in = any(
            arg.arg == "predict_in"
            for arg in node.args.args + node.args.kwonlyargs
        )
        self._predict_in_stack.append(has_predict_in)
        self.generic_visit(node)
        self._predict_in_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- RPR003 (collection; resolution happens across files) -----------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = [b for b in map(_base_name, node.bases) if b is not None]
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.classes.append(
            _ClassInfo(node.name, bases, methods, self.path, node.lineno)
        )
        self.generic_visit(node)

    # -- RPR004 (assignments) -------------------------------------------
    def _check_store_target(self, target: ast.expr, node: ast.AST) -> None:
        if not (self._predict_in_stack and self._predict_in_stack[-1]):
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            if _call_root(target) == "predict_in":
                self._report(
                    "RPR004",
                    "assignment into an incoming prediction vector; copy "
                    "predict_in before overriding slots (§III-F)",
                    node,
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, node)
        self.generic_visit(node)


def _resolve_rpr003(
    all_classes: List[_ClassInfo], suppressed
) -> List[Diagnostic]:
    """Cross-file hierarchy walk: fire without on_repair anywhere above."""
    by_name: Dict[str, _ClassInfo] = {c.name: c for c in all_classes}

    def ancestry(info: _ClassInfo) -> Iterable[_ClassInfo]:
        stack, seen = [info], set()
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            yield current
            for base in current.bases:
                if base in by_name:
                    stack.append(by_name[base])

    def derives_from_component(info: _ClassInfo) -> bool:
        return any(
            "PredictorComponent" in c.bases for c in ancestry(info)
        )

    diags: List[Diagnostic] = []
    for info in all_classes:
        if not derives_from_component(info):
            continue
        chain = list(ancestry(info))
        defines_fire = any("fire" in c.methods for c in chain)
        defines_repair = any("on_repair" in c.methods for c in chain)
        if defines_fire and not defines_repair:
            if suppressed(info.file, "RPR003", info.line):
                continue
            diags.append(
                diagnostic(
                    "RPR003",
                    f"class {info.name} speculatively updates state in "
                    f"fire() but defines no on_repair(); squashed packets "
                    f"will corrupt its state (§III-E)",
                    info.file,
                    file=info.file,
                    line=info.line,
                    col=1,
                )
            )
    return diags


def _check_noqa_codes(path: str, lines: List[str]) -> List[Diagnostic]:
    """RPR005: a noqa comment naming a nonexistent rule suppresses nothing.

    The typo'd suppression reads as if the rule were being waived while the
    real diagnostic keeps firing (or, for a since-deleted rule, as if it
    were still enforced), so unknown codes get their own warning.
    """
    diags: List[Diagnostic] = []
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None or match.group("codes") is None:
            continue
        codes = [c.strip() for c in match.group("codes").split(",") if c.strip()]
        for code in codes:
            if code not in RULES:
                diags.append(
                    diagnostic(
                        "RPR005",
                        f"noqa[{code}] names no registered rule; this "
                        f"suppression has no effect",
                        path,
                        file=path,
                        line=lineno,
                        col=match.start() + 1,
                    )
                )
    return diags


def _is_deterministic_scope(path: Path, root: Path) -> bool:
    try:
        parts = path.resolve().relative_to(root.resolve()).parts
    except ValueError:
        return True  # explicit out-of-tree paths get the full rule set
    return any(part in DETERMINISTIC_PACKAGES for part in parts)


def default_lint_root() -> Path:
    """The shipped source tree (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> List[Diagnostic]:
    """Lint python files; directories are walked recursively."""
    root = root or default_lint_root()
    if paths:
        candidates: List[Path] = []
        for entry in paths:
            p = Path(entry)
            candidates.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    else:
        candidates = sorted(root.rglob("*.py"))

    diags: List[Diagnostic] = []
    all_classes: List[_ClassInfo] = []
    sources: Dict[str, List[str]] = {}
    for path in candidates:
        try:
            text = path.read_text()
        except OSError as exc:
            diags.append(
                diagnostic("RPR001", f"unreadable file: {exc}", str(path),
                           file=str(path))
            )
            continue
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            diags.append(
                diagnostic(
                    "RPR002",
                    f"file does not parse: {exc.msg}",
                    str(path),
                    file=str(path),
                    line=exc.lineno or 0,
                    col=(exc.offset or 0),
                )
            )
            continue
        lines = text.splitlines()
        sources[str(path)] = lines
        diags.extend(_check_noqa_codes(str(path), lines))
        linter = _FileLinter(
            str(path), lines, _is_deterministic_scope(path, root)
        )
        linter.visit(tree)
        diags.extend(linter.diags)
        all_classes.extend(linter.classes)

    def suppressed(file: str, code: str, line: int) -> bool:
        lines = sources.get(file, [])
        if not 1 <= line <= len(lines):
            return False
        match = _NOQA_RE.search(lines[line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        return codes is None or code in {c.strip() for c in codes.split(",")}

    diags.extend(_resolve_rpr003(all_classes, suppressed))
    diags.sort(key=lambda d: (d.file or "", d.line or 0, d.code))
    return diags
