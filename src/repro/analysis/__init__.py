"""Static analysis of predictor compositions (``repro check``).

Three analyzers over the COBRA framework's own artifacts:

- :mod:`repro.analysis.topology_check` — structural analysis of parsed
  topology trees (TOP rules);
- :mod:`repro.analysis.contracts` — a dynamic harness driving every library
  component through the §III interface contract (CON rules);
- :mod:`repro.analysis.lints` — AST lints for reproducibility hazards in
  the source tree (RPR rules);
- :mod:`repro.analysis.spec_check` — conformance of every component's
  imperative implementation against its declarative
  :class:`repro.spec.ComponentSpec` (SPEC rules).

All four emit :class:`~repro.analysis.diagnostics.Diagnostic` records with
stable rule codes; ``docs/static_analysis.md`` is the rule catalog.
"""

from repro.analysis.contracts import (
    StimulusDims,
    check_component,
    check_library,
    dims_for,
    state_fingerprint,
)
from repro.analysis.diagnostics import (
    DIAGNOSTIC_SCHEMA,
    RULES,
    Diagnostic,
    exit_code,
    filter_ignored,
    to_json,
    validate_report,
)
from repro.analysis.lints import lint_paths
from repro.analysis.spec_check import (
    check_component_spec,
    check_library_specs,
    spec_coverage,
)
from repro.analysis.topology_check import check_spec, check_topology

__all__ = [
    "DIAGNOSTIC_SCHEMA",
    "Diagnostic",
    "RULES",
    "StimulusDims",
    "check_component",
    "check_component_spec",
    "check_library",
    "check_library_specs",
    "check_spec",
    "check_topology",
    "dims_for",
    "spec_coverage",
    "exit_code",
    "filter_ignored",
    "lint_paths",
    "state_fingerprint",
    "to_json",
    "validate_report",
]
