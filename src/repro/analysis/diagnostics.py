"""Structured diagnostics for the ``repro check`` static-analysis pass.

Every analyzer (topology, component contracts, source lints) reports
:class:`Diagnostic` records with a stable rule code, so violations can be
suppressed, filtered, and consumed by tooling.  The JSON document emitted by
``repro check --json`` is described by :data:`DIAGNOSTIC_SCHEMA`; the rule
catalog lives in :data:`RULES` and is rendered in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

ERROR = "error"
WARN = "warn"

#: Rule catalog: code -> (severity, one-line summary).  The severity here is
#: the rule's fixed severity: a code never mixes severities, so CI gating on
#: "any error diagnostic" is stable across releases.
RULES: Dict[str, tuple] = {
    # Topology analyzer (repro.analysis.topology_check)
    "TOP000": (ERROR, "topology failed to parse or validate"),
    "TOP001": (WARN, "override chain is not latency-monotonic"),
    "TOP002": (ERROR, "arbitration child responds after its selector"),
    "TOP003": (ERROR, "declared meta_bits disagree with the MetaCodec layout"),
    "TOP004": (WARN, "component is shadowed and can never win a redirect"),
    "TOP005": (WARN, "no target-providing component (BTB/uBTB) in the topology"),
    "TOP006": (ERROR, "history demand exceeds the composed history provider"),
    "TOP007": (WARN, "per-entry metadata exceeds the history-file bit budget"),
    # Component contract harness (repro.analysis.contracts)
    "CON001": (ERROR, "metadata does not fit the declared meta_bits"),
    "CON002": (ERROR, "predict_in slots not predicted are not passed through"),
    "CON003": (ERROR, "latency-1 component consumes a history"),
    "CON004": (ERROR, "reset() does not restore the power-on state"),
    "CON005": (ERROR, "fire followed by on_repair does not round-trip state"),
    "CON006": (ERROR, "storage() breakdown does not sum to declared totals"),
    "CON007": (ERROR, "component is not deterministic under a fixed seed"),
    "CON008": (ERROR, "branchless packet changes state despite branchless_inert"),
    "CON009": (ERROR, "columnar kernel lookup diverges from the scalar lookup"),
    # Source lints (repro.analysis.lints)
    "RPR001": (ERROR, "unseeded RNG or wall-clock use in deterministic code"),
    "RPR002": (ERROR, "mutable default argument"),
    "RPR003": (ERROR, "fire overridden without on_repair"),
    "RPR004": (ERROR, "direct mutation of an incoming PredictionVector"),
    "RPR005": (WARN, "noqa comment references an unknown rule code"),
    # Spec conformance (repro.analysis.spec_check)
    "SPEC001": (ERROR, "library component has no spec() and no waiver"),
    "SPEC002": (ERROR, "spec storage geometry disagrees with storage()/area"),
    "SPEC003": (ERROR, "spec IndexFn does not reproduce the observed index"),
    "SPEC004": (ERROR, "spec history demand disagrees with required_*_bits"),
    "SPEC005": (ERROR, "spec payload fields disagree with the MetaCodec"),
    "SPEC006": (ERROR, "spec kernel class disagrees with columnar_kernel()"),
    "SPEC007": (ERROR, "spec-derived branchless_inert disagrees with the flag"),
    "SPEC008": (ERROR, "component spec is malformed"),
}


def rule_severity(code: str) -> str:
    """The fixed severity of a rule code (unknown codes are errors)."""
    return RULES.get(code, (ERROR, ""))[0]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static-analysis pass.

    ``subject`` names what the finding is about — a component instance, a
    topology string, or a source file.  ``file``/``line``/``col`` locate
    source-level findings (lints and, for topology parse errors, the column
    within the spec string).
    """

    code: str
    severity: str
    message: str
    subject: str
    file: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }

    def format(self) -> str:
        location = ""
        if self.file is not None:
            location = f" ({self.file}"
            if self.line is not None:
                location += f":{self.line}"
                if self.col is not None:
                    location += f":{self.col}"
            location += ")"
        return (
            f"{self.severity.upper():5s} {self.code} [{self.subject}] "
            f"{self.message}{location}"
        )


def diagnostic(code: str, message: str, subject: str, **location) -> Diagnostic:
    """Build a diagnostic with the rule's catalog severity."""
    return Diagnostic(code, rule_severity(code), message, subject, **location)


def filter_ignored(
    diagnostics: Iterable[Diagnostic], ignore: Sequence[str]
) -> List[Diagnostic]:
    """Drop diagnostics whose code appears in ``ignore`` (case-insensitive)."""
    ignored = {code.strip().upper() for code in ignore if code.strip()}
    return [d for d in diagnostics if d.code.upper() not in ignored]


def count_errors(diagnostics: Iterable[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.severity == ERROR)


def count_warnings(diagnostics: Iterable[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.severity == WARN)


def exit_code(diagnostics: Iterable[Diagnostic], strict: bool = False) -> int:
    """The process exit code for a set of diagnostics.

    Errors always fail; ``strict`` promotes warnings to failures too.
    """
    diags = list(diagnostics)
    if count_errors(diags):
        return 1
    if strict and count_warnings(diags):
        return 1
    return 0


#: Version of the ``repro check --json`` report document.  Version 2
#: widened rule codes from exactly three letters to three-or-four
#: (the SPEC family) and added RPR005.
REPORT_VERSION = 2

#: JSON-schema (draft-07 subset) of ``repro check --json`` output.
DIAGNOSTIC_SCHEMA: Dict[str, object] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro check diagnostics",
    "type": "object",
    "required": ["version", "errors", "warnings", "diagnostics"],
    "properties": {
        "version": {"type": "integer", "const": REPORT_VERSION},
        "errors": {"type": "integer", "minimum": 0},
        "warnings": {"type": "integer", "minimum": 0},
        "diagnostics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "severity", "message", "subject"],
                "properties": {
                    "code": {"type": "string", "pattern": "^[A-Z]{3,4}[0-9]{3}$"},
                    "severity": {"enum": ["error", "warn"]},
                    "message": {"type": "string"},
                    "subject": {"type": "string"},
                    "file": {"type": ["string", "null"]},
                    "line": {"type": ["integer", "null"]},
                    "col": {"type": ["integer", "null"]},
                },
            },
        },
    },
}


def to_json(diagnostics: Sequence[Diagnostic], indent: int = 2) -> str:
    """Serialize diagnostics into the documented JSON report."""
    document = {
        "version": REPORT_VERSION,
        "errors": count_errors(diagnostics),
        "warnings": count_warnings(diagnostics),
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(document, indent=indent)


def validate_report(document: Dict[str, object]) -> List[str]:
    """Check a parsed ``--json`` report against :data:`DIAGNOSTIC_SCHEMA`.

    A minimal in-tree validator (no jsonschema dependency); returns a list
    of human-readable problems, empty when the document conforms.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["report is not a JSON object"]
    for key in ("version", "errors", "warnings", "diagnostics"):
        if key not in document:
            problems.append(f"missing key {key!r}")
    if document.get("version") != REPORT_VERSION:
        problems.append(f"unknown report version {document.get('version')!r}")
    for key in ("errors", "warnings"):
        value = document.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{key} must be a non-negative integer")
    diags = document.get("diagnostics")
    if not isinstance(diags, list):
        return problems + ["diagnostics must be an array"]
    for i, entry in enumerate(diags):
        if not isinstance(entry, dict):
            problems.append(f"diagnostics[{i}] is not an object")
            continue
        for key in ("code", "severity", "message", "subject"):
            if not isinstance(entry.get(key), str):
                problems.append(f"diagnostics[{i}].{key} must be a string")
        code = entry.get("code")
        if isinstance(code, str) and not (
            len(code) in (6, 7)
            and code[:-3].isalpha()
            and code[:-3].isupper()
            and code[-3:].isdigit()
        ):
            problems.append(f"diagnostics[{i}].code {code!r} is malformed")
        if entry.get("severity") not in ("error", "warn"):
            problems.append(
                f"diagnostics[{i}].severity {entry.get('severity')!r} invalid"
            )
        for key, kind in (("file", str), ("line", int), ("col", int)):
            value = entry.get(key)
            if value is not None and not isinstance(value, kind):
                problems.append(f"diagnostics[{i}].{key} must be {kind.__name__}")
    return problems
