"""Deep structural analysis of parsed predictor topologies (TOP rules).

The parser and :func:`~repro.core.topology.validate_topology` reject
malformed topologies; this analyzer goes further and flags *well-formed*
compositions that cannot behave as intended — latency inversions that make
a sub-component's output unreachable, metadata layouts that disagree with
the declared ``meta_bits``, history demands the composed providers cannot
satisfy, and compositions with no way to produce a branch target.

Rules
-----
======  ========  =======================================================
code    severity  finding
======  ========  =======================================================
TOP000  error     spec failed to parse or validate
TOP001  warn      override chain not latency-monotonic (§III-A ordering)
TOP002  error     arbitration child slower than its selector
TOP003  error     declared meta_bits != MetaCodec layout width
TOP004  warn      component shadowed by a total predictor above it
TOP005  warn      no target-providing component (BTB/uBTB)
TOP006  error     required history bits exceed the composed provider
TOP007  warn      per-entry metadata exceeds the history-file budget
======  ========  =======================================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.core.composer import ComposerConfig
from repro.core.events import PredictRequest
from repro.core.interface import InterfaceError, PredictorComponent
from repro.core.parser import ComponentLibrary, TopologyParseError, parse_topology
from repro.core.prediction import PredictionVector, packet_span
from repro.core.topology import (
    Arbitrate,
    Leaf,
    Override,
    TopologyNode,
    validate_topology,
)

#: Default per-entry metadata budget (bits).  The history file carries the
#: concatenated metadata of every sub-component per in-flight packet; past
#: this width the entry stops resembling the modest "branch info" payload
#: hardware FTQs carry (§IV-B1) and the design deserves a second look.
DEFAULT_META_BUDGET = 256

#: Fetch PCs used to probe whether an override head always hits.  Spread
#: across alignments and regions so a tagged structure (which misses on a
#: fresh table) is never misclassified as total.
_PROBE_PCS = (0x1000, 0x1001, 0x2A57, 0x40000, 0x7FFF3)


def _is_total_predictor(
    component: PredictorComponent, fetch_width: int
) -> bool:
    """True when the component hits on every slot of a fresh-state probe.

    A "total" predictor (e.g. an untagged bimodal) produces a prediction
    for every slot unconditionally, so in ``total > lo`` nothing below it
    that responds *later* can ever win the per-slot hit mux.  Tagged
    structures miss on a fresh table, so a handful of cold probes
    separates the two without inspecting component internals.  Lookups
    must not train state (contract CON002), so probing is side-effect
    free.
    """
    if component.n_inputs != 1:
        return False
    for fetch_pc in _PROBE_PCS:
        width = packet_span(fetch_pc, fetch_width)
        req = PredictRequest(fetch_pc, width, 0, 0, 0)
        default = PredictionVector.fallthrough(fetch_pc, width)
        try:
            out, _ = component.lookup(req, [default])
        except Exception:
            return False
        if not all(slot.hit for slot in out.slots):
            return False
    return True


def _walk(
    node: TopologyNode,
) -> Tuple[List[Override], List[Arbitrate]]:
    overrides: List[Override] = []
    arbitrates: List[Arbitrate] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Override):
            overrides.append(current)
            stack.append(current.lo)
        elif isinstance(current, Arbitrate):
            arbitrates.append(current)
            stack.extend(current.children)
    return overrides, arbitrates


def check_topology(
    root: TopologyNode,
    config: Optional[ComposerConfig] = None,
    meta_budget: int = DEFAULT_META_BUDGET,
    subject: Optional[str] = None,
) -> List[Diagnostic]:
    """Analyze a validated topology tree; return its diagnostics."""
    config = config or ComposerConfig()
    subject = subject or root.describe()
    diags: List[Diagnostic] = []
    try:
        components = validate_topology(root)
    except InterfaceError as exc:
        return [diagnostic("TOP000", str(exc), subject)]

    overrides, arbitrates = _walk(root)

    # TOP001: override latency inversion.  ``hi > lo`` with hi responding
    # before some of lo is legal (the paper's §IV example UBTB1 > GSHARE2
    # does it), but the slower part of lo then only contributes where hi
    # misses — worth flagging, not rejecting.
    for node in overrides:
        lo_latency = node.lo.max_latency
        if node.hi.latency < lo_latency:
            diags.append(
                diagnostic(
                    "TOP001",
                    f"override head {node.hi.name!r} responds at stage "
                    f"{node.hi.latency} but its subordinate chain finishes "
                    f"at stage {lo_latency}; the slower predictions only "
                    f"apply where {node.hi.name!r} misses",
                    subject,
                )
            )

    # TOP002: an arbitration child that answers after its selector is
    # discarded entirely — the selector muxes its predict_in vectors at its
    # own response stage, and Arbitrate.evaluate replaces all later stages
    # with the selector's output.
    for node in arbitrates:
        for child in node.children:
            child_latency = child.max_latency
            if child_latency > node.selector.latency:
                slow = [
                    c.name
                    for c in child.components()
                    if c.latency > node.selector.latency
                ]
                diags.append(
                    diagnostic(
                        "TOP002",
                        f"selector {node.selector.name!r} arbitrates at "
                        f"stage {node.selector.latency} but child "
                        f"{child.describe()!r} responds at stage "
                        f"{child_latency}; predictions from "
                        f"{', '.join(sorted(slow))} are never consulted",
                        subject,
                    )
                )

    # TOP003: components that build their metadata with a MetaCodec must
    # declare exactly the codec's width — a mismatch means the history
    # file reserves the wrong number of bits per entry.
    for component in components:
        codec = getattr(component, "_codec", None)
        width = getattr(codec, "width", None)
        if width is not None and width != component.meta_bits:
            diags.append(
                diagnostic(
                    "TOP003",
                    f"{component.name!r} declares meta_bits="
                    f"{component.meta_bits} but its metadata layout packs "
                    f"{width} bits",
                    subject,
                )
            )

    # TOP004: a component below a *total* override head, responding later
    # than it, can never surface: it neither feeds the head's predict_in
    # (the head reads the staged vector at its own earlier stage) nor wins
    # the per-slot hit mux (the head hits every slot).
    for node in overrides:
        if not _is_total_predictor(node.hi, config.fetch_width):
            continue
        for component in node.lo.components():
            if component.latency > node.hi.latency:
                diags.append(
                    diagnostic(
                        "TOP004",
                        f"{component.name!r} (stage {component.latency}) is "
                        f"shadowed: {node.hi.name!r} hits every slot at "
                        f"stage {node.hi.latency}, so the later prediction "
                        f"never feeds predict_in nor wins the hit mux",
                        subject,
                    )
                )

    # TOP005: without a target provider every taken prediction falls
    # through to the next aligned packet — the composition predicts
    # directions it cannot steer fetch with.
    if not any(c.provides_targets for c in components):
        diags.append(
            diagnostic(
                "TOP005",
                "no component provides branch targets (BTB/uBTB); taken "
                "predictions cannot redirect fetch",
                subject,
            )
        )

    # TOP006: history demands versus the composed providers (§IV-B3).
    providers = (
        ("required_ghist_bits", config.global_history_bits, "global"),
        ("required_lhist_bits", config.local_history_bits, "local"),
        ("required_phist_bits", config.path_history_bits, "path"),
    )
    for component in components:
        for attr, provided, kind in providers:
            required = getattr(component, attr, 0)
            if required > provided:
                diags.append(
                    diagnostic(
                        "TOP006",
                        f"{component.name!r} requires {required} {kind}-"
                        f"history bits but the composed provider keeps "
                        f"{provided}",
                        subject,
                    )
                )

    # TOP007: per-entry metadata budget.
    total_meta = sum(c.meta_bits for c in components)
    if total_meta > meta_budget:
        worst = max(components, key=lambda c: c.meta_bits)
        diags.append(
            diagnostic(
                "TOP007",
                f"history-file entries carry {total_meta} metadata bits, "
                f"over the {meta_budget}-bit budget (largest contributor: "
                f"{worst.name!r} at {worst.meta_bits} bits)",
                subject,
            )
        )

    return diags


def check_spec(
    spec: str,
    library: Optional[ComponentLibrary] = None,
    config: Optional[ComposerConfig] = None,
    meta_budget: int = DEFAULT_META_BUDGET,
) -> List[Diagnostic]:
    """Parse and analyze a topology string; parse failures become TOP000."""
    if library is None:
        from repro.components.library import standard_library

        fetch_width = config.fetch_width if config else 4
        library = standard_library(fetch_width=fetch_width)
    try:
        root = parse_topology(spec, library)
    except TopologyParseError as exc:
        return [
            diagnostic(
                "TOP000",
                exc.reason,
                spec,
                col=exc.column,
            )
        ]
    except InterfaceError as exc:
        return [diagnostic("TOP000", str(exc), spec)]
    return check_topology(root, config, meta_budget, subject=spec)
