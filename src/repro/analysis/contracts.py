"""Dynamic contract checking of predictor sub-components (CON rules).

Drives every component the library can build through a seeded stimulus and
checks the §III interface invariants that static inspection cannot see:
metadata widths, predict_in pass-through, latency-1 history isolation
(Fig. 2), reset completeness, fire/repair round-trips, storage accounting,
and same-seed determinism.

Rules
-----
======  ========================================================
code    finding (all errors)
======  ========================================================
CON001  metadata does not fit the declared meta_bits
CON002  predict_in slots not predicted are not passed through
CON003  latency-1 component's output depends on a history
CON004  reset() does not restore the power-on state
CON005  fire followed by on_repair does not round-trip state
CON006  storage() breakdown does not sum to declared totals
CON007  same seed, different behavior (non-determinism)
CON008  branchless packet changes state despite branchless_inert
CON009  columnar kernel lookup diverges from the scalar lookup
======  ========================================================

CON008 guards the replay backend's fast path: packets with no control-flow
instruction are skipped entirely (:mod:`repro.backends.packets`), which is
only exact if lookup + fire + on_update on such a packet leave the
component's state untouched.  Components that do learn on branchless
packets must override ``branchless_inert = False`` (the composed predictor
then disables the skip).

CON009 guards the batch-kernel fast path the same way: a component that
advertises a ``columnar_kernel`` promises the kernel's batched ``lookup``
reproduces the scalar ``lookup`` slot for slot against the same frozen
tables.  The check sweeps a seeded batch of random packets (random fetch
PCs, global histories, and input vectors) through both paths on the
stimulus-warmed instance and compares every produced slot.

Determinism and reset are checked with *state fingerprints*: a canonical
hash over the component's full object graph (numpy arrays by dtype, shape
and bytes; containers recursively; plain objects by attribute).  Two
instances built the same way fingerprint identically, so "reset restores
power-on state" reduces to comparing a driven-then-reset instance against
an untouched twin.

Stimulus dimensions are derived from each component's declarative
:class:`repro.spec.ComponentSpec` when it provides one (see
:func:`dims_for`): fetch PCs span every table's index plus tag width, and
history widths cover at least the spec's declared demand.  Components
without a spec fall back to the historical fixed dimensions.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import InterfaceError, PredictorComponent
from repro.core.parser import ComponentLibrary
from repro.core.prediction import PredictionVector, SlotPrediction, packet_span

DEFAULT_SEED = 0xC0B7A
DEFAULT_STEPS = 48
_FETCH_WIDTH = 4
_TARGET_BITS = 30
_MAX_PC_BITS = 30


@dataclass(frozen=True)
class StimulusDims:
    """Dimensions of the seeded stimulus the harness drives.

    The defaults are the historical hand-coded constants; :func:`dims_for`
    widens them per component from its declarative spec so deep tables and
    long histories are actually exercised end to end.
    """

    fetch_width: int = _FETCH_WIDTH
    pc_bits: int = 20
    ghist_bits: int = 64
    lhist_bits: int = 32
    phist_bits: int = 32


DEFAULT_DIMS = StimulusDims()


def dims_for(component: PredictorComponent) -> StimulusDims:
    """Derive stimulus dimensions from a component's declarative spec.

    Fetch PCs must be wide enough that every spec table sees distinct
    indices *and* distinct tags (otherwise a narrow stimulus masks
    aliasing bugs), and each history must be at least as wide as the
    spec's declared demand.  Components without a spec get the defaults.
    """
    try:
        spec = component.spec()
    except Exception:
        spec = None
    if spec is None:
        return DEFAULT_DIMS
    fetch_width = DEFAULT_DIMS.fetch_width
    pc_bits = DEFAULT_DIMS.pc_bits
    for table in spec.tables:
        if table.index is None:
            continue
        fetch_width = max(fetch_width, table.index.fetch_width)
        tag_bits = sum(
            f.bits for f in table.fields if f.name == "tag"
        )
        pc_bits = max(pc_bits, table.index.index_bits + tag_bits)
    return StimulusDims(
        fetch_width=fetch_width,
        pc_bits=min(pc_bits, _MAX_PC_BITS),
        ghist_bits=max(DEFAULT_DIMS.ghist_bits, spec.ghist_bits),
        lhist_bits=max(DEFAULT_DIMS.lhist_bits, spec.lhist_bits),
        phist_bits=max(DEFAULT_DIMS.phist_bits, spec.phist_bits),
    )


# ----------------------------------------------------------------------
# State fingerprinting
# ----------------------------------------------------------------------
def _feed(digest, obj, seen) -> None:
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        digest.update(repr(obj).encode())
        return
    if isinstance(obj, np.ndarray):
        digest.update(b"ndarray")
        digest.update(str(obj.dtype).encode())
        digest.update(str(obj.shape).encode())
        digest.update(np.ascontiguousarray(obj).tobytes())
        return
    if isinstance(obj, np.generic):
        digest.update(repr(obj.item()).encode())
        return
    marker = id(obj)
    if marker in seen:
        digest.update(b"cycle")
        return
    seen.add(marker)
    try:
        if isinstance(obj, (list, tuple, deque)):
            digest.update(f"seq{len(obj)}".encode())
            for item in obj:
                _feed(digest, item, seen)
        elif isinstance(obj, dict):
            digest.update(f"map{len(obj)}".encode())
            for key in sorted(obj, key=repr):
                digest.update(repr(key).encode())
                _feed(digest, obj[key], seen)
        elif isinstance(obj, (set, frozenset)):
            digest.update(f"set{len(obj)}".encode())
            for item in sorted(obj, key=repr):
                digest.update(repr(item).encode())
        elif callable(obj) and not hasattr(obj, "__dict__"):
            digest.update(getattr(obj, "__qualname__", repr(type(obj))).encode())
        else:
            digest.update(type(obj).__name__.encode())
            attrs = {}
            if hasattr(obj, "__dict__"):
                attrs.update(vars(obj))
            for slot in getattr(type(obj), "__slots__", ()):
                if hasattr(obj, slot):
                    attrs[slot] = getattr(obj, slot)
            for key in sorted(attrs):
                if callable(attrs[key]) and not isinstance(
                    attrs[key], PredictorComponent
                ):
                    continue
                digest.update(key.encode())
                _feed(digest, attrs[key], seen)
    finally:
        seen.discard(marker)


def state_fingerprint(obj) -> str:
    """Canonical hash of an object graph's architectural state."""
    digest = hashlib.sha256()
    _feed(digest, obj, set())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Stimulus
# ----------------------------------------------------------------------
def _random_vector(
    rng: random.Random, fetch_pc: int, width: int
) -> PredictionVector:
    slots = []
    for _ in range(width):
        roll = rng.random()
        if roll < 0.45:
            slots.append(
                SlotPrediction(
                    hit=True,
                    is_branch=True,
                    taken=rng.random() < 0.5,
                    target=rng.getrandbits(_TARGET_BITS)
                    if rng.random() < 0.5
                    else None,
                )
            )
        elif roll < 0.6:
            slots.append(
                SlotPrediction(
                    hit=True,
                    is_jump=True,
                    taken=True,
                    target=rng.getrandbits(_TARGET_BITS),
                )
            )
        else:
            slots.append(SlotPrediction())
    return PredictionVector(fetch_pc, slots)


def _stimulus(
    rng: random.Random, n_inputs: int, dims: StimulusDims = DEFAULT_DIMS
) -> Tuple[PredictRequest, List[PredictionVector]]:
    fetch_pc = rng.getrandbits(dims.pc_bits)
    width = packet_span(fetch_pc, dims.fetch_width)
    req = PredictRequest(
        fetch_pc,
        width,
        ghist=rng.getrandbits(dims.ghist_bits),
        lhist=rng.getrandbits(dims.lhist_bits),
        phist=rng.getrandbits(dims.phist_bits),
    )
    inputs = [_random_vector(rng, fetch_pc, width) for _ in range(n_inputs)]
    return req, inputs


def _bundle(
    rng: random.Random,
    req: PredictRequest,
    out: PredictionVector,
    inputs: Sequence[PredictionVector],
    meta: int,
    mispredicted: bool = False,
) -> UpdateBundle:
    br_mask = tuple(
        any(v.slots[i].is_branch for v in inputs) for i in range(req.width)
    )
    taken_mask = tuple(
        br_mask[i] and bool(out.slots[i].taken) for i in range(req.width)
    )
    branch_lanes = [i for i in range(req.width) if br_mask[i]]
    cfi_idx = branch_lanes[0] if branch_lanes and rng.random() < 0.7 else None
    return UpdateBundle(
        fetch_pc=req.fetch_pc,
        width=req.width,
        ghist=req.ghist,
        lhist=req.lhist,
        phist=req.phist,
        meta=meta,
        br_mask=br_mask,
        taken_mask=taken_mask,
        cfi_idx=cfi_idx,
        cfi_taken=bool(cfi_idx is not None and taken_mask[cfi_idx]),
        cfi_target=rng.getrandbits(_TARGET_BITS) if cfi_idx is not None else None,
        cfi_is_br=cfi_idx is not None,
        mispredicted=mispredicted,
        mispredict_idx=cfi_idx if mispredicted else None,
    )


def _branchless_bundle(req: PredictRequest, meta: int) -> UpdateBundle:
    """The commit bundle of a packet containing no control flow at all.

    This is exactly the update the composed pipeline issues for a packet
    the replay fast path would skip (all-False ``br_mask``, no CFI), so
    CON008 exercises the skip's soundness condition directly.
    """
    return UpdateBundle(
        fetch_pc=req.fetch_pc,
        width=req.width,
        ghist=req.ghist,
        lhist=req.lhist,
        phist=req.phist,
        meta=meta,
        br_mask=(False,) * req.width,
        taken_mask=(False,) * req.width,
        cfi_idx=None,
        cfi_taken=False,
        cfi_target=None,
        cfi_is_br=False,
        mispredicted=False,
        mispredict_idx=None,
    )


def _slot_key(slot: SlotPrediction) -> tuple:
    return (slot.hit, slot.is_branch, slot.is_jump, slot.taken, slot.target)


# ----------------------------------------------------------------------
# Per-component checks
# ----------------------------------------------------------------------
class _Reporter:
    def __init__(self, subject: str):
        self.subject = subject
        self.diags: List[Diagnostic] = []
        self._seen_codes = set()

    def report(self, code: str, message: str) -> None:
        # One diagnostic per (component, rule): the first failing step is
        # enough to act on, and repeats would drown the report.
        if code in self._seen_codes:
            return
        self._seen_codes.add(code)
        self.diags.append(diagnostic(code, message, self.subject))


def _check_lookup_contract(
    component: PredictorComponent,
    req: PredictRequest,
    inputs: List[PredictionVector],
    out: PredictionVector,
    meta: int,
    report: _Reporter,
    step: int,
) -> None:
    """CON001 (meta width) and CON002 (pass-through / input mutation)."""
    try:
        component.check_meta(meta)
    except InterfaceError as exc:
        report.report("CON001", f"step {step}: {exc}")

    if component.n_inputs == 1 and not component.provides_targets:
        # Direction predictors must not disturb incoming jump predictions:
        # the slot's kind, direction, and target pass through (§III-F).
        for i, in_slot in enumerate(inputs[0].slots):
            out_slot = out.slots[i]
            if in_slot.is_jump and (
                not out_slot.is_jump
                or out_slot.target != in_slot.target
                or out_slot.taken != in_slot.taken
            ):
                report.report(
                    "CON002",
                    f"step {step}: jump slot {i} came in as "
                    f"{_slot_key(in_slot)} and left as {_slot_key(out_slot)}; "
                    f"unpredicted fields must pass through verbatim",
                )
                break
    if component.n_inputs > 1:
        # A selector's directions must come from its inputs: it chooses
        # among predictions, it does not invent them (§III-F).
        for i, out_slot in enumerate(out.slots):
            if not out_slot.hit or out_slot.is_jump:
                continue
            candidates = {v.slots[i].taken for v in inputs if v.slots[i].hit}
            candidates.add(inputs[0].slots[i].taken)  # pass-through default
            if out_slot.taken not in candidates:
                report.report(
                    "CON002",
                    f"step {step}: selector produced direction "
                    f"{out_slot.taken} on slot {i}, matching none of its "
                    f"predict_in vectors",
                )
                break


def _check_input_mutation(
    inputs: List[PredictionVector],
    snapshots: List[PredictionVector],
    report: _Reporter,
    step: int,
) -> None:
    for k, (vector, snapshot) in enumerate(zip(inputs, snapshots)):
        if vector != snapshot:
            report.report(
                "CON002",
                f"step {step}: lookup mutated predict_in[{k}] in place; "
                f"components must copy before overriding",
            )


def _check_meta_payload_sweep(
    component: PredictorComponent, report: _Reporter
) -> None:
    """Spec-declared payload boundary sweep (CON001).

    Packs each spec metadata field at its all-ones maximum (all other
    fields zero), plus the all-zero word, and requires ``check_meta`` to
    accept every word: the spec's LSB-first field layout must fit the
    component's declared ``meta_bits`` at every field's extreme.
    """
    try:
        spec = component.spec()
    except Exception:
        return  # a raising spec() is SPEC008's finding, not a CON one
    if spec is None or not spec.meta_fields:
        return
    words: List[Tuple[str, int]] = [("all-zero", 0)]
    offset = 0
    for field in spec.meta_fields:
        lane = (1 << field.bits) - 1
        word = 0
        for k in range(field.count):
            word |= lane << (offset + k * field.bits)
        words.append((field.name, word))
        offset += field.bits * field.count
    for label, word in words:
        try:
            component.check_meta(word)
        except InterfaceError as exc:
            report.report(
                "CON001",
                f"spec payload sweep: the {label} boundary word {word:#x} "
                f"built from the declared meta fields does not fit "
                f"check_meta: {exc}",
            )
            break


def _drive(
    component: PredictorComponent,
    seed: int,
    steps: int,
    report: Optional[_Reporter] = None,
    check_fire_repair: bool = False,
    dims: Optional[StimulusDims] = None,
) -> List[tuple]:
    """Run the stimulus; optionally check contracts; return an output log."""
    if dims is None:
        dims = dims_for(component)
    rng = random.Random(seed)
    log: List[tuple] = []
    overrides_fire = type(component).fire is not PredictorComponent.fire
    for step in range(steps):
        req, inputs = _stimulus(rng, component.n_inputs, dims)
        snapshots = [v.copy() for v in inputs]
        out, meta = component.lookup(req, inputs)
        if report is not None:
            _check_lookup_contract(component, req, inputs, out, meta, report, step)
            _check_input_mutation(inputs, snapshots, report, step)
        log.append((req.fetch_pc, meta, tuple(_slot_key(s) for s in out.slots)))

        bundle = _bundle(rng, req, out, inputs, meta)
        if overrides_fire:
            if check_fire_repair and report is not None:
                before = state_fingerprint(component)
                component.fire(bundle)
                component.on_repair(bundle)
                if state_fingerprint(component) != before:
                    report.report(
                        "CON005",
                        f"step {step}: state after fire + on_repair differs "
                        f"from the state before fire; repair must undo the "
                        f"speculative update exactly",
                    )
                component.fire(bundle)  # keep speculative state advancing
            else:
                component.fire(bundle)
        event = rng.random()
        if event < 0.25:
            component.on_mispredict(
                _bundle(rng, req, out, inputs, meta, mispredicted=True)
            )
        elif event < 0.4 and overrides_fire:
            component.on_repair(bundle)
        else:
            component.on_update(bundle)
    return log


def check_component(
    factory: Callable[[str, int], PredictorComponent],
    base: str,
    latency: int = 2,
    seed: int = DEFAULT_SEED,
    steps: int = DEFAULT_STEPS,
) -> List[Diagnostic]:
    """Run the full CON rule set against one component factory."""
    subject = f"{base}{latency}"
    report = _Reporter(subject)
    try:
        component = factory(f"{base.lower()}_a", latency)
        twin = factory(f"{base.lower()}_a", latency)
    except Exception as exc:
        return [
            diagnostic(
                "CON007",
                f"factory raised while instantiating at latency {latency}: "
                f"{exc}",
                subject,
            )
        ]

    # CON006: storage accounting (static — check before driving).
    storage = component.storage()
    declared = storage.sram_bits + storage.flop_bits
    if storage.breakdown and sum(storage.breakdown.values()) != declared:
        report.report(
            "CON006",
            f"storage breakdown sums to {sum(storage.breakdown.values())} "
            f"bits but sram_bits + flop_bits = {declared}",
        )
    if storage.sram_bits < 0 or storage.flop_bits < 0 or storage.access_bits < 0:
        report.report("CON006", "storage report contains negative bit counts")

    # CON001 (static leg): every spec payload field at its boundary must
    # fit the declared meta width before any stimulus runs.
    _check_meta_payload_sweep(component, report)

    # CON001/CON002/CON005 + stimulus drive.  Stimulus dimensions come
    # from the component's declarative spec (index + tag reach, history
    # demand) rather than hand-coded constants.
    dims = dims_for(component)
    log_a = _drive(component, seed, steps, report, check_fire_repair=True, dims=dims)

    # CON004: a driven-then-reset instance must fingerprint identically to
    # an untouched twin.
    component.reset()
    if state_fingerprint(component) != state_fingerprint(twin):
        report.report(
            "CON004",
            "reset() left state behind: the driven-then-reset instance "
            "differs from a freshly constructed twin",
        )

    # CON007: same seed, same behavior.  The twin replays the identical
    # stimulus; outputs, metadata, and the final fingerprint must match.
    log_b = _drive(twin, seed, steps, report=None, check_fire_repair=False, dims=dims)
    replay = factory(f"{base.lower()}_a", latency)
    log_c = _drive(replay, seed, steps, report=None, check_fire_repair=False, dims=dims)
    if log_b != log_c or state_fingerprint(twin) != state_fingerprint(replay):
        report.report(
            "CON007",
            "two instances fed the identical seeded stimulus diverged; "
            "component behavior must be a pure function of its inputs",
        )
    del log_a

    # CON008: if the component claims branchless_inert, a branchless
    # packet's full lookup + fire + on_update cycle must leave its state
    # bit-identical — the replay backend skips such packets outright.  The
    # check runs on the stimulus-warmed ``replay`` instance so populated
    # tables are covered, not just power-on zeros.
    if component.branchless_inert:
        rng = random.Random(seed ^ 0xB8)
        overrides_fire = type(replay).fire is not PredictorComponent.fire
        for step in range(8):
            before = state_fingerprint(replay)
            req, inputs = _stimulus(rng, replay.n_inputs, dims)
            _out, meta = replay.lookup(req, inputs)
            bundle = _branchless_bundle(req, meta)
            if overrides_fire:
                replay.fire(bundle)
            replay.on_update(bundle)
            if state_fingerprint(replay) != before:
                report.report(
                    "CON008",
                    f"step {step}: a branchless packet (all-False br_mask, "
                    f"no CFI) changed component state, but the component "
                    f"claims branchless_inert; the replay fast path would "
                    f"skip this packet — override branchless_inert = False",
                )
                break

    # CON009: a component advertising a columnar kernel promises the
    # kernel's batched lookup matches the scalar lookup slot for slot
    # against the same frozen tables.  The sweep runs on the
    # stimulus-warmed ``replay`` instance (same rationale as CON008: cover
    # populated tables, not just power-on zeros); the kernel batch runs
    # first so both paths read the identical table snapshot.
    kernel = replay.columnar_kernel()
    if kernel is not None and replay.n_inputs == 1:
        from repro.kernels.engine import (
            state_from_vectors,
            state_matches_vector,
            stimulus_context,
        )

        rng = random.Random(seed ^ 0xC9)
        reqs = []
        vectors = []
        for _ in range(16):
            req, inputs = _stimulus(rng, 1, dims)
            reqs.append(req)
            vectors.append(inputs[0])
        ctx = stimulus_context(
            [r.fetch_pc for r in reqs], [r.ghist for r in reqs], dims.fetch_width
        )
        batch = state_from_vectors(vectors, ctx)
        try:
            batch = kernel.lookup(ctx, batch)
        except Exception as exc:
            report.report(
                "CON009",
                f"columnar kernel lookup raised on the stimulus sweep: "
                f"{type(exc).__name__}: {exc}",
            )
            batch = None
        if batch is not None:
            for p, (req, vector) in enumerate(zip(reqs, vectors)):
                out, _meta = replay.lookup(req, [vector.copy()])
                ok, why = state_matches_vector(
                    batch, p, int(ctx.offset[p]), out
                )
                if not ok:
                    report.report(
                        "CON009",
                        f"packet {p} (fetch_pc {req.fetch_pc:#x}): columnar "
                        f"kernel lookup diverged from the scalar lookup — "
                        f"{why}; the batch-kernel replay path would predict "
                        f"differently than the scalar walker",
                    )
                    break

    # CON003: if the component can be built at latency 1, its output must
    # not depend on any history field — histories only arrive at the end of
    # cycle 1 (Fig. 2), so a latency-1 response physically cannot see them.
    try:
        fast = factory(f"{base.lower()}_a", 1)
    except Exception:
        fast = None  # construction rejects latency 1: contract upheld
    if fast is not None:
        fast_dims = dims_for(fast)
        hist_bits = {
            "ghist": fast_dims.ghist_bits,
            "lhist": fast_dims.lhist_bits,
            "phist": fast_dims.phist_bits,
        }
        rng = random.Random(seed)
        violated = False
        for step in range(steps // 2):
            if violated:
                break
            req, inputs = _stimulus(rng, fast.n_inputs, fast_dims)
            out_a, meta_a = fast.lookup(req, [v.copy() for v in inputs])
            # Perturb each history independently, single-bit and full-width
            # flips both, so neither parity tricks nor wide hashes escape.
            for field in ("ghist", "lhist", "phist"):
                for flip in (1, (1 << hist_bits[field]) - 1):
                    shifted = PredictRequest(
                        req.fetch_pc,
                        req.width,
                        ghist=req.ghist ^ (flip if field == "ghist" else 0),
                        lhist=req.lhist ^ (flip if field == "lhist" else 0),
                        phist=req.phist ^ (flip if field == "phist" else 0),
                    )
                    out_b, meta_b = fast.lookup(
                        shifted, [v.copy() for v in inputs]
                    )
                    if meta_a != meta_b or any(
                        _slot_key(a) != _slot_key(b)
                        for a, b in zip(out_a.slots, out_b.slots)
                    ):
                        report.report(
                            "CON003",
                            f"step {step}: at latency 1 the output changed "
                            f"when only {field} changed; histories are not "
                            f"available to latency-1 components (Fig. 2)",
                        )
                        violated = True
                        break
                if violated:
                    break

    return report.diags


def check_library(
    library: Optional[ComponentLibrary] = None,
    seed: int = DEFAULT_SEED,
    steps: int = DEFAULT_STEPS,
) -> List[Diagnostic]:
    """Run the contract harness over every base name in the library."""
    if library is None:
        from repro.components.library import standard_library

        library = standard_library()
    diags: List[Diagnostic] = []
    for base in library.known():
        diags.extend(
            check_component(library.factory(base), base, seed=seed, steps=steps)
        )
    return diags
