"""Spec-conformance analyzer: rules SPEC001-SPEC009.

Verifies every library component's imperative implementation against its
declarative :class:`repro.spec.ComponentSpec`:

========  ==============================================================
SPEC001   every ``ComponentLibrary`` base returns a spec or carries a
          registered waiver (:func:`repro.spec.register_waiver`)
SPEC002   storage accounting: spec bit totals equal ``storage()`` —
          SRAM/flop split, per-breakdown-key sums, and the resulting
          :mod:`repro.synthesis.area` mapping — bit for bit
SPEC003   index-hash conformance: each table's declared ``IndexFn``
          reproduces the implementation's observed index on seeded
          probe stimuli
SPEC004   history-demand consistency: spec ghist/lhist/phist bits equal
          the ``required_*_bits`` TOP006 budgets against
SPEC005   meta-width derivation: spec payload fields match the
          ``MetaCodec`` layout (the CON001 codec) and sum to the
          declared ``meta_bits``
SPEC006   update-rule purity: the spec kernel class agrees with
          ``columnar_kernel()``; closed-form components the engine
          could drive must advertise a kernel or carry a waiver
SPEC007   ``branchless_inert`` is derivable from the spec's learn
          triggers and agrees with the declared class flag
SPEC008   the spec itself is well-formed
SPEC009   derivation equivalence: a component whose scalar path executes
          through :mod:`repro.derive` produces bit-identical predictions
          and metadata to its frozen pre-refactor reference
          (:mod:`repro.derive.reference`) on seeded contract stimulus
========  ==============================================================
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, diagnostic
from repro.core.interface import PredictorComponent
from repro.core.parser import ComponentLibrary
from repro.spec import CLOSED_FORM_UPDATES, ComponentSpec, waiver_for

DEFAULT_SEED = 0x5EC5
#: Seeded probe stimuli per table for SPEC003.
PROBES_PER_TABLE = 16


def _library() -> ComponentLibrary:
    from repro.components.library import standard_library

    return standard_library()


def _subjects(component: PredictorComponent) -> Tuple[str, ...]:
    """Waiver lookup keys: the class name and the library base name."""
    subjects = [type(component).__name__]
    base = getattr(component, "base_name", None)
    if base:
        subjects.append(base)
    return tuple(subjects)


# ---------------------------------------------------------------------------
# Individual rule checks (each returns a list of diagnostics).
# ---------------------------------------------------------------------------


def _check_storage(
    component: PredictorComponent, spec: ComponentSpec, subject: str
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    impl = component.storage()
    if (spec.sram_bits, spec.flop_bits) != (impl.sram_bits, impl.flop_bits):
        diags.append(
            diagnostic(
                "SPEC002",
                f"spec declares sram={spec.sram_bits} flop={spec.flop_bits} "
                f"bits but storage() reports sram={impl.sram_bits} "
                f"flop={impl.flop_bits}",
                subject,
            )
        )
    # Per-breakdown-key accounting: each table claims the storage()
    # breakdown keys it accounts for; claimed keys must sum exactly, and
    # the implementation may not report unclaimed non-zero keys.
    claimed = spec.storage_report(component.name).breakdown
    for key, bits in sorted(claimed.items()):
        actual = impl.breakdown.get(key)
        if actual is None:
            diags.append(
                diagnostic(
                    "SPEC002",
                    f"spec table claims breakdown key {key!r} but storage() "
                    f"does not report it",
                    subject,
                )
            )
        elif actual != bits:
            diags.append(
                diagnostic(
                    "SPEC002",
                    f"breakdown {key!r}: spec accounts {bits} bits, "
                    f"storage() reports {actual}",
                    subject,
                )
            )
    for key, bits in sorted(impl.breakdown.items()):
        if bits and key not in claimed:
            diags.append(
                diagnostic(
                    "SPEC002",
                    f"storage() reports {bits} bits under {key!r} that no "
                    f"spec table accounts for",
                    subject,
                )
            )
    # Same bits through the same silicon mapping: the spec's report must
    # price identically to the implementation's in the area model.
    from repro.synthesis.area import AreaModel, spec_area

    model = AreaModel()
    declared = spec_area(spec, component.name, model)
    actual_area = model.report_area(impl)
    if declared != actual_area:
        diags.append(
            diagnostic(
                "SPEC002",
                f"spec area {declared:.1f}um2 != storage() area "
                f"{actual_area:.1f}um2 under the synthesis model",
                subject,
            )
        )
    return diags


def _check_indexing(
    component: PredictorComponent,
    spec: ComponentSpec,
    subject: str,
    seed: int,
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    rng = random.Random(f"spec-probe:{seed}:{subject}")
    for table in spec.tables:
        if table.index is None or table.index.scheme in ("none", "custom"):
            continue
        # The declared address space must cover exactly the declared rows.
        if table.entries != (1 << table.index.index_bits):
            diags.append(
                diagnostic(
                    "SPEC003",
                    f"table {table.name!r}: {table.index.index_bits} index "
                    f"bits address {1 << table.index.index_bits} rows but "
                    f"the table declares {table.entries} entries",
                    subject,
                )
            )
            continue
        if table.probe is None:
            continue
        for _ in range(PROBES_PER_TABLE):
            fetch_pc = rng.getrandbits(26)
            ghist = rng.getrandbits(64)
            lhist = rng.getrandbits(32)
            phist = rng.getrandbits(32)
            declared = table.index.compute(fetch_pc, ghist, lhist, phist)
            observed = table.probe(component, fetch_pc, ghist, lhist, phist)
            if declared != observed:
                diags.append(
                    diagnostic(
                        "SPEC003",
                        f"table {table.name!r}: IndexFn({table.index.scheme}) "
                        f"computes {declared} for pc={fetch_pc:#x} "
                        f"ghist={ghist:#x} but the implementation indexes "
                        f"{observed}",
                        subject,
                    )
                )
                break  # one counterexample per table is enough
    return diags


def _check_history(
    component: PredictorComponent, spec: ComponentSpec, subject: str
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for label, declared, required in (
        ("ghist", spec.ghist_bits, component.required_ghist_bits),
        ("lhist", spec.lhist_bits, component.required_lhist_bits),
        ("phist", spec.phist_bits, component.required_phist_bits),
    ):
        if declared != required:
            diags.append(
                diagnostic(
                    "SPEC004",
                    f"spec declares {declared} {label} bits but the component "
                    f"requires {required} (the TOP006 budget)",
                    subject,
                )
            )
    return diags


def _check_meta(
    component: PredictorComponent, spec: ComponentSpec, subject: str
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    if spec.meta_bits != component.meta_bits:
        diags.append(
            diagnostic(
                "SPEC005",
                f"spec payload fields total {spec.meta_bits} bits but the "
                f"component declares meta_bits={component.meta_bits}",
                subject,
            )
        )
    codec = getattr(component, "_codec", None)
    if codec is not None:
        declared = [(f.name, f.bits, f.count) for f in spec.meta_fields]
        actual = list(codec._fields)
        if declared != actual:
            diags.append(
                diagnostic(
                    "SPEC005",
                    f"spec payload layout {declared} does not match the "
                    f"MetaCodec layout {actual}",
                    subject,
                )
            )
    return diags


def _check_kernel(
    component: PredictorComponent, spec: ComponentSpec, subject: str
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    kernel = component.columnar_kernel()
    if spec.kernel == "none" and kernel is not None:
        diags.append(
            diagnostic(
                "SPEC006",
                "columnar_kernel() returns a kernel but the spec declares "
                "kernel='none'",
                subject,
            )
        )
    if spec.kernel != "none" and kernel is None:
        diags.append(
            diagnostic(
                "SPEC006",
                f"spec declares kernel={spec.kernel!r} but columnar_kernel() "
                f"returned None",
                subject,
            )
        )
    if spec.kernel == "closed-form" and not spec.closed_form_updates:
        rules = sorted(
            {t.update for t in spec.tables} - CLOSED_FORM_UPDATES
        )
        diags.append(
            diagnostic(
                "SPEC006",
                f"spec claims a closed-form kernel but declares non-closed "
                f"update rules {rules}",
                subject,
            )
        )
    if (
        kernel is None
        and spec.kernel == "none"
        and spec.closed_form_updates
        and spec.engine_drivable
        and waiver_for(_subjects(component), "SPEC006") is None
    ):
        diags.append(
            diagnostic(
                "SPEC006",
                "every update rule is closed-form and the columnar engine "
                "could drive this component, but it advertises no kernel; "
                "implement columnar_kernel() or register a SPEC006 waiver",
                subject,
            )
        )
    return diags


#: Seeded stimulus length for the SPEC009 differential drive.
DERIVED_STEPS = 96


def _check_derived(
    component: PredictorComponent, subject: str, seed: int
) -> List[Diagnostic]:
    """SPEC009: derived scalar path vs the frozen pre-refactor reference."""
    # Lazy imports: contracts pulls in the stimulus machinery and derive
    # pulls in the component families; neither belongs at analyzer import.
    from repro.analysis.contracts import _drive
    from repro.derive.reference import twin_dims, twin_pair

    pair = twin_pair(component)
    if pair is None:
        return []
    derived, reference = pair
    dims = twin_dims(derived)
    derived_log = _drive(derived, seed, DERIVED_STEPS, dims=dims)
    reference_log = _drive(reference, seed, DERIVED_STEPS, dims=dims)
    for step, (got, want) in enumerate(zip(derived_log, reference_log)):
        if got != want:
            pc, meta, slots = got
            _, ref_meta, ref_slots = want
            detail = (
                f"meta {meta} != {ref_meta}"
                if meta != ref_meta
                else f"slots {slots} != {ref_slots}"
            )
            return [
                diagnostic(
                    "SPEC009",
                    f"derived scalar path diverges from the pre-refactor "
                    f"reference at step {step} (pc={pc:#x}): {detail}",
                    subject,
                )
            ]
    return []


def _check_inert(
    component: PredictorComponent, spec: ComponentSpec, subject: str
) -> List[Diagnostic]:
    if spec.branchless_inert != component.branchless_inert:
        return [
            diagnostic(
                "SPEC007",
                f"learn triggers {list(spec.learns_from)} derive "
                f"branchless_inert={spec.branchless_inert} but the class "
                f"declares {component.branchless_inert}",
                subject,
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


def check_component_spec(
    component: PredictorComponent,
    subject: Optional[str] = None,
    seed: int = DEFAULT_SEED,
) -> List[Diagnostic]:
    """Run SPEC001-SPEC009 against one instantiated component."""
    subject = subject or component.name
    try:
        spec = component.spec()
    except Exception as exc:  # noqa: BLE001 - a crashing spec is a finding
        return [diagnostic("SPEC008", f"spec() raised: {exc!r}", subject)]
    if spec is None:
        if waiver_for(_subjects(component), "SPEC001") is not None:
            return []
        return [
            diagnostic(
                "SPEC001",
                f"{type(component).__name__} returns no spec and no SPEC001 "
                f"waiver is registered",
                subject,
            )
        ]
    problems = spec.validate()
    if problems:
        return [
            diagnostic("SPEC008", problem, subject) for problem in problems
        ]
    diags: List[Diagnostic] = []
    diags.extend(_check_storage(component, spec, subject))
    diags.extend(_check_indexing(component, spec, subject, seed))
    diags.extend(_check_history(component, spec, subject))
    diags.extend(_check_meta(component, spec, subject))
    diags.extend(_check_kernel(component, spec, subject))
    diags.extend(_check_inert(component, spec, subject))
    diags.extend(_check_derived(component, subject, seed))
    return diags


def check_library_specs(
    library: Optional[ComponentLibrary] = None,
    seed: int = DEFAULT_SEED,
    latency: int = 2,
) -> List[Diagnostic]:
    """Run the spec analyzer over every base name in the library."""
    if library is None:
        library = _library()
    diags: List[Diagnostic] = []
    for base in library.known():
        subject = f"{base}{latency}"
        try:
            component = library.factory(base)(base.lower(), latency)
        except Exception as exc:  # noqa: BLE001
            diags.append(
                diagnostic(
                    "SPEC008",
                    f"factory raised while instantiating at latency "
                    f"{latency}: {exc!r}",
                    subject,
                )
            )
            continue
        diags.extend(check_component_spec(component, subject, seed))
    return diags


def spec_coverage(
    library: Optional[ComponentLibrary] = None,
) -> Tuple[List[str], List[str]]:
    """(covered, missing) base names: spec or waiver vs neither."""
    if library is None:
        library = _library()
    covered: List[str] = []
    missing: List[str] = []
    for base in library.known():
        try:
            component = library.factory(base)(base.lower(), 2)
            has_spec = component.spec() is not None
        except Exception:  # noqa: BLE001
            has_spec = False
            component = None
        subjects = _subjects(component) if component is not None else (base,)
        if has_spec or waiver_for(subjects, "SPEC001") is not None:
            covered.append(base)
        else:
            missing.append(base)
    return covered, missing


def assert_full_coverage(library: Optional[ComponentLibrary] = None) -> None:
    """Raise unless every library base has a spec or a SPEC001 waiver.

    The CI spec-coverage gate calls this; a new library component cannot
    land without declaring itself.
    """
    covered, missing = spec_coverage(library)
    if missing:
        raise AssertionError(
            f"library components without spec() or SPEC001 waiver: {missing} "
            f"(covered: {len(covered)})"
        )
