"""Statistical corrector — library extension (GEHL-style, [Seznec 2016]).

The TAGE-SC-L design the paper's TAGE-L topology approximates includes a
statistical corrector; the paper omits it ("only with no statistical
corrector") but names it as implementable with the COBRA interface
(§III-G).  This component demonstrates that: it sits *above* a TAGE chain,
consumes the incoming prediction, and reverts it when several short-history
weighted tables strongly disagree with it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro._util import fold_history, hash_pc, log2_exact, sign_extend
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector


class StatisticalCorrector(PredictorComponent):
    """Small GEHL-like corrector over the incoming prediction.

    Each table holds centered signed counters indexed by PC XOR a folded
    short history XOR *the incoming predicted direction* — conditioning on
    the incoming prediction is what separates a statistical corrector from
    a plain GEHL predictor: the counters learn "given this context, when
    the primary predictor says taken, what actually happens", so the
    corrector only reverts predictions the primary gets *systematically*
    wrong.  When the weighted sum contradicts the incoming direction with
    enough magnitude, the direction is flipped.
    """

    def __init__(
        self,
        name: str,
        latency: int = 3,
        n_sets: int = 256,
        fetch_width: int = 4,
        history_lengths: Sequence[int] = (4, 10, 16),
        counter_bits: int = 6,
    ):
        lane_bits = max(1, (fetch_width - 1).bit_length())
        self._codec = MetaCodec(
            [
                ("cand_valid", 1),
                ("lane", lane_bits),
                ("incoming", 1),
                ("ctr", counter_bits, len(history_lengths)),
                ("flipped", 1),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
        )
        self.required_ghist_bits = max(history_lengths)
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.history_lengths = list(history_lengths)
        self.counter_bits = counter_bits
        self._index_bits = log2_exact(n_sets)
        self._ctr_max = (1 << (counter_bits - 1)) - 1
        self._ctr_min = -(1 << (counter_bits - 1))
        self._tables = [
            np.zeros(n_sets, dtype=np.int32) for _ in self.history_lengths
        ]
        self.flip_threshold = 24

    # ------------------------------------------------------------------
    def _indices(self, branch_pc: int, ghist: int, incoming: bool) -> List[int]:
        inc_bit = int(incoming)
        base_mask = (1 << self._index_bits) - 1
        return [
            (
                (
                    (
                        hash_pc(branch_pc, self._index_bits)
                        ^ fold_history(ghist, length, self._index_bits)
                    )
                    << 1
                )
                | inc_bit
            )
            & base_mask
            for length in self.history_lengths
        ]

    def _sum(self, counters: List[int], incoming_taken: bool) -> int:
        # The incoming prediction enters the sum with a strong weight, so
        # weakly trained counters never flip it.
        bias = 40 if incoming_taken else -40
        return bias + sum(2 * c + 1 for c in counters)

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            incoming = bool(slot.taken)
            indices = self._indices(req.fetch_pc + lane, req.ghist, incoming)
            counters = [int(t[i]) for t, i in zip(self._tables, indices)]
            total = self._sum(counters, incoming)
            corrected = total >= 0
            flipped = corrected != incoming and abs(total) >= self.flip_threshold
            if flipped:
                out.slots[lane].taken = corrected
                out.slots[lane].hit = True
            meta = self._codec.pack(
                cand_valid=1,
                lane=lane,
                incoming=int(incoming),
                ctr=[c & ((1 << self.counter_bits) - 1) for c in counters],
                flipped=int(flipped),
            )
            return out, meta
        return out, self._codec.pack(
            cand_valid=0, lane=0, incoming=0, ctr=[0] * len(self._tables), flipped=0
        )

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        fields = self._codec.unpack(bundle.meta)
        if not fields["cand_valid"]:
            return
        lane = int(fields["lane"])
        if lane >= len(bundle.br_mask) or not bundle.br_mask[lane]:
            return
        taken = bundle.taken_mask[lane]
        incoming = bool(fields["incoming"])
        indices = self._indices(bundle.fetch_pc + lane, bundle.ghist, incoming)
        for table, index, raw in zip(self._tables, indices, fields["ctr"]):
            counter = sign_extend(int(raw), self.counter_bits)
            if taken:
                table[index] = min(counter + 1, self._ctr_max)
            else:
                table[index] = max(counter - 1, self._ctr_min)

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        bits = self.n_sets * self.counter_bits * len(self.history_lengths)
        return StorageReport(
            self.name, sram_bits=bits, breakdown={"tables": bits},
            access_bits=self.counter_bits * len(self.history_lengths),
        )

    def reset(self) -> None:
        for table in self._tables:
            table.fill(0)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "tables",
                    entries=self.n_sets,
                    ways=len(self.history_lengths),
                    fields=(FieldSpec("ctr", self.counter_bits),),
                    update="saturating-counter",
                    # PC XOR folded history, shifted left one and OR'd with
                    # the *incoming predicted direction* — conditioning on a
                    # dataflow input has no closed form over the stimulus.
                    index=IndexFn(
                        "custom", self._index_bits, max(self.history_lengths)
                    ),
                ),
            ),
            meta_fields=(
                FieldSpec("cand_valid", 1),
                FieldSpec("lane", lane_bits),
                FieldSpec("incoming", 1),
                FieldSpec("ctr", self.counter_bits, len(self.history_lengths)),
                FieldSpec("flipped", 1),
            ),
            ghist_bits=max(self.history_lengths),
            kernel="none",
            learns_from=("branch",),
        )
