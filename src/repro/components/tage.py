"""TAGE: tagged geometric-history-length predictor (§III-G4, [Seznec 2011]).

A set of partially tagged tables indexed by hashes of the PC with
geometrically increasing global-history lengths.  The longest-history table
with a tag match *provides* the prediction; the next match (or the incoming
``predict_in`` base prediction) is the *alternate*.  The metadata field
tracks the provider and alternate table identities plus the counters read at
predict time (§III-D), so update-time work regenerates indices from the
fetch PC and the predict-time history supplied by the framework (§III-E).

TAGE learns global-history correlations and is tolerant to delayed updates,
so it uses only the commit-time ``update`` event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import (
    counter_is_weak,
    counter_taken,
    fold_history,
    hash_pc,
    log2_exact,
    saturating_update,
)
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector


@dataclass(frozen=True)
class TageTableConfig:
    """Geometry of one tagged table."""

    n_sets: int
    history_bits: int
    tag_bits: int


def geometric_history_lengths(
    n_tables: int, min_length: int, max_length: int
) -> List[int]:
    """The classic TAGE geometric series of history lengths."""
    if n_tables == 1:
        return [min_length]
    ratio = (max_length / min_length) ** (1.0 / (n_tables - 1))
    lengths = []
    for i in range(n_tables):
        length = int(round(min_length * ratio**i))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    lengths[-1] = max_length
    return lengths


def default_tables(
    n_tables: int = 7,
    n_sets: int = 512,
    min_history: int = 4,
    max_history: int = 64,
    tag_bits: int = 9,
) -> List[TageTableConfig]:
    """The 7-table, 64-bit-history configuration of the TAGE-L design."""
    return [
        TageTableConfig(n_sets=n_sets, history_bits=length, tag_bits=tag_bits)
        for length in geometric_history_lengths(n_tables, min_history, max_history)
    ]


class _Lfsr:
    """Tiny deterministic LFSR supplying allocation randomness."""

    def __init__(self, seed: int = 0xACE1):
        self._state = seed

    def next(self) -> int:
        s = self._state
        bit = ((s >> 0) ^ (s >> 2) ^ (s >> 3) ^ (s >> 5)) & 1
        self._state = (s >> 1) | (bit << 15)
        return self._state


class TAGE(PredictorComponent):
    """The TAGE sub-component managing a set of global-history tagged tables."""

    def __init__(
        self,
        name: str,
        latency: int = 3,
        fetch_width: int = 4,
        tables: Optional[Sequence[TageTableConfig]] = None,
        counter_bits: int = 3,
        u_bits: int = 2,
        u_decay_period: int = 131072,
    ):
        self.tables = list(tables) if tables is not None else default_tables()
        n_tables = len(self.tables)
        table_id_bits = max(1, (n_tables - 1).bit_length())
        self._codec = MetaCodec(
            [
                ("provider_valid", 1),
                ("provider", table_id_bits),
                ("alt_valid", 1),
                ("alt", table_id_bits),
                ("provider_ctr", counter_bits, fetch_width),
                ("alt_taken", 1, fetch_width),
                ("used_alt", 1, fetch_width),
                ("provider_u", u_bits),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
        )
        self.required_ghist_bits = max(cfg.history_bits for cfg in self.tables)
        self.fetch_width = fetch_width
        self.counter_bits = counter_bits
        self.u_bits = u_bits
        self.u_decay_period = u_decay_period
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self._tags: List[np.ndarray] = []
        self._ctrs: List[np.ndarray] = []
        self._useful: List[np.ndarray] = []
        self._valid: List[np.ndarray] = []
        for cfg in self.tables:
            log2_exact(cfg.n_sets)  # validate power of two
            self._tags.append(np.zeros(cfg.n_sets, dtype=np.int64))
            self._ctrs.append(
                np.full((cfg.n_sets, fetch_width), self._weak_nt, dtype=np.uint8)
            )
            self._useful.append(np.zeros(cfg.n_sets, dtype=np.uint8))
            self._valid.append(np.zeros(cfg.n_sets, dtype=bool))
        self._lfsr = _Lfsr()
        self._use_alt_on_na = 8  # 4-bit counter, midpoint
        self._update_count = 0
        # Precomputed per-table geometry for the hot indexing path.
        self._index_bits = [log2_exact(cfg.n_sets) for cfg in self.tables]
        self._tag_masks = [(1 << cfg.tag_bits) - 1 for cfg in self.tables]

    # ------------------------------------------------------------------
    def _index_tag(self, fetch_pc: int, ghist: int, table: int) -> Tuple[int, int]:
        cfg = self.tables[table]
        packet = fetch_pc // self.fetch_width
        index_bits = self._index_bits[table]
        index = hash_pc(packet, index_bits) ^ fold_history(
            ghist, cfg.history_bits, index_bits
        )
        # Two fold widths decorrelate the tag hash from the index hash.
        tag = (
            hash_pc(packet >> 1, cfg.tag_bits)
            ^ fold_history(ghist, cfg.history_bits, cfg.tag_bits)
            ^ (fold_history(ghist, cfg.history_bits, cfg.tag_bits - 1) << 1)
        ) & self._tag_masks[table]
        return index, tag

    def _match(self, fetch_pc: int, ghist: int, table: int) -> Optional[int]:
        index, tag = self._index_tag(fetch_pc, ghist, table)
        if self._valid[table][index] and int(self._tags[table][index]) == tag:
            return index
        return None

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        hits: List[Tuple[int, int]] = []  # (table, index), ascending table id
        for table in range(len(self.tables)):
            index = self._match(req.fetch_pc, req.ghist, table)
            if index is not None:
                hits.append((table, index))

        out = predict_in[0].copy()
        offset = req.fetch_pc % self.fetch_width
        width = self.fetch_width
        base_taken = [False] * width
        for slot_idx, slot in enumerate(predict_in[0].slots):
            base_taken[offset + slot_idx] = bool(slot.hit and slot.taken)

        provider_valid = alt_valid = 0
        provider = alt = 0
        provider_ctr = [0] * width
        alt_taken = list(base_taken)
        used_alt = [0] * width
        provider_u = 0

        if hits:
            provider, p_index = hits[-1]
            provider_valid = 1
            row = self._ctrs[provider][p_index]
            provider_ctr = row.tolist()
            provider_u = int(self._useful[provider][p_index])
            if len(hits) > 1:
                alt, a_index = hits[-2]
                alt_valid = 1
                alt_row = self._ctrs[alt][a_index]
                alt_taken = [
                    counter_taken(c, self.counter_bits)
                    for c in alt_row.tolist()
                ]
            for slot_idx, slot in enumerate(out.slots):
                if slot.is_jump:
                    continue
                lane = offset + slot_idx
                ctr = provider_ctr[lane]
                taken = counter_taken(ctr, self.counter_bits)
                # Newly allocated entries (u == 0, weak counter) defer to the
                # alternate prediction when the use-alt counter says so.
                newly_allocated = provider_u == 0 and counter_is_weak(
                    ctr, self.counter_bits
                )
                if newly_allocated and self._use_alt_on_na >= 8:
                    taken = alt_taken[lane]
                    used_alt[lane] = 1
                slot.hit = True
                slot.taken = taken

        meta = self._codec.pack(
            provider_valid=provider_valid,
            provider=provider,
            alt_valid=alt_valid,
            alt=alt,
            provider_ctr=provider_ctr,
            alt_taken=[int(t) for t in alt_taken],
            used_alt=used_alt,
            provider_u=provider_u,
        )
        return out, meta

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        if not any(bundle.br_mask):
            return
        fields = self._codec.unpack(bundle.meta)
        offset = bundle.fetch_pc % self.fetch_width
        provider_valid = bool(fields["provider_valid"])
        provider = int(fields["provider"])

        if provider_valid:
            p_index, p_tag = self._index_tag(
                bundle.fetch_pc, bundle.ghist, provider
            )
            entry_live = (
                self._valid[provider][p_index]
                and int(self._tags[provider][p_index]) == p_tag
            )
            for slot_idx, is_branch in enumerate(bundle.br_mask):
                if not is_branch:
                    continue
                lane = offset + slot_idx
                taken = bundle.taken_mask[slot_idx]
                old_ctr = int(fields["provider_ctr"][lane])
                if entry_live:
                    self._ctrs[provider][p_index, lane] = saturating_update(
                        old_ctr, taken, self.counter_bits
                    )
                provider_taken = counter_taken(old_ctr, self.counter_bits)
                alt_says = bool(fields["alt_taken"][lane])
                if provider_taken != alt_says and entry_live:
                    self._useful[provider][p_index] = saturating_update(
                        int(fields["provider_u"]),
                        provider_taken == taken,
                        self.u_bits,
                    )
                # Train the use-alt-on-new-alloc counter when the entry was
                # newly allocated and provider/alt disagreed.
                newly_allocated = int(fields["provider_u"]) == 0 and counter_is_weak(
                    old_ctr, self.counter_bits
                )
                if newly_allocated and provider_taken != alt_says:
                    if alt_says == taken:
                        self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
                    else:
                        self._use_alt_on_na = max(0, self._use_alt_on_na - 1)

        # Allocate a longer-history entry when the packet mispredicted on a
        # conditional branch.
        mp = bundle.mispredict_idx
        if (
            bundle.mispredicted
            and mp is not None
            and mp < len(bundle.br_mask)
            and bundle.br_mask[mp]
        ):
            self._allocate(bundle, offset + mp, mp, provider_valid, provider)

        self._update_count += 1
        if self._update_count % self.u_decay_period == 0:
            for table in range(len(self.tables)):
                self._useful[table] >>= 1

    def _allocate(
        self,
        bundle: UpdateBundle,
        lane: int,
        slot: int,
        provider_valid: bool,
        provider: int,
    ) -> None:
        start = provider + 1 if provider_valid else 0
        candidates = []
        for table in range(start, len(self.tables)):
            index, _ = self._index_tag(bundle.fetch_pc, bundle.ghist, table)
            if int(self._useful[table][index]) == 0:
                candidates.append(table)
        if not candidates:
            # No free entry: age the usefulness of all longer tables so
            # future allocations can succeed (anti-ping-pong).
            for table in range(start, len(self.tables)):
                index, _ = self._index_tag(bundle.fetch_pc, bundle.ghist, table)
                u = int(self._useful[table][index])
                if u > 0:
                    self._useful[table][index] = u - 1
            return
        # Prefer shorter histories with geometric probability (Seznec 2011):
        # pick the first candidate with p=1/2, else the next, etc.
        choice = candidates[0]
        for candidate in candidates:
            choice = candidate
            if self._lfsr.next() & 1:
                break
        index, tag = self._index_tag(bundle.fetch_pc, bundle.ghist, choice)
        taken = bundle.taken_mask[slot]
        self._valid[choice][index] = True
        self._tags[choice][index] = tag
        self._ctrs[choice][index, :] = self._weak_nt
        self._ctrs[choice][index, lane] = (
            self._weak_nt + 1 if taken else self._weak_nt
        )
        self._useful[choice][index] = 0

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        breakdown = {}
        sram = 0
        for table_id, cfg in enumerate(self.tables):
            bits = cfg.n_sets * (
                cfg.tag_bits
                + 1
                + self.u_bits
                + self.fetch_width * self.counter_bits
            )
            breakdown[f"table{table_id}(h={cfg.history_bits})"] = bits
            sram += bits
        access = sum(
            cfg.tag_bits + 1 + self.u_bits + self.fetch_width * self.counter_bits
            for cfg in self.tables
        )
        return StorageReport(
            self.name, sram_bits=sram, breakdown=breakdown, access_bits=access
        )

    def reset(self) -> None:
        for table in range(len(self.tables)):
            self._valid[table].fill(False)
            self._tags[table].fill(0)
            self._ctrs[table].fill(self._weak_nt)
            self._useful[table].fill(0)
        # The allocation LFSR is architectural state: leaving it mid-sequence
        # would make a reset predictor diverge from a freshly built one.
        self._lfsr = _Lfsr()
        self._use_alt_on_na = 8
        self._update_count = 0

    def columnar_kernel(self):
        from repro.kernels.components import TAGEKernel

        return TAGEKernel(self)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        table_id_bits = max(1, (len(self.tables) - 1).bit_length())
        tables = []
        for table_id, cfg in enumerate(self.tables):
            tables.append(
                TableSpec(
                    f"table{table_id}(h={cfg.history_bits})",
                    entries=cfg.n_sets,
                    fields=(
                        FieldSpec("tag", cfg.tag_bits),
                        FieldSpec("valid", 1),
                        FieldSpec("u", self.u_bits),
                        FieldSpec("ctr", self.counter_bits, self.fetch_width),
                    ),
                    update="allocate-on-miss",
                    index=IndexFn(
                        "gshare",
                        self._index_bits[table_id],
                        cfg.history_bits,
                        key="packet",
                        fetch_width=self.fetch_width,
                    ),
                    probe=lambda c, pc, g, l, p, t=table_id: c._index_tag(pc, g, t)[
                        0
                    ],
                )
            )
        return ComponentSpec(
            component=type(self).__name__,
            tables=tuple(tables),
            meta_fields=(
                FieldSpec("provider_valid", 1),
                FieldSpec("provider", table_id_bits),
                FieldSpec("alt_valid", 1),
                FieldSpec("alt", table_id_bits),
                FieldSpec("provider_ctr", self.counter_bits, self.fetch_width),
                FieldSpec("alt_taken", 1, self.fetch_width),
                FieldSpec("used_alt", 1, self.fetch_width),
                FieldSpec("provider_u", self.u_bits),
            ),
            ghist_bits=max(cfg.history_bits for cfg in self.tables),
            kernel="event-replay",
            learns_from=("branch",),
        )
