"""Tournament selector (§III-G3).

An arbitration scheme taking two ``predict_in`` vectors (§III-F) and
choosing per slot with a 2-bit chooser table indexed by global history, as
in the Alpha 21264.  The metadata field tracks the predictions made by both
sub-predictors so the chooser can be trained at update time without
re-querying them (§III-D).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro._util import fold_history, hash_pc, log2_exact, saturating_update
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import InterfaceError, PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector


class Tourney(PredictorComponent):
    """Global-history-indexed tournament chooser between two predictors.

    Chooser counter semantics: high counters select the *second* input
    (``predict_in[1]``), low counters the first.
    """

    def __init__(
        self,
        name: str,
        latency: int = 3,
        n_sets: int = 256,
        fetch_width: int = 4,
        history_bits: int = 16,
        counter_bits: int = 2,
        index: str = "ghist",
    ):
        if index not in ("ghist", "gshare"):
            raise InterfaceError(
                f"{name}: tournament chooser index must be history-based"
            )
        self._codec = MetaCodec(
            [
                ("choice", counter_bits, fetch_width),
                ("a_taken", 1, fetch_width),
                ("b_taken", 1, fetch_width),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
            n_inputs=2,
        )
        self.required_ghist_bits = history_bits
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.index = index
        self._index_bits = log2_exact(n_sets)
        mid = 1 << (counter_bits - 1)
        self._table = np.full((n_sets, fetch_width), mid, dtype=np.uint8)

    # ------------------------------------------------------------------
    def _index(self, fetch_pc: int, ghist: int) -> int:
        folded = fold_history(ghist, self.history_bits, self._index_bits)
        if self.index == "ghist":
            return folded
        packet = (fetch_pc - (fetch_pc % self.fetch_width)) // self.fetch_width
        return folded ^ hash_pc(packet, self._index_bits)

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        if len(predict_in) != 2:
            raise InterfaceError(
                f"{self.name}: expected 2 predict_in vectors, got {len(predict_in)}"
            )
        first, second = predict_in
        row = self._table[self._index(req.fetch_pc, req.ghist)]
        offset = req.fetch_pc % self.fetch_width
        out = first.copy()
        half = 1 << (self.counter_bits - 1)
        for slot_idx, slot in enumerate(out.slots):
            counter = int(row[offset + slot_idx])
            chosen = second.slots[slot_idx] if counter >= half else first.slots[slot_idx]
            if chosen.hit and not slot.is_jump:
                slot.hit = True
                slot.taken = chosen.taken
                # Targets flow from whichever side knows them; prefer the
                # chosen side's target, falling back to the other.
                other = first.slots[slot_idx] if counter >= half else second.slots[slot_idx]
                slot.target = (
                    chosen.target if chosen.target is not None else other.target
                )
                slot.is_branch = chosen.is_branch or other.is_branch
        meta = self._codec.pack(
            choice=row.tolist(),
            a_taken=[int(s.hit and s.taken) for s in _padded(first, self.fetch_width, offset)],
            b_taken=[int(s.hit and s.taken) for s in _padded(second, self.fetch_width, offset)],
        )
        return out, meta

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        """Train the chooser toward whichever sub-predictor was right."""
        if not any(bundle.br_mask):
            return
        fields = self._codec.unpack(bundle.meta)
        index = self._index(bundle.fetch_pc, bundle.ghist)
        offset = bundle.fetch_pc % self.fetch_width
        row = self._table[index]
        for slot_idx, is_branch in enumerate(bundle.br_mask):
            if not is_branch:
                continue
            lane = offset + slot_idx
            taken = bundle.taken_mask[slot_idx]
            a_right = bool(fields["a_taken"][lane]) == taken
            b_right = bool(fields["b_taken"][lane]) == taken
            if a_right == b_right:
                continue  # chooser learns only when the predictors disagree
            row[lane] = saturating_update(
                int(fields["choice"][lane]), b_right, self.counter_bits
            )

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        bits = self.n_sets * self.fetch_width * self.counter_bits
        return StorageReport(
            self.name, sram_bits=bits, breakdown={"choosers": bits},
            access_bits=self.fetch_width * self.counter_bits,
        )

    def reset(self) -> None:
        self._table.fill(1 << (self.counter_bits - 1))

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "choosers",
                    entries=self.n_sets,
                    fields=(
                        FieldSpec("choice", self.counter_bits, self.fetch_width),
                    ),
                    update="saturating-counter",
                    index=IndexFn(
                        self.index,
                        self._index_bits,
                        self.history_bits,
                        key="packet",
                        fetch_width=self.fetch_width,
                    ),
                    probe=lambda c, pc, g, l, p: c._index(pc, g),
                ),
            ),
            meta_fields=(
                FieldSpec("choice", self.counter_bits, self.fetch_width),
                FieldSpec("a_taken", 1, self.fetch_width),
                FieldSpec("b_taken", 1, self.fetch_width),
            ),
            ghist_bits=self.history_bits,
            kernel="none",
            learns_from=("branch",),
            n_inputs=2,
        )


def _padded(vector: PredictionVector, fetch_width: int, offset: int):
    """Expand a packet-span vector to full fetch-width lanes for metadata."""
    from repro.core.prediction import SlotPrediction

    lanes = [SlotPrediction() for _ in range(fetch_width)]
    for slot_idx, slot in enumerate(vector.slots):
        lanes[offset + slot_idx] = slot
    return lanes
