"""Branch target buffers (§III-G2).

Two variants mirror the sub-component library: a large set-associative
2-cycle ``BTB`` and a small fully-associative 1-cycle ``MicroBTB`` (uBTB).
Set associativity leans on the metadata field: the hit way recorded at
predict time is recovered at update time so the ways need not be re-read
(§III-D).

A BTB learns branch *locations* and *targets*; the predicted direction of a
conditional branch passes through from ``predict_in`` (Fig. 3), so a BTB
composes with any direction predictor below it in the topology.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._util import counter_taken, hash_pc, log2_exact, mask, saturating_update
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector

#: Width of stored target addresses (word-addressed PCs).
TARGET_BITS = 30


class BTB(PredictorComponent):
    """Set-associative branch target buffer indexed by fetch-packet PC.

    Each way stores one packet entry: a partial tag plus per-slot
    {valid, is_jump, target} records, so multiple branches within one fetch
    packet can be predicted in the same cycle (§III-C).
    """

    def __init__(
        self,
        name: str,
        latency: int = 2,
        n_sets: int = 512,
        n_ways: int = 4,
        fetch_width: int = 4,
        tag_bits: int = 12,
    ):
        way_bits = max(1, (n_ways - 1).bit_length())
        self._codec = MetaCodec([("hit", 1), ("way", way_bits)])
        super().__init__(name, latency, meta_bits=self._codec.width)
        self.provides_targets = True
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.fetch_width = fetch_width
        self.tag_bits = tag_bits
        self._index_bits = log2_exact(n_sets)
        shape = (n_sets, n_ways)
        self._valid = np.zeros(shape, dtype=bool)
        self._tags = np.zeros(shape, dtype=np.int64)
        self._slot_valid = np.zeros(shape + (fetch_width,), dtype=bool)
        self._slot_jump = np.zeros(shape + (fetch_width,), dtype=bool)
        self._targets = np.zeros(shape + (fetch_width,), dtype=np.int64)
        self._replace_ptr = np.zeros(n_sets, dtype=np.int64)

    # ------------------------------------------------------------------
    def _index_tag(self, fetch_pc: int) -> Tuple[int, int]:
        packet = (fetch_pc - (fetch_pc % self.fetch_width)) // self.fetch_width
        index = hash_pc(packet, self._index_bits)
        tag = (packet >> self._index_bits) & mask(self.tag_bits)
        return index, tag

    def _find_way(self, index: int, tag: int) -> Optional[int]:
        for way in range(self.n_ways):
            if self._valid[index, way] and self._tags[index, way] == tag:
                return way
        return None

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        index, tag = self._index_tag(req.fetch_pc)
        way = self._find_way(index, tag)
        out = predict_in[0].copy()
        if way is None:
            # Tag miss: pass the incoming prediction through unmodified
            # (§III-F), recording the miss in metadata.
            return out, self._codec.pack(hit=0, way=0)
        offset = req.fetch_pc % self.fetch_width
        for slot_idx, slot in enumerate(out.slots):
            lane = offset + slot_idx
            if not self._slot_valid[index, way, lane]:
                continue
            slot.hit = True
            slot.target = int(self._targets[index, way, lane])
            if self._slot_jump[index, way, lane]:
                slot.is_jump = True
                slot.is_branch = False
                slot.taken = True
            else:
                slot.is_branch = True
                # Direction comes from predict_in where a direction
                # predictor below already spoke; a bare BTB hit defaults to
                # not-taken until some component predicts the direction.
        return out, self._codec.pack(hit=1, way=way)

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        """Allocate/refresh the entry for a committed taken CFI."""
        if bundle.cfi_idx is None or not bundle.cfi_taken:
            return
        if bundle.cfi_target is None:
            return
        index, tag = self._index_tag(bundle.fetch_pc)
        fields = self._codec.unpack(bundle.meta)
        if fields["hit"]:
            way = int(fields["way"])
            # The tag may have been evicted since predict time; only reuse
            # the metadata way when it still matches.
            if not (self._valid[index, way] and self._tags[index, way] == tag):
                way = self._find_way(index, tag)
        else:
            way = self._find_way(index, tag)
        if way is None:
            way = int(self._replace_ptr[index])
            self._replace_ptr[index] = (way + 1) % self.n_ways
            self._valid[index, way] = True
            self._tags[index, way] = tag
            self._slot_valid[index, way, :] = False
        lane = (bundle.fetch_pc % self.fetch_width) + bundle.cfi_idx
        self._slot_valid[index, way, lane] = True
        self._slot_jump[index, way, lane] = bundle.cfi_is_jal or bundle.cfi_is_jalr
        self._targets[index, way, lane] = bundle.cfi_target & mask(TARGET_BITS)

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        entries = self.n_sets * self.n_ways
        tag_bits = entries * (self.tag_bits + 1)
        slot_bits = entries * self.fetch_width * (TARGET_BITS + 2)
        per_way = self.tag_bits + 1 + self.fetch_width * (TARGET_BITS + 2)
        replace_bits = int(
            self._replace_ptr.size * max(1, (self.n_ways - 1).bit_length())
        )
        return StorageReport(
            self.name,
            sram_bits=tag_bits + slot_bits,
            flop_bits=replace_bits,
            breakdown={
                "tags": tag_bits,
                "targets": slot_bits,
                "replacement": replace_bits,
            },
            access_bits=self.n_ways * per_way,  # all ways read in parallel
        )

    def reset(self) -> None:
        self._valid.fill(False)
        self._tags.fill(0)
        self._slot_valid.fill(False)
        self._slot_jump.fill(False)
        self._targets.fill(0)
        self._replace_ptr.fill(0)

    def columnar_kernel(self):
        from repro.kernels.components import BTBKernel

        return BTBKernel(self)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        way_bits = max(1, (self.n_ways - 1).bit_length())
        index = IndexFn(
            "pc", self._index_bits, key="packet", fetch_width=self.fetch_width
        )

        def probe(c, pc, g, l, p):
            return c._index_tag(pc)[0]

        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "tags",
                    entries=self.n_sets,
                    ways=self.n_ways,
                    fields=(
                        FieldSpec("valid", 1),
                        FieldSpec("tag", self.tag_bits),
                    ),
                    update="allocate-on-miss",
                    index=index,
                    probe=probe,
                ),
                TableSpec(
                    "targets",
                    entries=self.n_sets,
                    ways=self.n_ways,
                    fields=(
                        FieldSpec("slot_valid", 1, self.fetch_width),
                        FieldSpec("slot_jump", 1, self.fetch_width),
                        FieldSpec("target", TARGET_BITS, self.fetch_width),
                    ),
                    update="allocate-on-miss",
                    index=index,
                    probe=probe,
                ),
                TableSpec(
                    "replacement",
                    entries=self.n_sets,
                    fields=(FieldSpec("ptr", way_bits),),
                    kind="flop",
                    update="exact-event",
                    index=index,
                    probe=probe,
                ),
            ),
            meta_fields=(FieldSpec("hit", 1), FieldSpec("way", way_bits)),
            kernel="event-replay",
            learns_from=("cfi",),
        )


class MicroBTB(PredictorComponent):
    """Small fully-associative single-cycle BTB (uBTB).

    Provides a next-cycle redirect for taken branches and jumps before the
    large BTB and backing predictors respond.  Each entry tracks one CFI per
    packet with a 2-bit direction counter.  Latency 1 means it may use only
    the fetch PC (§III-B).
    """

    def __init__(
        self,
        name: str,
        latency: int = 1,
        n_entries: int = 32,
        fetch_width: int = 4,
        tag_bits: int = 20,
        counter_bits: int = 2,
    ):
        entry_bits = max(1, (n_entries - 1).bit_length())
        self._codec = MetaCodec(
            [("hit", 1), ("entry", entry_bits), ("ctr", counter_bits)]
        )
        super().__init__(name, latency, meta_bits=self._codec.width)
        self.provides_targets = True
        self.n_entries = n_entries
        self.fetch_width = fetch_width
        self.tag_bits = tag_bits
        self.counter_bits = counter_bits
        self._valid = np.zeros(n_entries, dtype=bool)
        self._tags = np.zeros(n_entries, dtype=np.int64)
        self._cfi_idx = np.zeros(n_entries, dtype=np.int64)
        self._is_jump = np.zeros(n_entries, dtype=bool)
        self._targets = np.zeros(n_entries, dtype=np.int64)
        self._ctrs = np.zeros(n_entries, dtype=np.int64)
        self._alloc_ptr = 0

    # ------------------------------------------------------------------
    def _tag(self, fetch_pc: int) -> int:
        packet = (fetch_pc - (fetch_pc % self.fetch_width)) // self.fetch_width
        return packet & mask(self.tag_bits)

    def _find(self, tag: int) -> Optional[int]:
        for entry in range(self.n_entries):
            if self._valid[entry] and self._tags[entry] == tag:
                return entry
        return None

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        tag = self._tag(req.fetch_pc)
        entry = self._find(tag)
        out = predict_in[0].copy()
        if entry is None:
            return out, self._codec.pack(hit=0, entry=0, ctr=0)
        offset = req.fetch_pc % self.fetch_width
        slot_idx = int(self._cfi_idx[entry]) - offset
        counter = int(self._ctrs[entry])
        if 0 <= slot_idx < len(out.slots):
            slot = out.slots[slot_idx]
            slot.hit = True
            slot.target = int(self._targets[entry])
            if self._is_jump[entry]:
                slot.is_jump = True
                slot.taken = True
            else:
                slot.is_branch = True
                slot.taken = counter_taken(counter, self.counter_bits)
        return out, self._codec.pack(hit=1, entry=entry, ctr=counter)

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        fields = self._codec.unpack(bundle.meta)
        tag = self._tag(bundle.fetch_pc)
        lane = None
        if bundle.cfi_idx is not None:
            lane = (bundle.fetch_pc % self.fetch_width) + bundle.cfi_idx

        if fields["hit"]:
            entry = int(fields["entry"])
            if self._valid[entry] and self._tags[entry] == tag:
                stored_lane = int(self._cfi_idx[entry])
                if lane == stored_lane and not self._is_jump[entry]:
                    taken = bundle.cfi_taken
                    self._ctrs[entry] = saturating_update(
                        int(fields["ctr"]), taken, self.counter_bits
                    )
                elif lane is None and not self._is_jump[entry]:
                    # The tracked branch fell through this time.
                    span_start = bundle.fetch_pc % self.fetch_width
                    if span_start <= stored_lane < span_start + bundle.width:
                        self._ctrs[entry] = saturating_update(
                            int(fields["ctr"]), False, self.counter_bits
                        )
                return

        # Allocate only for taken CFIs with a known target: the uBTB exists
        # to provide next-cycle redirects.
        if bundle.cfi_idx is None or not bundle.cfi_taken or bundle.cfi_target is None:
            return
        entry = self._alloc_ptr
        self._alloc_ptr = (self._alloc_ptr + 1) % self.n_entries
        self._valid[entry] = True
        self._tags[entry] = tag
        self._cfi_idx[entry] = lane
        self._is_jump[entry] = bundle.cfi_is_jal or bundle.cfi_is_jalr
        self._targets[entry] = bundle.cfi_target
        top = mask(self.counter_bits)
        self._ctrs[entry] = top  # start strongly taken; it was just taken

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        per_entry = (
            1  # valid
            + self.tag_bits
            + max(1, (self.fetch_width - 1).bit_length())  # cfi index
            + 1  # jump flag
            + TARGET_BITS
            + self.counter_bits
        )
        bits = self.n_entries * per_entry
        # A 1-cycle fully-associative structure lives in flops, not SRAM;
        # a CAM lookup touches every entry.
        return StorageReport(
            self.name, flop_bits=bits, breakdown={"entries": bits},
            access_bits=bits,
        )

    def reset(self) -> None:
        self._valid.fill(False)
        self._tags.fill(0)
        self._cfi_idx.fill(0)
        self._is_jump.fill(False)
        self._targets.fill(0)
        self._ctrs.fill(0)
        self._alloc_ptr = 0

    def columnar_kernel(self):
        from repro.kernels.components import MicroBTBKernel

        return MicroBTBKernel(self)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        entry_bits = max(1, (self.n_entries - 1).bit_length())
        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "entries",
                    entries=self.n_entries,
                    fields=(
                        FieldSpec("valid", 1),
                        FieldSpec("tag", self.tag_bits),
                        FieldSpec("cfi_idx", lane_bits),
                        FieldSpec("jump", 1),
                        FieldSpec("target", TARGET_BITS),
                        FieldSpec("ctr", self.counter_bits),
                    ),
                    kind="flop",
                    update="allocate-on-miss",
                    # Fully associative: a CAM match, not an index hash.
                    index=IndexFn("none", 0, fetch_width=self.fetch_width),
                ),
            ),
            meta_fields=(
                FieldSpec("hit", 1),
                FieldSpec("entry", entry_bits),
                FieldSpec("ctr", self.counter_bits),
            ),
            kernel="event-replay",
            learns_from=("branch", "cfi"),
        )
