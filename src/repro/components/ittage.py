"""ITTAGE-style indirect-target predictor — library extension.

The starter library predicts indirect-jump targets only through the BTB
(one remembered target per site), so dispatch-heavy code (perlbench-style
interpreters) pays a target mispredict whenever the jump changes target.
ITTAGE [Seznec & Michaud, via the TAGE family] applies the tagged
geometric-history idea to *targets*: tables indexed by PC and folded global
history store full targets, so the history disambiguates which case of a
switch is coming.

Interface-wise this is the complement of the direction components: it
overrides the ``target`` field of indirect-jump slots and passes directions
through untouched (§III-F), and uses the metadata field to carry the
provider table and the predicted target's confidence to update time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro._util import fold_history, hash_pc, log2_exact, mask, saturating_update
from repro.components.base import MetaCodec
from repro.components.btb import TARGET_BITS
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector


class ITTAGE(PredictorComponent):
    """Tagged geometric-history indirect-target tables."""

    def __init__(
        self,
        name: str,
        latency: int = 3,
        fetch_width: int = 4,
        n_tables: int = 4,
        n_sets: int = 256,
        min_history: int = 2,
        max_history: int = 32,
        tag_bits: int = 9,
        conf_bits: int = 2,
    ):
        from repro.components.tage import geometric_history_lengths

        lane_bits = max(1, (fetch_width - 1).bit_length())
        table_bits = max(1, (n_tables - 1).bit_length())
        self._codec = MetaCodec(
            [
                ("provider_valid", 1),
                ("provider", table_bits),
                ("lane", lane_bits),
                ("conf", conf_bits),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
        )
        self.provides_targets = True
        self.fetch_width = fetch_width
        self.n_sets = n_sets
        self.tag_bits = tag_bits
        self.conf_bits = conf_bits
        self.history_lengths = geometric_history_lengths(
            n_tables, min_history, max_history
        )
        self.required_ghist_bits = max(self.history_lengths)
        self._index_bits = log2_exact(n_sets)
        n = len(self.history_lengths)
        self._valid = [np.zeros(n_sets, dtype=bool) for _ in range(n)]
        self._tags = [np.zeros(n_sets, dtype=np.int64) for _ in range(n)]
        self._lanes = [np.zeros(n_sets, dtype=np.int64) for _ in range(n)]
        self._targets = [np.zeros(n_sets, dtype=np.int64) for _ in range(n)]
        self._conf = [np.zeros(n_sets, dtype=np.int64) for _ in range(n)]

    # ------------------------------------------------------------------
    def _index_tag(self, fetch_pc: int, ghist: int, table: int) -> Tuple[int, int]:
        packet = fetch_pc // self.fetch_width
        length = self.history_lengths[table]
        index = hash_pc(packet, self._index_bits) ^ fold_history(
            ghist, length, self._index_bits
        )
        tag = (
            hash_pc(packet >> 1, self.tag_bits)
            ^ fold_history(ghist, length, self.tag_bits)
        ) & mask(self.tag_bits)
        return index, tag

    def _matches(self, fetch_pc: int, ghist: int) -> List[Tuple[int, int]]:
        hits = []
        for table in range(len(self.history_lengths)):
            index, tag = self._index_tag(fetch_pc, ghist, table)
            if self._valid[table][index] and int(self._tags[table][index]) == tag:
                hits.append((table, index))
        return hits

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        hits = self._matches(req.fetch_pc, req.ghist)
        if not hits:
            return out, self._codec.pack(provider_valid=0, provider=0, lane=0, conf=0)
        provider, index = hits[-1]
        lane = int(self._lanes[provider][index])
        conf = int(self._conf[provider][index])
        offset = req.fetch_pc % self.fetch_width
        slot_idx = lane - offset
        if 0 <= slot_idx < len(out.slots) and conf >= (1 << (self.conf_bits - 1)):
            slot = out.slots[slot_idx]
            slot.hit = True
            slot.is_jump = True
            slot.is_branch = False
            slot.taken = True
            slot.target = int(self._targets[provider][index])
        return out, self._codec.pack(
            provider_valid=1, provider=provider, lane=slot_idx if slot_idx >= 0 else 0,
            conf=conf,
        )

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        if not bundle.cfi_is_jalr or bundle.cfi_idx is None:
            return
        actual_target = bundle.cfi_target
        if actual_target is None:
            return
        fields = self._codec.unpack(bundle.meta)
        lane = (bundle.fetch_pc % self.fetch_width) + bundle.cfi_idx

        if fields["provider_valid"]:
            provider = int(fields["provider"])
            index, tag = self._index_tag(bundle.fetch_pc, bundle.ghist, provider)
            if self._valid[provider][index] and int(self._tags[provider][index]) == tag:
                if int(self._targets[provider][index]) == actual_target:
                    self._conf[provider][index] = saturating_update(
                        int(fields["conf"]), True, self.conf_bits
                    )
                else:
                    conf = saturating_update(int(fields["conf"]), False, self.conf_bits)
                    self._conf[provider][index] = conf
                    if conf == 0:
                        self._targets[provider][index] = actual_target
                        self._lanes[provider][index] = lane

        # Allocate a longer-history entry on a target mispredict.
        if bundle.mispredicted:
            start = int(fields["provider"]) + 1 if fields["provider_valid"] else 0
            for table in range(start, len(self.history_lengths)):
                index, tag = self._index_tag(bundle.fetch_pc, bundle.ghist, table)
                if not self._valid[table][index] or int(self._conf[table][index]) == 0:
                    self._valid[table][index] = True
                    self._tags[table][index] = tag
                    self._lanes[table][index] = lane
                    self._targets[table][index] = actual_target
                    self._conf[table][index] = 1 << (self.conf_bits - 1)
                    break

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        per_entry = 1 + self.tag_bits + lane_bits + TARGET_BITS + self.conf_bits
        total = len(self.history_lengths) * self.n_sets * per_entry
        return StorageReport(
            self.name,
            sram_bits=total,
            breakdown={
                f"table{i}(h={h})": self.n_sets * per_entry
                for i, h in enumerate(self.history_lengths)
            },
            access_bits=len(self.history_lengths) * per_entry,
        )

    def reset(self) -> None:
        for table in range(len(self.history_lengths)):
            self._valid[table].fill(False)
            self._tags[table].fill(0)
            self._lanes[table].fill(0)
            self._targets[table].fill(0)
            self._conf[table].fill(0)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        table_bits = max(1, (len(self.history_lengths) - 1).bit_length())
        tables = []
        for table_id, length in enumerate(self.history_lengths):
            tables.append(
                TableSpec(
                    f"table{table_id}(h={length})",
                    entries=self.n_sets,
                    fields=(
                        FieldSpec("valid", 1),
                        FieldSpec("tag", self.tag_bits),
                        FieldSpec("lane", lane_bits),
                        FieldSpec("target", TARGET_BITS),
                        FieldSpec("conf", self.conf_bits),
                    ),
                    update="allocate-on-miss",
                    index=IndexFn(
                        "gshare",
                        self._index_bits,
                        length,
                        key="packet",
                        fetch_width=self.fetch_width,
                    ),
                    probe=lambda c, pc, g, l, p, t=table_id: c._index_tag(pc, g, t)[
                        0
                    ],
                )
            )
        return ComponentSpec(
            component=type(self).__name__,
            tables=tuple(tables),
            meta_fields=(
                FieldSpec("provider_valid", 1),
                FieldSpec("provider", table_bits),
                FieldSpec("lane", lane_bits),
                FieldSpec("conf", self.conf_bits),
            ),
            ghist_bits=max(self.history_lengths),
            kernel="none",
            learns_from=("indirect",),
        )
