"""HBIM: bimodal counter tables with parameterized indexing (§III-G1).

A superscalar counter table: each row holds ``fetch_width`` saturating
counters, so adjacent branches within one fetch packet read distinct
counters instead of aliasing onto a single entry (§III-C).  The metadata
field stores the counter values read at predict time so the table is not
re-read at update time (§III-D).

The table itself is spec-derived: the :class:`~repro.spec.ComponentSpec`
built at construction is the single source of truth, and allocation, row
selection (``_index``), the saturating-counter update, storage
accounting, and the columnar kernel all execute from it through
:mod:`repro.derive`.  Only the prediction semantics (``lookup``) stay
hand-written.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro._util import counter_taken, log2_exact
from repro.components.base import IndexScheme, MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector
from repro.derive.tables import DerivedTable, derived_storage


class HBIM(PredictorComponent):
    """History/PC-indexed bimodal counter table.

    Parameters
    ----------
    n_sets:
        Number of rows (power of two).  Total counters = ``n_sets *
        fetch_width``.
    index:
        Index scheme name; see :class:`~repro.components.base.IndexScheme`.
    history_bits:
        History length consumed by history-based index schemes.
    counter_bits:
        Width of each saturating counter (2 for classic bimodal).
    """

    def __init__(
        self,
        name: str,
        latency: int = 2,
        n_sets: int = 2048,
        fetch_width: int = 4,
        index: str = "pc",
        history_bits: int = 0,
        counter_bits: int = 2,
    ):
        self._scheme = IndexScheme(index, log2_exact(n_sets), history_bits)
        self._codec = MetaCodec([("ctr", counter_bits, fetch_width)])
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=self._scheme.uses_global_history,
            uses_local_history=self._scheme.uses_local_history,
        )
        self.uses_path_history = self._scheme.uses_path_history
        if self._scheme.uses_global_history:
            self.required_ghist_bits = history_bits
        elif self._scheme.uses_local_history:
            self.required_lhist_bits = history_bits
        elif self.uses_path_history:
            self.required_phist_bits = history_bits
        if latency < 2 and self.uses_path_history:
            from repro.core.interface import InterfaceError

            raise InterfaceError(
                f"{name}: path history arrives at the end of cycle 1"
            )
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.counter_bits = counter_bits
        # Initialize weakly not-taken.
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self._spec = self._build_spec()
        self._counters = DerivedTable(
            self._spec.tables[0], init={"ctr": self._weak_nt}
        )
        self.derived_tables = {"counters": self._counters}
        # Legacy-shaped view of the derived array (rows x lanes).
        self._table = self._counters.lanes("ctr")

    # ------------------------------------------------------------------
    def _index(self, req_pc: int, ghist: int, lhist: int, phist: int = 0) -> int:
        return self._counters.row(req_pc, ghist, lhist, phist)

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        row = self._table[
            self._index(req.fetch_pc, req.ghist, req.lhist, req.phist)
        ].tolist()
        out = predict_in[0].copy()
        offset = req.fetch_pc % self.fetch_width
        for slot_idx, slot in enumerate(out.slots):
            counter = row[offset + slot_idx]
            # An untagged table provides a base direction for every slot; it
            # does not know branch locations or targets, so those fields pass
            # through from predict_in (§III-F).
            slot.hit = True
            if not slot.is_jump:
                slot.taken = counter_taken(counter, self.counter_bits)
        # A MetaCodec field with one lane packs as a scalar, so a scalar
        # (fetch_width=1) pipeline hands over the bare counter.
        meta = self._codec.pack(ctr=row if self.fetch_width > 1 else row[0])
        return out, meta

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        """Commit-time update of every resolved conditional branch slot."""
        if not any(bundle.br_mask):
            return
        counters = self._codec.unpack(bundle.meta)["ctr"]
        if self.fetch_width == 1:
            counters = [counters]
        index = self._index(bundle.fetch_pc, bundle.ghist, bundle.lhist, bundle.phist)
        offset = bundle.fetch_pc % self.fetch_width
        for slot_idx, is_branch in enumerate(bundle.br_mask):
            if not is_branch:
                continue
            lane = offset + slot_idx
            # Closed-form train from the predict-time counter value carried
            # in the metadata, avoiding a second read port (§III-D).
            self._counters.train(
                index,
                bundle.taken_mask[slot_idx],
                lane=lane if self.fetch_width > 1 else None,
                counter=int(counters[lane]),
            )

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        return derived_storage(self.name, self._spec)

    def reset(self) -> None:
        self._counters.reset()

    def columnar_kernel(self):
        # Local- and path-history schemes read providers the columnar
        # engine does not model; their spec declares kernel="none" and the
        # generator returns None for them.
        from repro.derive.kernels import derived_kernel

        return derived_kernel(self)

    def spec(self):
        return self._spec

    def _build_spec(self):
        from repro.spec import ComponentSpec, FieldSpec, TableSpec

        scheme = self._scheme
        counters = FieldSpec("ctr", self.counter_bits, self.fetch_width)
        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "counters",
                    entries=self.n_sets,
                    fields=(counters,),
                    update="saturating-counter",
                    index=scheme.index_fn("packet", self.fetch_width),
                    probe=lambda c, pc, g, l, p: c._index(pc, g, l, p),
                ),
            ),
            meta_fields=(counters,),
            ghist_bits=scheme.history_bits if scheme.uses_global_history else 0,
            lhist_bits=scheme.history_bits if scheme.uses_local_history else 0,
            phist_bits=scheme.history_bits if scheme.uses_path_history else 0,
            kernel=(
                "closed-form"
                if scheme.scheme in ("pc", "ghist", "gshare", "gselect")
                else "none"
            ),
            learns_from=("branch",),
        )

    # Exposed for tests.
    def counter_at(self, index: int, lane: int) -> int:
        return int(self._table[index, lane])
