"""Two-level adaptive predictors [Yeh & Patt 1991] — library extension.

The foundational §II-A citation: a first-level *history register table*
(one shift register per branch set, or one global register) indexes a
second-level *pattern history table* of saturating counters.  The four
classic organizations come from the two choices:

============  =====================  ======================
variant       level-1 history        level-2 pattern table
============  =====================  ======================
``GAg``       one global register    one global table
``GAp``       one global register    per-branch-set tables
``PAg``       per-branch registers   one global table
``PAp``       per-branch registers   per-branch-set tables
============  =====================  ======================

Unlike the `HBIM` local variant (which consumes the composer's local
history provider), this component owns its level-1 table internally and
keeps it consistent using the event protocol: histories advance
speculatively at ``fire`` time and are restored from metadata on ``repair``
and ``mispredict`` — the same discipline the loop predictor follows, which
is exactly why the paper's interface carries metadata to those events.

Both levels are spec-derived (:mod:`repro.derive`): storage lives in
:class:`~repro.derive.tables.DerivedTable` arrays, the level-1 row hash
and the G variants' raw-history level-2 row come from the declared
:class:`~repro.spec.IndexFn` closed forms, pattern training and the
history shifts apply the declared update rules, and the G variants'
columnar kernel is generated.  The speculative fire/repair protocol (an
``exact-event`` rule) and the P variants' level-2 index (``custom``, fed
from their own level-1 registers) stay hand-written hooks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro._util import counter_taken, log2_exact, mask
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import InterfaceError, PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector
from repro.derive.tables import DerivedTable, derived_storage

VARIANTS = ("GAg", "GAp", "PAg", "PAp")


class TwoLevel(PredictorComponent):
    """Yeh-Patt two-level adaptive predictor (one prediction per packet).

    Tracks one branch per fetch packet (the first branch slot identified by
    ``predict_in``), like the other single-candidate components (§III-C).
    """

    def __init__(
        self,
        name: str,
        latency: int = 3,
        variant: str = "PAg",
        fetch_width: int = 4,
        history_bits: int = 10,
        l1_entries: int = 256,
        l2_sets_per_table: int = 1024,
        l2_tables: int = 16,
        counter_bits: int = 2,
    ):
        if variant not in VARIANTS:
            raise InterfaceError(
                f"{name}: unknown two-level variant {variant!r}; "
                f"choose from {VARIANTS}"
            )
        if (1 << history_bits) > l2_sets_per_table:
            raise InterfaceError(
                f"{name}: pattern table ({l2_sets_per_table} sets) cannot "
                f"index {history_bits} history bits"
            )
        lane_bits = max(1, (fetch_width - 1).bit_length())
        self._codec = MetaCodec(
            [
                ("cand_valid", 1),
                ("lane", lane_bits),
                ("hist", history_bits),
                ("ctr", counter_bits),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            # GAg/GAp read the composer's global history; PAg/PAp own theirs.
            uses_global_history=variant.startswith("G"),
        )
        if variant.startswith("G"):
            self.required_ghist_bits = history_bits
        self.variant = variant
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.l1_entries = l1_entries
        self._l1_index_bits = log2_exact(l1_entries)
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self.l2_tables = l2_tables if variant.endswith("p") else 1
        self.l2_sets = l2_sets_per_table
        self._l2_index_bits = log2_exact(l2_sets_per_table)
        self._spec = self._build_spec()
        # Level 1: per-branch history registers.  The G variants read the
        # composer's single global register instead, so their level-1 spec
        # table is elided — but the array is still allocated (zero bits of
        # declared storage, zero-filled) to keep the state layout uniform.
        self._l1_table = DerivedTable(self._l1_table_spec())
        # Level 2: pattern tables.
        self._l2_table = DerivedTable(
            self._spec.tables[-1], init={"ctr": self._weak_nt}
        )
        self.derived_tables = {
            "l1_histories": self._l1_table,
            "l2_patterns": self._l2_table,
        }
        self._l1 = self._l1_table.data("hist")
        # Legacy-shaped 2-D view (tables x sets), also when l2_tables == 1.
        self._l2 = self._l2_table.data("ctr").reshape(
            self.l2_tables, self.l2_sets
        )

    # ------------------------------------------------------------------
    def _l1_index(self, branch_pc: int) -> int:
        return self._l1_table.row(branch_pc)

    def _level1_history(self, branch_pc: int, ghist: int) -> int:
        if self.variant.startswith("G"):
            return ghist & mask(self.history_bits)
        return int(self._l1[self._l1_index(branch_pc)]) & mask(self.history_bits)

    def _l2_slot(self, branch_pc: int, history: int) -> Tuple[int, int]:
        # Way selection is the derived runtime's hash; the row is the
        # level-1 history's low index bits (the G variants' declared
        # ghist_raw closed form; a custom hook for the P variants, whose
        # history comes from their own registers).
        table = self._l2_table.way_of(branch_pc)
        index = history & mask(self._l2_index_bits)
        return table, index

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            branch_pc = req.fetch_pc + lane
            history = self._level1_history(branch_pc, req.ghist)
            table, index = self._l2_slot(branch_pc, history)
            counter = int(self._l2[table, index])
            out.slots[lane].hit = True
            out.slots[lane].taken = counter_taken(counter, self.counter_bits)
            meta = self._codec.pack(
                cand_valid=1, lane=lane, hist=history, ctr=counter
            )
            return out, meta
        return out, self._codec.pack(cand_valid=0, lane=0, hist=0, ctr=0)

    # ------------------------------------------------------------------
    def _meta(self, bundle: UpdateBundle):
        fields = self._codec.unpack(bundle.meta)
        if not fields["cand_valid"]:
            return None
        lane = int(fields["lane"])
        if lane >= len(bundle.br_mask) or not bundle.br_mask[lane]:
            return None
        return lane, int(fields["hist"]), int(fields["ctr"])

    def fire(self, bundle: UpdateBundle) -> None:
        """Speculatively advance the per-branch history (P variants)."""
        if self.variant.startswith("G"):
            return  # the composer's global provider handles speculation
        info = self._meta(bundle)
        if info is None:
            return
        lane, _, _ = info
        self._l1_table.roll(
            self._l1_index(bundle.fetch_pc + lane), bundle.taken_mask[lane]
        )

    def on_repair(self, bundle: UpdateBundle) -> None:
        """Restore the misspeculated per-branch history from metadata."""
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, _ = info
        self._l1[self._l1_index(bundle.fetch_pc + lane)] = history

    def on_mispredict(self, bundle: UpdateBundle) -> None:
        """Fast repair: predict-time history plus the corrected outcome."""
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, _ = info
        self._l1_table.roll(
            self._l1_index(bundle.fetch_pc + lane),
            bundle.taken_mask[lane],
            current=history,
        )

    def on_update(self, bundle: UpdateBundle) -> None:
        """Commit-time pattern-table training from the metadata counter."""
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, counter = info
        table, index = self._l2_slot(bundle.fetch_pc + lane, history)
        self._l2_table.train(
            index, bundle.taken_mask[lane], way=table, counter=counter
        )

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        return derived_storage(
            self.name,
            self._spec,
            # One level-1 register read plus one pattern counter read per
            # prediction, for every variant (the G variants read the
            # composer's register, same width).
            access_bits=self.history_bits + self.counter_bits,
            zero_keys=("l1_histories",),
        )

    def reset(self) -> None:
        self._l1_table.reset()
        self._l2_table.reset()

    def columnar_kernel(self):
        # P variants speculatively advance per-branch level-1 registers at
        # fire time on every candidate packet; their spec declares
        # kernel="none" and the generator returns None for them.
        from repro.derive.kernels import derived_kernel

        return derived_kernel(self)

    def spec(self):
        return self._spec

    def _l1_table_spec(self):
        from repro.spec import FieldSpec, IndexFn, TableSpec

        return TableSpec(
            "l1_histories",
            entries=self.l1_entries,
            fields=(FieldSpec("hist", self.history_bits),),
            # Speculative fire/repair shift protocol, not a pure
            # commit-time shift-in.
            update="exact-event",
            index=IndexFn("pc", self._l1_index_bits, key="branch_pc"),
            probe=lambda c, pc, g, l, p: c._l1_index(pc),
        )

    def _build_spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        global_l1 = self.variant.startswith("G")
        tables = []
        if not global_l1:
            tables.append(self._l1_table_spec())
        tables.append(
            TableSpec(
                "l2_patterns",
                entries=self.l2_sets,
                ways=self.l2_tables,
                fields=(FieldSpec("ctr", self.counter_bits),),
                update="saturating-counter",
                index=(
                    IndexFn(
                        "ghist_raw",
                        self._l2_index_bits,
                        self.history_bits,
                        key="branch_pc",
                    )
                    if global_l1
                    # P variants index from their own level-1 registers; no
                    # closed form over the architectural stimulus exists.
                    else IndexFn("custom", self._l2_index_bits, self.history_bits)
                ),
                probe=(
                    (
                        lambda c, pc, g, l, p: c._l2_slot(
                            pc, c._level1_history(pc, g)
                        )[1]
                    )
                    if global_l1
                    else None
                ),
            )
        )
        return ComponentSpec(
            component=type(self).__name__,
            tables=tuple(tables),
            meta_fields=(
                FieldSpec("cand_valid", 1),
                FieldSpec("lane", lane_bits),
                FieldSpec("hist", self.history_bits),
                FieldSpec("ctr", self.counter_bits),
            ),
            ghist_bits=self.history_bits if global_l1 else 0,
            kernel="closed-form" if global_l1 else "none",
            learns_from=("branch",),
        )
