"""Two-level adaptive predictors [Yeh & Patt 1991] — library extension.

The foundational §II-A citation: a first-level *history register table*
(one shift register per branch set, or one global register) indexes a
second-level *pattern history table* of saturating counters.  The four
classic organizations come from the two choices:

============  =====================  ======================
variant       level-1 history        level-2 pattern table
============  =====================  ======================
``GAg``       one global register    one global table
``GAp``       one global register    per-branch-set tables
``PAg``       per-branch registers   one global table
``PAp``       per-branch registers   per-branch-set tables
============  =====================  ======================

Unlike the `HBIM` local variant (which consumes the composer's local
history provider), this component owns its level-1 table internally and
keeps it consistent using the event protocol: histories advance
speculatively at ``fire`` time and are restored from metadata on ``repair``
and ``mispredict`` — the same discipline the loop predictor follows, which
is exactly why the paper's interface carries metadata to those events.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro._util import (
    counter_taken,
    hash_pc,
    log2_exact,
    mask,
    saturating_update,
    shift_in,
)
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import InterfaceError, PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector

VARIANTS = ("GAg", "GAp", "PAg", "PAp")


class TwoLevel(PredictorComponent):
    """Yeh-Patt two-level adaptive predictor (one prediction per packet).

    Tracks one branch per fetch packet (the first branch slot identified by
    ``predict_in``), like the other single-candidate components (§III-C).
    """

    def __init__(
        self,
        name: str,
        latency: int = 3,
        variant: str = "PAg",
        fetch_width: int = 4,
        history_bits: int = 10,
        l1_entries: int = 256,
        l2_sets_per_table: int = 1024,
        l2_tables: int = 16,
        counter_bits: int = 2,
    ):
        if variant not in VARIANTS:
            raise InterfaceError(
                f"{name}: unknown two-level variant {variant!r}; "
                f"choose from {VARIANTS}"
            )
        if (1 << history_bits) > l2_sets_per_table:
            raise InterfaceError(
                f"{name}: pattern table ({l2_sets_per_table} sets) cannot "
                f"index {history_bits} history bits"
            )
        lane_bits = max(1, (fetch_width - 1).bit_length())
        self._codec = MetaCodec(
            [
                ("cand_valid", 1),
                ("lane", lane_bits),
                ("hist", history_bits),
                ("ctr", counter_bits),
            ]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            # GAg/GAp read the composer's global history; PAg/PAp own theirs.
            uses_global_history=variant.startswith("G"),
        )
        if variant.startswith("G"):
            self.required_ghist_bits = history_bits
        self.variant = variant
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.l1_entries = l1_entries
        self._l1_index_bits = log2_exact(l1_entries)
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        # Level 1: per-branch history registers (P variants only).
        self._l1 = np.zeros(l1_entries, dtype=np.int64)
        # Level 2: pattern tables.
        self.l2_tables = l2_tables if variant.endswith("p") else 1
        self.l2_sets = l2_sets_per_table
        self._l2_index_bits = log2_exact(l2_sets_per_table)
        self._l2 = np.full(
            (self.l2_tables, l2_sets_per_table), self._weak_nt, dtype=np.uint8
        )

    # ------------------------------------------------------------------
    def _l1_index(self, branch_pc: int) -> int:
        return hash_pc(branch_pc, self._l1_index_bits)

    def _level1_history(self, branch_pc: int, ghist: int) -> int:
        if self.variant.startswith("G"):
            return ghist & mask(self.history_bits)
        return int(self._l1[self._l1_index(branch_pc)]) & mask(self.history_bits)

    def _l2_slot(self, branch_pc: int, history: int) -> Tuple[int, int]:
        table = (
            hash_pc(branch_pc, max(1, (self.l2_tables - 1).bit_length()))
            % self.l2_tables
        )
        index = history & mask(self._l2_index_bits)
        return table, index

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            branch_pc = req.fetch_pc + lane
            history = self._level1_history(branch_pc, req.ghist)
            table, index = self._l2_slot(branch_pc, history)
            counter = int(self._l2[table, index])
            out.slots[lane].hit = True
            out.slots[lane].taken = counter_taken(counter, self.counter_bits)
            meta = self._codec.pack(
                cand_valid=1, lane=lane, hist=history, ctr=counter
            )
            return out, meta
        return out, self._codec.pack(cand_valid=0, lane=0, hist=0, ctr=0)

    # ------------------------------------------------------------------
    def _meta(self, bundle: UpdateBundle):
        fields = self._codec.unpack(bundle.meta)
        if not fields["cand_valid"]:
            return None
        lane = int(fields["lane"])
        if lane >= len(bundle.br_mask) or not bundle.br_mask[lane]:
            return None
        return lane, int(fields["hist"]), int(fields["ctr"])

    def fire(self, bundle: UpdateBundle) -> None:
        """Speculatively advance the per-branch history (P variants)."""
        if self.variant.startswith("G"):
            return  # the composer's global provider handles speculation
        info = self._meta(bundle)
        if info is None:
            return
        lane, _, _ = info
        index = self._l1_index(bundle.fetch_pc + lane)
        self._l1[index] = shift_in(
            int(self._l1[index]), bundle.taken_mask[lane], self.history_bits
        )

    def on_repair(self, bundle: UpdateBundle) -> None:
        """Restore the misspeculated per-branch history from metadata."""
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, _ = info
        self._l1[self._l1_index(bundle.fetch_pc + lane)] = history

    def on_mispredict(self, bundle: UpdateBundle) -> None:
        """Fast repair: predict-time history plus the corrected outcome."""
        if self.variant.startswith("G"):
            return
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, _ = info
        corrected = shift_in(history, bundle.taken_mask[lane], self.history_bits)
        self._l1[self._l1_index(bundle.fetch_pc + lane)] = corrected

    def on_update(self, bundle: UpdateBundle) -> None:
        """Commit-time pattern-table training from the metadata counter."""
        info = self._meta(bundle)
        if info is None:
            return
        lane, history, counter = info
        taken = bundle.taken_mask[lane]
        table, index = self._l2_slot(bundle.fetch_pc + lane, history)
        self._l2[table, index] = saturating_update(
            counter, taken, self.counter_bits
        )

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        l1_bits = (
            0 if self.variant.startswith("G") else self.l1_entries * self.history_bits
        )
        l2_bits = self.l2_tables * self.l2_sets * self.counter_bits
        return StorageReport(
            self.name,
            sram_bits=l1_bits + l2_bits,
            breakdown={"l1_histories": l1_bits, "l2_patterns": l2_bits},
            access_bits=self.history_bits + self.counter_bits,
        )

    def reset(self) -> None:
        self._l1.fill(0)
        self._l2.fill(self._weak_nt)

    def columnar_kernel(self):
        # P variants speculatively advance per-branch level-1 registers at
        # fire time on every candidate packet; they stay scalar.
        if not self.variant.startswith("G"):
            return None
        from repro.kernels.components import TwoLevelKernel

        return TwoLevelKernel(self)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        global_l1 = self.variant.startswith("G")
        tables = []
        if not global_l1:
            tables.append(
                TableSpec(
                    "l1_histories",
                    entries=self.l1_entries,
                    fields=(FieldSpec("hist", self.history_bits),),
                    # Speculative fire/repair shift protocol, not a pure
                    # commit-time shift-in.
                    update="exact-event",
                    index=IndexFn("pc", self._l1_index_bits, key="branch_pc"),
                    probe=lambda c, pc, g, l, p: c._l1_index(pc),
                )
            )
        tables.append(
            TableSpec(
                "l2_patterns",
                entries=self.l2_sets,
                ways=self.l2_tables,
                fields=(FieldSpec("ctr", self.counter_bits),),
                update="saturating-counter",
                index=(
                    IndexFn(
                        "ghist_raw",
                        self._l2_index_bits,
                        self.history_bits,
                        key="branch_pc",
                    )
                    if global_l1
                    # P variants index from their own level-1 registers; no
                    # closed form over the architectural stimulus exists.
                    else IndexFn("custom", self._l2_index_bits, self.history_bits)
                ),
                probe=(
                    (
                        lambda c, pc, g, l, p: c._l2_slot(
                            pc, c._level1_history(pc, g)
                        )[1]
                    )
                    if global_l1
                    else None
                ),
            )
        )
        return ComponentSpec(
            component=type(self).__name__,
            tables=tuple(tables),
            meta_fields=(
                FieldSpec("cand_valid", 1),
                FieldSpec("lane", lane_bits),
                FieldSpec("hist", self.history_bits),
                FieldSpec("ctr", self.counter_bits),
            ),
            ghist_bits=self.history_bits if global_l1 else 0,
            kernel="closed-form" if global_l1 else "none",
            learns_from=("branch",),
        )
