"""Perceptron predictor [Jiménez & Lin, HPCA'01] — library extension.

The paper lists the perceptron as a sub-component type that "may be
implemented similarly" with the COBRA interface (§III-G); we include it to
demonstrate that claim.  The perceptron provides a single prediction per
packet (§III-C): it predicts the first slot ``predict_in`` identifies as a
conditional branch, or — lacking branch-location information — overrides
no slot at all.

The metadata stores the dot-product magnitude bucket and the predicted
direction so the update rule (train on mispredict or weak confidence) needs
no recomputation.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro._util import hash_pc, log2_exact, mask
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector


class Perceptron(PredictorComponent):
    """Global-history perceptron with one weight vector per branch hash."""

    def __init__(
        self,
        name: str,
        latency: int = 3,
        n_entries: int = 256,
        fetch_width: int = 4,
        history_bits: int = 24,
        weight_bits: int = 8,
    ):
        lane_bits = max(1, (fetch_width - 1).bit_length())
        # |sum| is clamped into a 12-bit magnitude for the metadata.
        self._codec = MetaCodec(
            [("cand_valid", 1), ("lane", lane_bits), ("taken", 1), ("magnitude", 12)]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
        )
        self.n_entries = n_entries
        self.fetch_width = fetch_width
        self.required_ghist_bits = history_bits
        self.history_bits = history_bits
        self.weight_bits = weight_bits
        self._index_bits = log2_exact(n_entries)
        # weights[:, 0] is the bias weight.
        self._weights = np.zeros((n_entries, history_bits + 1), dtype=np.int32)
        self.threshold = int(1.93 * history_bits + 14)
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))

    # ------------------------------------------------------------------
    def _inputs(self, ghist: int) -> np.ndarray:
        bits = np.fromiter(
            ((ghist >> i) & 1 for i in range(self.history_bits)),
            dtype=np.int32,
            count=self.history_bits,
        )
        signed = bits * 2 - 1
        return np.concatenate(([1], signed))

    def _dot(self, branch_pc: int, ghist: int) -> Tuple[int, int]:
        index = hash_pc(branch_pc, self._index_bits)
        total = int(self._weights[index] @ self._inputs(ghist))
        return index, total

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            _, total = self._dot(req.fetch_pc + lane, req.ghist)
            taken = total >= 0
            out_slot = out.slots[lane]
            out_slot.hit = True
            out_slot.taken = taken
            meta = self._codec.pack(
                cand_valid=1,
                lane=lane,
                taken=int(taken),
                magnitude=min(abs(total), mask(12)),
            )
            return out, meta
        return out, self._codec.pack(cand_valid=0, lane=0, taken=0, magnitude=0)

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        fields = self._codec.unpack(bundle.meta)
        if not fields["cand_valid"]:
            return
        lane = int(fields["lane"])
        if lane >= len(bundle.br_mask) or not bundle.br_mask[lane]:
            return
        taken = bundle.taken_mask[lane]
        predicted = bool(fields["taken"])
        magnitude = int(fields["magnitude"])
        if predicted == taken and magnitude > self.threshold:
            return  # confident and correct: no training needed
        index = hash_pc(bundle.fetch_pc + lane, self._index_bits)
        direction = 1 if taken else -1
        updated = self._weights[index] + direction * self._inputs(bundle.ghist)
        np.clip(updated, self._weight_min, self._weight_max, out=self._weights[index])

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        bits = self.n_entries * (self.history_bits + 1) * self.weight_bits
        return StorageReport(
            self.name, sram_bits=bits, breakdown={"weights": bits},
            access_bits=(self.history_bits + 1) * self.weight_bits,
        )

    def reset(self) -> None:
        self._weights.fill(0)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "weights",
                    entries=self.n_entries,
                    fields=(
                        FieldSpec("w", self.weight_bits, self.history_bits + 1),
                    ),
                    update="saturating-counter",
                    index=IndexFn("pc", self._index_bits, key="branch_pc"),
                    probe=lambda c, pc, g, l, p: c._dot(pc, g)[0],
                ),
            ),
            meta_fields=(
                FieldSpec("cand_valid", 1),
                FieldSpec("lane", lane_bits),
                FieldSpec("taken", 1),
                FieldSpec("magnitude", 12),
            ),
            # The index is PC-only but prediction consumes the history as
            # dot-product inputs, so the demand is declared explicitly.
            ghist_bits=self.history_bits,
            kernel="none",
            learns_from=("branch",),
        )
