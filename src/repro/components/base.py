"""Shared building blocks for predictor sub-components.

:class:`MetaCodec` gives components a declarative way to pack structured
per-prediction state into the interface's fixed-width metadata integer
(§III-D), mirroring how RTL implementations concatenate bitfields.

:class:`IndexScheme` implements the parameterized indexing option of the
counter tables (§III-G1): "indexed by a global history, local history, PC,
or any hashed combination of the above".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro._util import fold_history, hash_pc, mask

FieldSpec = Tuple[str, int, int]  # (name, bits, count)


class MetaCodec:
    """Packs named bitfields (scalars or fixed-length vectors) into an int.

    Fields are packed LSB-first in declaration order.  A field declared with
    ``count > 1`` packs a vector of that many ``bits``-wide lanes — the
    common case for superscalar components that store one counter per fetch
    slot.

    Example::

        codec = MetaCodec([("hit", 1, 1), ("ctr", 2, 4)])
        meta = codec.pack(hit=1, ctr=[3, 0, 1, 2])
        fields = codec.unpack(meta)   # {"hit": 1, "ctr": [3, 0, 1, 2]}
    """

    def __init__(self, fields: Sequence[Union[Tuple[str, int], FieldSpec]]):
        self._fields: List[FieldSpec] = []
        offset = 0
        self._offsets: Dict[str, Tuple[int, int, int]] = {}
        for spec in fields:
            if len(spec) == 2:
                name, bits = spec  # type: ignore[misc]
                count = 1
            else:
                name, bits, count = spec  # type: ignore[misc]
            if bits <= 0 or count <= 0:
                raise ValueError(f"field {name!r}: bits and count must be positive")
            if name in self._offsets:
                raise ValueError(f"duplicate metadata field {name!r}")
            self._fields.append((name, bits, count))
            self._offsets[name] = (offset, bits, count)
            offset += bits * count
        self.width = offset
        # pack/unpack run once per component per prediction — the layout
        # (including each field's lane mask) is flattened ahead of time so
        # the hot loops do no dict lookups or mask arithmetic.
        self._layout = [
            (name, bits, count, self._offsets[name][0], mask(bits))
            for name, bits, count in self._fields
        ]

    def pack(self, **values) -> int:
        meta = 0
        for name, bits, count, offset, lane_mask in self._layout:
            value = values.pop(name, 0)
            if count == 1:
                lane_int = int(value)
                if lane_int < 0 or lane_int > lane_mask:
                    raise ValueError(
                        f"field {name!r}: value {lane_int} exceeds {bits} bits"
                    )
                meta |= lane_int << offset
            else:
                if len(value) != count:
                    raise ValueError(
                        f"field {name!r} expects {count} lanes, got {len(value)}"
                    )
                for lane_value in value:
                    lane_int = int(lane_value)
                    if lane_int < 0 or lane_int > lane_mask:
                        raise ValueError(
                            f"field {name!r}: value {lane_int} exceeds {bits} bits"
                        )
                    meta |= lane_int << offset
                    offset += bits
        if values:
            raise ValueError(f"unknown metadata fields: {sorted(values)}")
        return meta

    def unpack(self, meta: int) -> Dict[str, Union[int, List[int]]]:
        out: Dict[str, Union[int, List[int]]] = {}
        for name, bits, count, offset, lane_mask in self._layout:
            if count == 1:
                out[name] = (meta >> offset) & lane_mask
            else:
                lanes = []
                for _ in range(count):
                    lanes.append((meta >> offset) & lane_mask)
                    offset += bits
                out[name] = lanes
        return out


class IndexScheme:
    """Computes set indices for counter tables from PC and histories.

    Supported schemes:

    - ``"pc"``      — hashed fetch PC only.
    - ``"ghist"``   — folded global history only (Alpha-21264 global table).
    - ``"lhist"``   — folded local history XOR a short PC hash (two-level
      local predictor second stage).
    - ``"gshare"``  — PC hash XOR folded global history (GShare).
    """

    SCHEMES = ("pc", "ghist", "lhist", "gshare", "gselect", "phist", "pshare")

    def __init__(self, scheme: str, index_bits: int, history_bits: int = 0):
        if scheme not in self.SCHEMES:
            raise ValueError(
                f"unknown index scheme {scheme!r}; choose from {self.SCHEMES}"
            )
        if scheme != "pc" and history_bits <= 0:
            raise ValueError(f"scheme {scheme!r} requires history_bits > 0")
        self.scheme = scheme
        self.index_bits = index_bits
        self.history_bits = history_bits

    @property
    def uses_global_history(self) -> bool:
        return self.scheme in ("ghist", "gshare", "gselect")

    @property
    def uses_local_history(self) -> bool:
        return self.scheme == "lhist"

    @property
    def uses_path_history(self) -> bool:
        return self.scheme in ("phist", "pshare")

    def index_fn(self, key: str = "packet", fetch_width: int = 1):
        """This scheme as a declarative :class:`repro.spec.IndexFn`."""
        from repro.spec import IndexFn

        return IndexFn(
            self.scheme,
            self.index_bits,
            self.history_bits,
            key=key,
            fetch_width=fetch_width,
        )

    def index(self, packet_pc: int, ghist: int, lhist: int, phist: int = 0) -> int:
        bits = self.index_bits
        if self.scheme == "pc":
            return hash_pc(packet_pc, bits)
        if self.scheme == "ghist":
            return fold_history(ghist, self.history_bits, bits)
        if self.scheme == "gshare":
            return hash_pc(packet_pc, bits) ^ fold_history(
                ghist, self.history_bits, bits
            )
        if self.scheme == "gselect":
            # GSelect [McFarling 1993]: concatenate PC bits with history
            # bits instead of XORing them.
            hist_part = bits // 2
            pc_part = bits - hist_part
            return (hash_pc(packet_pc, pc_part) << hist_part) | (
                ghist & ((1 << hist_part) - 1)
            )
        if self.scheme == "phist":
            return fold_history(phist, self.history_bits, bits)
        if self.scheme == "pshare":
            return hash_pc(packet_pc, bits) ^ fold_history(
                phist, self.history_bits, bits
            )
        # "lhist": fold the local history and mix in a little PC so distinct
        # branches with identical histories do not always collide.
        return fold_history(lhist, self.history_bits, bits) ^ hash_pc(
            packet_pc, max(bits - 2, 1)
        )
