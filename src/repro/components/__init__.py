"""The COBRA sub-component library (§III-G).

Starter implementations of commonly used predictor sub-components, all
conforming to the :class:`~repro.core.interface.PredictorComponent`
interface: bimodal counter tables with parameterized indexing, a large
2-cycle BTB and a small 1-cycle micro-BTB, a tournament selector, TAGE, and
a loop predictor — plus perceptron and statistical-corrector components,
which the paper notes "may be implemented similarly".
"""

from repro.components.base import IndexScheme, MetaCodec
from repro.components.bimodal import HBIM
from repro.components.btb import BTB, MicroBTB
from repro.components.gtag import GTag
from repro.components.ittage import ITTAGE
from repro.components.loop import LoopPredictor
from repro.components.perceptron import Perceptron
from repro.components.statistical_corrector import StatisticalCorrector
from repro.components.tage import TAGE, TageTableConfig, geometric_history_lengths
from repro.components.tournament import Tourney
from repro.components.twolevel import TwoLevel
from repro.components.ras import ReturnAddressStack
from repro.components.library import standard_library

__all__ = [
    "IndexScheme",
    "MetaCodec",
    "HBIM",
    "BTB",
    "MicroBTB",
    "GTag",
    "ITTAGE",
    "LoopPredictor",
    "Perceptron",
    "StatisticalCorrector",
    "TAGE",
    "TageTableConfig",
    "geometric_history_lengths",
    "Tourney",
    "TwoLevel",
    "ReturnAddressStack",
    "standard_library",
]
