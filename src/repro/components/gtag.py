"""GTag: a single partially tagged history-indexed counter table.

This is the backing direction predictor of the original BOOM design (the
"B2" topology in §V-A pairs a partially tagged table of history-indexed
counters, GTAG, with a PC-indexed bimodal).  On a tag hit it overrides the
incoming direction; on a miss it passes ``predict_in`` through (§III-F).

Storage, the gshare row hash, the counter training, storage accounting,
and the columnar kernel are spec-derived (:mod:`repro.derive`).  The tag
hash and the allocate-on-miss walk have no declared closed form and stay
hand-written hooks — ``tag_columns`` is the vectorized tag hook the
generated kernel consumes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro._util import counter_taken, fold_history, log2_exact, mask
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector
from repro.derive.tables import DerivedTable, derived_storage


class GTag(PredictorComponent):
    """Partially tagged, global-history-indexed superscalar counter table."""

    def __init__(
        self,
        name: str,
        latency: int = 3,
        n_sets: int = 512,
        fetch_width: int = 4,
        history_bits: int = 16,
        tag_bits: int = 10,
        counter_bits: int = 2,
    ):
        self._codec = MetaCodec(
            [("hit", 1), ("ctr", counter_bits, fetch_width)]
        )
        super().__init__(
            name,
            latency,
            meta_bits=self._codec.width,
            uses_global_history=True,
        )
        self.required_ghist_bits = history_bits
        self.n_sets = n_sets
        self.fetch_width = fetch_width
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        self.counter_bits = counter_bits
        self._index_bits = log2_exact(n_sets)
        self._weak_nt = (1 << (counter_bits - 1)) - 1
        self._spec = self._build_spec()
        self._counters = DerivedTable(
            self._spec.tables[0], init={"ctr": self._weak_nt}
        )
        self._tagstore = DerivedTable(self._spec.tables[1])
        self.derived_tables = {
            "counters": self._counters,
            "tags": self._tagstore,
        }
        self._valid = self._tagstore.data("valid")
        self._tags = self._tagstore.data("tag")
        self._ctrs = self._counters.lanes("ctr")

    # ------------------------------------------------------------------
    def _tag(self, fetch_pc: int, ghist: int) -> int:
        """Custom tag hash (no declared closed form)."""
        packet = (fetch_pc - (fetch_pc % self.fetch_width)) // self.fetch_width
        return (
            (packet >> 2)
            ^ fold_history(ghist, self.history_bits, self.tag_bits)
        ) & mask(self.tag_bits)

    def _index_tag(self, fetch_pc: int, ghist: int) -> Tuple[int, int]:
        return (
            self._counters.row(fetch_pc, ghist),
            self._tag(fetch_pc, ghist),
        )

    def tag_columns(self, ctx) -> np.ndarray:
        """Vectorized :meth:`_tag` — the generated kernel's gate hook."""
        from repro.kernels.vector_ops import fold_history_vec

        packet = ctx.aligned // self.fetch_width
        return (
            (packet >> 2)
            ^ fold_history_vec(ctx.req_ghist, self.history_bits, self.tag_bits)
        ) & mask(self.tag_bits)

    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        index, tag = self._index_tag(req.fetch_pc, req.ghist)
        out = predict_in[0].copy()
        hit = bool(self._valid[index]) and int(self._tags[index]) == tag
        row = self._ctrs[index]
        if hit:
            offset = req.fetch_pc % self.fetch_width
            for slot_idx, slot in enumerate(out.slots):
                if slot.is_jump:
                    continue
                slot.hit = True
                slot.taken = counter_taken(
                    int(row[offset + slot_idx]), self.counter_bits
                )
        meta = self._codec.pack(hit=int(hit), ctr=row.tolist())
        return out, meta

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        if not any(bundle.br_mask):
            return
        fields = self._codec.unpack(bundle.meta)
        index, tag = self._index_tag(bundle.fetch_pc, bundle.ghist)
        offset = bundle.fetch_pc % self.fetch_width
        was_hit = bool(fields["hit"])
        if was_hit:
            counters = fields["ctr"]
            for slot_idx, is_branch in enumerate(bundle.br_mask):
                if is_branch:
                    lane = offset + slot_idx
                    # Closed-form train from the predict-time counter in
                    # the metadata (§III-D).
                    self._counters.train(
                        index,
                        bundle.taken_mask[slot_idx],
                        lane=lane if self.fetch_width > 1 else None,
                        counter=int(counters[lane]),
                    )
        elif bundle.mispredicted:
            # Allocate on a misprediction the backing predictor got wrong:
            # claim the set, seeding counters weakly toward the outcomes.
            # The allocate-on-miss walk is not closed-form; it writes the
            # derived arrays directly.
            self._valid[index] = True
            self._tags[index] = tag
            self._ctrs[index, :] = self._weak_nt
            for slot_idx, is_branch in enumerate(bundle.br_mask):
                if is_branch:
                    lane = offset + slot_idx
                    taken = bundle.taken_mask[slot_idx]
                    self._ctrs[index, lane] = (
                        self._weak_nt + 1 if taken else self._weak_nt
                    )

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        return derived_storage(self.name, self._spec)

    def reset(self) -> None:
        self._counters.reset()
        self._tagstore.reset()

    def columnar_kernel(self):
        from repro.derive.kernels import derived_kernel

        return derived_kernel(self)

    def spec(self):
        return self._spec

    def _build_spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        index = IndexFn(
            "gshare",
            self._index_bits,
            self.history_bits,
            key="packet",
            fetch_width=self.fetch_width,
        )

        def probe(c, pc, g, l, p):
            return c._index_tag(pc, g)[0]

        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "counters",
                    entries=self.n_sets,
                    fields=(FieldSpec("ctr", self.counter_bits, self.fetch_width),),
                    update="saturating-counter",
                    index=index,
                    probe=probe,
                ),
                TableSpec(
                    "tags",
                    entries=self.n_sets,
                    fields=(FieldSpec("valid", 1), FieldSpec("tag", self.tag_bits)),
                    update="allocate-on-miss",
                    index=index,
                    probe=probe,
                ),
            ),
            meta_fields=(
                FieldSpec("hit", 1),
                FieldSpec("ctr", self.counter_bits, self.fetch_width),
            ),
            ghist_bits=self.history_bits,
            kernel="event-replay",
            learns_from=("branch",),
        )
