"""Loop predictor (§III-G5).

Corrects periodic mispredictions made by a base predictor: for a branch
that goes one direction exactly ``trip_count`` times and then the other way
once, the loop predictor predicts the exit on the right iteration.

Unlike the history-correlated components, the loop predictor is *updated at
query time* (the ``fire`` event advances the speculative iteration counter)
and *repaired immediately on mispredicts*, because misspeculated fires
corrupt its counters.  The metadata field tracks the pre-fire counter
contents so entries can be restored during the repair phase (§III-D/E).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._util import hash_pc, log2_exact, mask
from repro.components.base import MetaCodec
from repro.core.events import PredictRequest, UpdateBundle
from repro.core.interface import PredictorComponent, StorageReport
from repro.core.prediction import PredictionVector


class LoopPredictor(PredictorComponent):
    """Direct-mapped, partially tagged loop predictor.

    A loop predictor can track only one branch per fetch packet (§III-C
    allows single-prediction components); the candidate is the first slot
    that ``predict_in`` identifies as a conditional branch and that matches
    an entry.
    """

    CONF_MAX = 7
    CONF_THRESHOLD = 4

    def __init__(
        self,
        name: str,
        latency: int = 3,
        n_entries: int = 256,
        fetch_width: int = 4,
        tag_bits: int = 10,
        iter_bits: int = 10,
    ):
        lane_bits = max(1, (fetch_width - 1).bit_length())
        self._codec = MetaCodec(
            [("cand_valid", 1), ("lane", lane_bits), ("spec_iter", iter_bits)]
        )
        super().__init__(name, latency, meta_bits=self._codec.width)
        self.n_entries = n_entries
        self.fetch_width = fetch_width
        self.tag_bits = tag_bits
        self.iter_bits = iter_bits
        self._index_bits = log2_exact(n_entries)
        self._valid = np.zeros(n_entries, dtype=bool)
        self._tags = np.zeros(n_entries, dtype=np.int64)
        self._direction = np.zeros(n_entries, dtype=bool)  # loop-body direction
        self._trip = np.zeros(n_entries, dtype=np.int64)
        self._spec_iter = np.zeros(n_entries, dtype=np.int64)
        self._commit_iter = np.zeros(n_entries, dtype=np.int64)
        self._conf = np.zeros(n_entries, dtype=np.int64)
        # Consecutive zero-length "loop bodies": a streak means the entry's
        # direction bit is inverted (allocated on a cold-start mispredict of
        # a taken iteration rather than on the loop exit).
        self._zero_streak = np.zeros(n_entries, dtype=np.int64)

    # ------------------------------------------------------------------
    def _index_tag(self, branch_pc: int) -> Tuple[int, int]:
        index = hash_pc(branch_pc, self._index_bits)
        tag = (branch_pc >> self._index_bits) & mask(self.tag_bits)
        return index, tag

    def _entry_for(self, branch_pc: int) -> Optional[int]:
        index, tag = self._index_tag(branch_pc)
        if self._valid[index] and int(self._tags[index]) == tag:
            return index
        return None

    # ------------------------------------------------------------------
    def lookup(
        self, req: PredictRequest, predict_in: Sequence[PredictionVector]
    ) -> Tuple[PredictionVector, int]:
        out = predict_in[0].copy()
        for lane, slot in enumerate(predict_in[0].slots):
            if not (slot.hit and slot.is_branch):
                continue
            entry = self._entry_for(req.fetch_pc + lane)
            if entry is None:
                continue
            spec_iter = int(self._spec_iter[entry])
            meta = self._codec.pack(cand_valid=1, lane=lane, spec_iter=spec_iter)
            if int(self._conf[entry]) >= self.CONF_THRESHOLD and self._trip[entry] > 0:
                body = bool(self._direction[entry])
                # Predict the exit only when the speculative count matches
                # the trip exactly: if the counter has drifted past it (a
                # missed speculative update), predicting exit on *every*
                # remaining iteration would turn one mispredict into many.
                predicted = not body if spec_iter == int(self._trip[entry]) else body
                out_slot = out.slots[lane]
                out_slot.hit = True
                out_slot.taken = predicted
            return out, meta
        return out, self._codec.pack(cand_valid=0, lane=0, spec_iter=0)

    # ------------------------------------------------------------------
    def _meta_entry(self, bundle: UpdateBundle):
        """Resolve (entry, lane, pre-fire spec_iter) from metadata."""
        fields = self._codec.unpack(bundle.meta)
        if not fields["cand_valid"]:
            return None, None, None
        lane = int(fields["lane"])
        entry = self._entry_for(bundle.fetch_pc + lane)
        return entry, lane, int(fields["spec_iter"])

    def fire(self, bundle: UpdateBundle) -> None:
        """Speculatively advance the iteration counter at predict time."""
        entry, lane, _ = self._meta_entry(bundle)
        if entry is None or lane >= len(bundle.taken_mask):
            return
        if not bundle.br_mask[lane]:
            return
        if bundle.taken_mask[lane] == bool(self._direction[entry]):
            self._spec_iter[entry] = min(
                int(self._spec_iter[entry]) + 1, mask(self.iter_bits)
            )
        else:
            self._spec_iter[entry] = 0

    def on_repair(self, bundle: UpdateBundle) -> None:
        """Restore the speculative counter from the metadata snapshot."""
        entry, _, spec_iter = self._meta_entry(bundle)
        if entry is not None:
            self._spec_iter[entry] = spec_iter

    def on_mispredict(self, bundle: UpdateBundle) -> None:
        """Fast repair + resteer using the resolved direction."""
        entry, lane, spec_iter = self._meta_entry(bundle)
        if entry is None:
            return
        self._spec_iter[entry] = spec_iter
        if lane < len(bundle.taken_mask) and bundle.br_mask[lane]:
            if bundle.taken_mask[lane] == bool(self._direction[entry]):
                self._spec_iter[entry] = min(
                    spec_iter + 1, mask(self.iter_bits)
                )
            else:
                self._spec_iter[entry] = 0

    # ------------------------------------------------------------------
    def on_update(self, bundle: UpdateBundle) -> None:
        """Commit-time trip-count training and allocation."""
        for lane, is_branch in enumerate(bundle.br_mask):
            if not is_branch:
                continue
            branch_pc = bundle.fetch_pc + lane
            entry = self._entry_for(branch_pc)
            taken = bundle.taken_mask[lane]
            if entry is not None:
                self._train(entry, taken)
            elif bundle.mispredicted and bundle.mispredict_idx == lane:
                self._allocate(branch_pc, taken)

    def _train(self, entry: int, taken: bool) -> None:
        body = bool(self._direction[entry])
        if taken == body:
            count = int(self._commit_iter[entry]) + 1
            if count > mask(self.iter_bits):
                # Iteration counter overflow: not a loop we can track.
                self._valid[entry] = False
                return
            self._commit_iter[entry] = count
            self._zero_streak[entry] = 0
        else:
            observed_trip = int(self._commit_iter[entry])
            if observed_trip == int(self._trip[entry]) and observed_trip > 0:
                self._conf[entry] = min(int(self._conf[entry]) + 1, self.CONF_MAX)
            else:
                self._trip[entry] = observed_trip
                self._conf[entry] = 1 if observed_trip > 0 else 0
            self._commit_iter[entry] = 0
            if observed_trip == 0:
                # Consecutive exits with empty bodies: the direction bit is
                # backwards (cold-start allocation polarity).  Flip and
                # retrain.
                streak = int(self._zero_streak[entry]) + 1
                if streak >= 3:
                    self._direction[entry] = not body
                    self._trip[entry] = 0
                    self._conf[entry] = 0
                    self._spec_iter[entry] = 0
                    self._zero_streak[entry] = 0
                else:
                    self._zero_streak[entry] = streak
            else:
                self._zero_streak[entry] = 0

    def _allocate(self, branch_pc: int, taken: bool) -> None:
        index, tag = self._index_tag(branch_pc)
        self._valid[index] = True
        self._tags[index] = tag
        # Take the mispredicted outcome as the loop *body* direction: for a
        # cold base predictor the first mispredict of a back-edge is its
        # first taken (body) iteration.  If the allocation instead came from
        # a missed exit, the direction is inverted and the zero-trip-streak
        # flip below corrects it.
        self._direction[index] = taken
        self._trip[index] = 0
        self._spec_iter[index] = 0
        self._commit_iter[index] = 0
        self._conf[index] = 0

    # ------------------------------------------------------------------
    def storage(self) -> StorageReport:
        per_entry = (
            1  # valid
            + self.tag_bits
            + 1  # direction
            + 3 * self.iter_bits  # trip, spec iter, commit iter
            + 3  # confidence
        )
        bits = self.n_entries * per_entry
        return StorageReport(
            self.name, sram_bits=bits, breakdown={"entries": bits},
            access_bits=per_entry,
        )

    def reset(self) -> None:
        self._valid.fill(False)
        self._tags.fill(0)
        self._direction.fill(False)
        self._conf.fill(0)
        self._spec_iter.fill(0)
        self._commit_iter.fill(0)
        self._trip.fill(0)
        self._zero_streak.fill(0)

    def columnar_kernel(self):
        from repro.kernels.components import LoopKernel

        return LoopKernel(self)

    def spec(self):
        from repro.spec import ComponentSpec, FieldSpec, IndexFn, TableSpec

        lane_bits = max(1, (self.fetch_width - 1).bit_length())
        return ComponentSpec(
            component=type(self).__name__,
            tables=(
                TableSpec(
                    "entries",
                    entries=self.n_entries,
                    fields=(
                        FieldSpec("valid", 1),
                        FieldSpec("tag", self.tag_bits),
                        FieldSpec("direction", 1),
                        FieldSpec("trip", self.iter_bits),
                        FieldSpec("spec_iter", self.iter_bits),
                        FieldSpec("commit_iter", self.iter_bits),
                        FieldSpec("conf", 3),
                    ),
                    # Speculative fire/repair protocol: state advances at
                    # predict time and is restored from metadata snapshots.
                    update="exact-event",
                    index=IndexFn("pc", self._index_bits, key="branch_pc"),
                    probe=lambda c, pc, g, l, p: c._index_tag(pc)[0],
                ),
            ),
            meta_fields=(
                FieldSpec("cand_valid", 1),
                FieldSpec("lane", lane_bits),
                FieldSpec("spec_iter", self.iter_bits),
            ),
            kernel="event-replay",
            learns_from=("branch",),
        )
