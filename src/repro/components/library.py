"""The standard COBRA component library.

Registers factories for every sub-component under the base names used by
the paper's topology notation (§V-A)::

    LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1          (TAGE-L)
    GTAG3 > BTB2 > BIM2                          (B2)
    TOURNEY3 > [GBIM2 > BTB2, LBIM2]             (Tournament)

Factories take ``(instance_name, latency)``; structural parameters are
bound at registration time so per-design sizing (Table I) composes by
building a library with :func:`standard_library` keyword overrides.
"""

from __future__ import annotations

from repro.components.bimodal import HBIM
from repro.components.btb import BTB, MicroBTB
from repro.components.gtag import GTag
from repro.components.ittage import ITTAGE
from repro.components.loop import LoopPredictor
from repro.components.perceptron import Perceptron
from repro.components.statistical_corrector import StatisticalCorrector
from repro.components.tage import TAGE, default_tables
from repro.components.tournament import Tourney
from repro.components.twolevel import TwoLevel
from repro.core.parser import ComponentLibrary


def standard_library(
    fetch_width: int = 4,
    global_history_bits: int = 64,
    local_history_bits: int = 32,
    bim_sets: int = 4096,
    gbim_sets: int = 4096,
    lbim_sets: int = 256,
    btb_sets: int = 512,
    btb_ways: int = 4,
    ubtb_entries: int = 32,
    gtag_sets: int = 512,
    gtag_history_bits: int = 16,
    tourney_sets: int = 256,
    tourney_history_bits: int = 32,
    tage_tables=None,
    loop_entries: int = 256,
    perceptron_entries: int = 256,
) -> ComponentLibrary:
    """Build the standard sub-component library (Fig. 1, §III-G).

    The defaults size the shared structures to match Table I: a 16K-counter
    bimodal BHT (4096 sets x 4 slots), 2K-entry BTB (512 sets x 4 ways),
    32-entry uBTB, 2K partially tagged counters (512 sets x 4), 1K
    tournament counters (256 sets x 4), 7 TAGE tables over 64 bits of
    global history, and a 256-entry loop predictor.
    """
    library = ComponentLibrary()
    library.register(
        "BIM",
        lambda name, latency: HBIM(
            name, latency, n_sets=bim_sets, fetch_width=fetch_width, index="pc"
        ),
    )
    library.register(
        "GBIM",
        lambda name, latency: HBIM(
            name,
            latency,
            n_sets=gbim_sets,
            fetch_width=fetch_width,
            index="ghist",
            history_bits=tourney_history_bits,
        ),
    )
    library.register(
        "LBIM",
        lambda name, latency: HBIM(
            name,
            latency,
            n_sets=lbim_sets,
            fetch_width=fetch_width,
            index="lhist",
            history_bits=local_history_bits,
        ),
    )
    library.register(
        "PSHARE",
        lambda name, latency: HBIM(
            name,
            latency,
            n_sets=gbim_sets,
            fetch_width=fetch_width,
            index="pshare",
            history_bits=32,
        ),
    )
    library.register(
        "GSELECT",
        lambda name, latency: HBIM(
            name,
            latency,
            n_sets=gbim_sets,
            fetch_width=fetch_width,
            index="gselect",
            history_bits=global_history_bits,
        ),
    )
    library.register(
        "GSHARE",
        lambda name, latency: HBIM(
            name,
            latency,
            n_sets=gbim_sets,
            fetch_width=fetch_width,
            index="gshare",
            history_bits=global_history_bits,
        ),
    )
    library.register(
        "BTB",
        lambda name, latency: BTB(
            name, latency, n_sets=btb_sets, n_ways=btb_ways, fetch_width=fetch_width
        ),
    )
    library.register(
        "UBTB",
        lambda name, latency: MicroBTB(
            name, latency, n_entries=ubtb_entries, fetch_width=fetch_width
        ),
    )
    library.register(
        "GTAG",
        lambda name, latency: GTag(
            name,
            latency,
            n_sets=gtag_sets,
            fetch_width=fetch_width,
            history_bits=gtag_history_bits,
        ),
    )
    library.register(
        "TOURNEY",
        lambda name, latency: Tourney(
            name,
            latency,
            n_sets=tourney_sets,
            fetch_width=fetch_width,
            history_bits=tourney_history_bits,
        ),
    )
    library.register(
        "TAGE",
        lambda name, latency: TAGE(
            name,
            latency,
            fetch_width=fetch_width,
            tables=tage_tables if tage_tables is not None else default_tables(),
        ),
    )
    library.register(
        "ITTAGE",
        lambda name, latency: ITTAGE(name, latency, fetch_width=fetch_width),
    )
    library.register(
        "LOOP",
        lambda name, latency: LoopPredictor(
            name, latency, n_entries=loop_entries, fetch_width=fetch_width
        ),
    )
    library.register(
        "PERC",
        lambda name, latency: Perceptron(
            name, latency, n_entries=perceptron_entries, fetch_width=fetch_width
        ),
    )
    # Yeh-Patt two-level adaptive variants (registered names are
    # case-insensitive at the parser; canonical forms are GAg/GAp/PAg/PAp).
    for canonical in ("GAg", "GAp", "PAg", "PAp"):
        library.register(
            canonical.upper(),
            (lambda v: lambda name, latency: TwoLevel(
                name, latency, variant=v, fetch_width=fetch_width
            ))(canonical),
        )
    library.register(
        "SC",
        lambda name, latency: StatisticalCorrector(
            name, latency, fetch_width=fetch_width
        ),
    )
    return library
