"""Return address stack.

The RAS is the one prediction structure the paper keeps from the host BOOM
core rather than moving into COBRA (§IV-C).  We mirror that: the RAS lives
in the frontend model, pushed by calls and popped by returns at pre-decode
time, and is snapshot-repaired on flushes (pointer + top-of-stack restore,
the classic low-cost repair of [Skadron et al. 1998]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RasSnapshot:
    """State needed to restore the RAS after a misspeculated push/pop."""

    pointer: int
    top: int


class ReturnAddressStack:
    """Circular return-address stack with snapshot repair."""

    def __init__(self, depth: int = 32):
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._stack: List[int] = [0] * depth
        self._pointer = 0  # index of the current top

    def snapshot(self) -> RasSnapshot:
        return RasSnapshot(self._pointer, self._stack[self._pointer])

    def restore(self, snap: RasSnapshot) -> None:
        self._pointer = snap.pointer
        self._stack[snap.pointer] = snap.top

    def push(self, return_pc: int) -> None:
        self._pointer = (self._pointer + 1) % self.depth
        self._stack[self._pointer] = return_pc

    def pop(self) -> Optional[int]:
        value = self._stack[self._pointer]
        self._pointer = (self._pointer - 1) % self.depth
        return value

    def peek(self) -> int:
        return self._stack[self._pointer]

    def reset(self) -> None:
        self._stack = [0] * self.depth
        self._pointer = 0

    @property
    def storage_bits(self) -> int:
        from repro.components.btb import TARGET_BITS

        return self.depth * TARGET_BITS
