"""Structural Verilog skeleton for a composed predictor.

``generate_verilog_skeleton`` emits one module per sub-component plus a top
module wiring the COBRA interface (§III): the predict request broadcast,
per-stage prediction buses with override muxing in topology order, the
five event strobes, and per-component metadata ports sized to each
component's declared ``meta_bits`` — the interface contract rendered as
ports.

For a component that declares a :class:`~repro.spec.ComponentSpec`, the
storage is no longer a stub: each declared table becomes a real module
(:func:`repro.derive.rtl.emit_table_module` — memory array, index hash
from the declared closed form, update port) instantiated inside the
unit module, so one spec drives the Python runtime, the columnar
kernels, and the RTL.  Only the prediction/update *glue* between the
table read ports and the event interface remains stubbed
(`/* datapath here */`).

The output is syntactically plain Verilog-2001 and is intended as a
starting point / documentation artifact, not verified RTL.
"""

from __future__ import annotations

from typing import List

from repro.core.composer import ComposedPredictor
from repro.core.topology import Arbitrate, Leaf, Override, TopologyNode
from repro.derive.rtl import emit_table_module, table_instance_lines

#: Bit widths of the shared buses.
PC_BITS = 30
PRED_BITS_PER_SLOT = 1 + 1 + 1 + 1 + PC_BITS  # hit, is_br, is_jmp, taken, target


def _pred_bus_bits(fetch_width: int) -> int:
    return fetch_width * PRED_BITS_PER_SLOT


def _component_spec(component):
    try:
        return component.spec()
    except Exception:
        return None


def _component_module(component, fetch_width: int, ghist_bits: int) -> str:
    """One sub-component module with the full event interface."""
    pred_bits = _pred_bus_bits(fetch_width)
    spec = _component_spec(component)
    storage_lines: List[str] = []
    if spec is not None and spec.tables:
        storage_lines.append(
            "    // declared storage: one module per spec table"
        )
        for table in spec.tables:
            storage_lines.extend(table_instance_lines(component.name, table))
    storage_text = ("\n".join(storage_lines) + "\n") if storage_lines else ""
    n_in = component.n_inputs
    inputs = "\n".join(
        f"    input  wire [{pred_bits - 1}:0] predict_in{i},"
        for i in range(n_in)
    )
    hist_ports = ""
    if component.uses_global_history:
        hist_ports += f"    input  wire [{ghist_bits - 1}:0] ghist,\n"
    if component.uses_local_history:
        hist_ports += "    input  wire [31:0] lhist,\n"
    if getattr(component, "uses_path_history", False):
        hist_ports += "    input  wire [31:0] phist,\n"
    meta_bits = max(component.meta_bits, 1)
    return f"""\
// {type(component).__name__}: latency {component.latency}, responds at F{component.latency}
module {component.name}_unit (
    input  wire clk,
    input  wire reset,
    // predict (query at F0)
    input  wire predict_valid,
    input  wire [{PC_BITS - 1}:0] fetch_pc,
{hist_ports}{inputs}
    output wire [{pred_bits - 1}:0] predict_out,
    output wire [{meta_bits - 1}:0] meta_out,
    // fire / mispredict / repair / update events (§III-E)
    input  wire fire_valid,
    input  wire mispredict_valid,
    input  wire repair_valid,
    input  wire update_valid,
    input  wire [{PC_BITS - 1}:0] event_pc,
    input  wire [{meta_bits - 1}:0] event_meta,
    input  wire [{fetch_width - 1}:0] event_br_mask,
    input  wire [{fetch_width - 1}:0] event_taken_mask
);
{storage_text}    /* datapath here: {component.meta_bits}-bit metadata,
       storage = {component.storage().total_bits} bits */
    assign predict_out = predict_in0;
    assign meta_out = {{{meta_bits}{{1'b0}}}};
endmodule
"""


def _stage_wiring(node: TopologyNode, fetch_width: int, lines: List[str], depth: int):
    """Emit per-stage override muxes in topology order."""
    pred_bits = _pred_bus_bits(fetch_width)
    if isinstance(node, Leaf):
        lines.append(
            f"    // {node.component.name} provides stages "
            f"F{node.component.latency}..F{depth}"
        )
        return f"{node.component.name}_pred"
    if isinstance(node, Override):
        below = _stage_wiring(node.lo, fetch_width, lines, depth)
        name = node.hi.name
        lines.append(
            f"    // override: {name} wins per slot where it hits "
            f"(from F{node.hi.latency})"
        )
        lines.append(
            f"    wire [{pred_bits - 1}:0] {name}_merged = "
            f"{name}_hit_any ? {name}_pred : {below};"
        )
        return f"{name}_merged"
    assert isinstance(node, Arbitrate)
    children = [
        _stage_wiring(child, fetch_width, lines, depth) for child in node.children
    ]
    name = node.selector.name
    lines.append(
        f"    // arbitration: {name} selects among "
        f"{', '.join(children)} (from F{node.selector.latency})"
    )
    lines.append(
        f"    wire [{pred_bits - 1}:0] {name}_merged = {name}_pred; "
        f"// pre-arbitration default: {children[0]}"
    )
    return f"{name}_merged"


def generate_verilog_skeleton(predictor: ComposedPredictor) -> str:
    """Render the composed predictor as a structural Verilog skeleton."""
    config = predictor.config
    fetch_width = config.fetch_width
    pred_bits = _pred_bus_bits(fetch_width)
    ghist = config.global_history_bits
    parts: List[str] = [
        f"// Generated by the COBRA reproduction composer",
        f"// topology: {predictor.describe()}",
        f"// pipeline depth: {predictor.depth} stages; fetch width {fetch_width}",
        "",
    ]
    for component in predictor.components:
        parts.append(_component_module(component, fetch_width, ghist))
        spec = _component_spec(component)
        if spec is not None:
            for table in spec.tables:
                parts.append(emit_table_module(component.name, table))

    total_meta = sum(c.meta_bits for c in predictor.components)
    wiring: List[str] = []
    final = _stage_wiring(predictor.topology, fetch_width, wiring, predictor.depth)
    instantiations = []
    for component in predictor.components:
        instantiations.append(
            f"    wire [{pred_bits - 1}:0] {component.name}_pred;\n"
            f"    wire {component.name}_hit_any;\n"
            f"    {component.name}_unit u_{component.name} (/* see ports above */);"
        )
    instantiation_text = "\n".join(instantiations)
    wiring_text = "\n".join(wiring)
    parts.append(f"""\
module cobra_predictor_top (
    input  wire clk,
    input  wire reset,
    input  wire f0_valid,
    input  wire [{PC_BITS - 1}:0] f0_pc,
    // staged final predictions (one bus per fetch stage, §IV-A)
    output wire [{pred_bits - 1}:0] f_final [1:{predictor.depth}],
    // backend interface: resolution + commit
    input  wire resolve_valid,
    input  wire resolve_mispredict,
    input  wire commit_valid
);
    // speculative global history register ({ghist} bits)
    reg [{ghist - 1}:0] ghist_spec;
    // history file: {config.ftq_entries} entries x {total_meta} metadata bits
    //               (+ history snapshots; repaired by forwards walk)

{instantiation_text}

{wiring_text}
    // final prediction source: {final}
endmodule
""")
    return "\n".join(parts)
