"""Structural RTL skeleton generation.

The original COBRA composer elaborates Chisel into synthesizable RTL; this
reproduction's composer elaborates a cycle-level Python model.  To keep the
path back to hardware visible, this package generates a *structural
Verilog skeleton* from the same topology: the module hierarchy, the
pipeline registers between stages, the predict/update/repair event ports of
every sub-component, and the per-stage override muxes — everything the
composer determines — leaving the per-component datapaths as stubs for an
RTL engineer (or a future behavioural backend) to fill in.
"""

from repro.rtl.verilog import generate_verilog_skeleton

__all__ = ["generate_verilog_skeleton"]
