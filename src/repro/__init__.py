"""COBRA: a framework for evaluating compositions of hardware branch
predictors — cycle-level Python reproduction of Zhao et al., ISPASS 2021.

Public API tour
---------------
- :mod:`repro.core` — the COBRA interface, topology notation, and composer.
- :mod:`repro.components` — the sub-component library (BIM, BTB, uBTB,
  GTag, Tourney, TAGE, loop predictor, plus perceptron/SC extensions).
- :mod:`repro.frontend` — the BOOM-like host core: a speculative
  superscalar fetch unit and simplified out-of-order backend.
- :mod:`repro.isa` / :mod:`repro.workloads` — the tiny RISC substrate and
  synthetic SPECint17-like workloads.
- :mod:`repro.presets` — the paper's three evaluated designs (TAGE-L, B2,
  Tournament; Table I).
- :mod:`repro.eval` — run workloads on cores, collect MPKI/IPC.
- :mod:`repro.synthesis` — the analytical area model (Figs. 8-9).
- :mod:`repro.baselines` — commercial-core proxy predictors (Table III).

Quickstart::

    from repro import compose, presets
    from repro.eval import run_workload
    from repro.workloads import specint

    predictor = presets.tage_l()
    result = run_workload(predictor, specint.build("xz"))
    print(result.ipc, result.mpki)
"""

from repro.core import compose
from repro import presets

__version__ = "1.0.0"

__all__ = ["compose", "presets", "__version__"]
