"""The ``trace`` backend: commit-order trace-driven simulation (§II-B).

Feeds the architectural path straight through the composed predictor, one
fetch packet per control-flow transfer: no wrong path, no speculative
history corruption, no update delay.  This is the software-simulator
methodology the paper argues demonstrates "substantial modelling error" —
kept as a first-class backend precisely so that error is measurable
against ``cycle`` (see ``benchmarks/bench_trace_vs_core.py``).

The instruction stream comes from the ISA interpreter; the packet walk
itself lives in :func:`repro.backends.packets.drive_stream`, shared with
the ``replay`` backend.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import (
    DEFAULT_TRACE_INSTRUCTIONS,
    ExecutionBackend,
    RunLimits,
    attach_collector,
    counts_result,
    register_backend,
)
from repro.backends.packets import (
    drive_stream,
    interpreter_stream,
    program_packets,
)
from repro.core.composer import ComposedPredictor
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.workloads.registry import WorkloadSource


class TraceBackend(ExecutionBackend):
    name = "trace"

    def run(
        self,
        predictor: ComposedPredictor,
        source: WorkloadSource,
        limits: RunLimits,
        core_config: Optional[CoreConfig] = None,
        system: Optional[str] = None,
        trace: Optional[object] = None,
    ) -> RunResult:
        program = source.require_program(self.name)
        limit = (
            limits.max_instructions
            if limits.max_instructions is not None
            else DEFAULT_TRACE_INSTRUCTIONS
        )
        collector = attach_collector(predictor, core_config, trace)
        try:
            counts = drive_stream(
                predictor,
                interpreter_stream(program, limit),
                program_packets(program, predictor.config.fetch_width),
            )
            summary = collector.summary() if collector is not None else None
        finally:
            if collector is not None:
                predictor.detach_telemetry()
        return counts_result(
            system or predictor.describe(),
            source.name,
            counts,
            self.name,
            telemetry=summary,
        )


register_backend(TraceBackend())
