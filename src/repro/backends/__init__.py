"""Pluggable execution backends: one engine, three methodologies.

``cycle``
    The cycle-level host-core model (:class:`~repro.frontend.core.Core`):
    speculation, wrong-path pollution, update delay, timing.  The
    reference methodology.
``trace``
    Commit-order trace-driven simulation over the ISA interpreter — the
    §II-B software-simulator methodology, kept so its modelling error
    against ``cycle`` stays measurable.
``replay``
    Trace-driven execution over stored ``BranchTrace`` npz columns with no
    interpreter in the loop and branchless packets skipped; bit-identical
    branch/mispredict counts to ``trace``, several times the throughput.

See ``docs/backends.md`` for the contract and validity envelope of each.
"""

from repro.backends.base import (
    DEFAULT_BACKEND,
    DEFAULT_TRACE_INSTRUCTIONS,
    ExecutionBackend,
    RunLimits,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backends.packets import (
    PacketCache,
    WalkCounts,
    drive_stream,
    interpreter_stream,
    program_packets,
)
from repro.backends.cycle import CycleBackend
from repro.backends.trace import TraceBackend
from repro.backends.replay import ReplayBackend, trace_packets, trace_stream

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_TRACE_INSTRUCTIONS",
    "ExecutionBackend",
    "RunLimits",
    "backend_names",
    "get_backend",
    "register_backend",
    "PacketCache",
    "WalkCounts",
    "drive_stream",
    "CycleBackend",
    "TraceBackend",
    "ReplayBackend",
    "interpreter_stream",
    "program_packets",
    "trace_packets",
    "trace_stream",
]
