"""The ``replay`` backend: trace replay with no interpreter in the loop.

Drives a composed predictor directly from stored
:class:`~repro.workloads.traces.BranchTrace` npz columns — the
CBP/ChampSim-style workflow that makes large-scale predictor studies
tractable.  Two properties make it fast:

1. **No ISA execution.**  The architectural PC stream is fully determined
   by the trace's entry PC plus its control-flow records (non-CFI
   instructions advance the PC by one), so the stream is *reconstructed*
   from the columnar trace in batched chunks; register/memory semantics
   never run.  Pre-decoded packets come from the trace's static slot
   tables, bit-identical to what the program image would pre-decode to.
2. **Plain runs are consumed arithmetically.**  Between two control-flow
   records every executed address is statically branch-free, so every
   aligned packet that fits entirely inside the gap is branchless; the
   columnar walker (:func:`drive_columns`) accounts those packets with
   integer arithmetic — no per-instruction records, no predictor query
   (exact by the ``branchless_inert`` contract, rule CON008).  Only
   packets containing a control-flow record reach the predictor, so
   replay cost is proportional to *branchy* packets only.

Both transformations are exact: replay reproduces the ``trace`` backend's
branch and mispredict counts bit for bit (asserted by the test suite and
``benchmarks/bench_backends.py``).  Whenever the fast path is not
provable — a component that learns on branchless packets, an attached
telemetry collector — replay falls back to the shared
:func:`~repro.backends.packets.drive_stream` walker over the
reconstructed record stream, so the two code paths can never diverge
silently.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.backends.base import (
    ExecutionBackend,
    RunLimits,
    attach_collector,
    counts_result,
    register_backend,
)
from repro.backends.packets import (
    ArchRecord,
    PacketCache,
    WalkCounts,
    drive_stream,
)
from repro.core.composer import ComposedPredictor
from repro.core.prediction import INVALID_SLOT, PLAIN_SLOT, PreDecodedSlot
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.workloads.registry import WorkloadSource
from repro.workloads.traces import (
    BranchTrace,
    SLOT_COND,
    SLOT_JAL,
    SLOT_JAL_CALL,
    SLOT_JALR,
    SLOT_JALR_RET,
    SLOT_PLAIN,
    TYPE_COND,
)

#: Branch records are decoded from npz columns to plain Python lists in
#: chunks of this many entries, keeping per-record numpy scalar overhead
#: out of the walk loop without materializing huge traces at once.
_CHUNK = 1 << 16

#: Adaptive segment-engine window (branch records per vectorized attempt).
#: The next window tracks twice the last acceptance — full acceptance
#: doubles the window, early cuts shrink it toward the cut distance — so
#: mispredict-dense regions pay for narrow evaluations only.
_WINDOW_START = 256
_WINDOW_MIN = 8
_WINDOW_MAX = 4096
#: Walked packets forced through the scalar path after the engine accepts
#: nothing, amortizing failed vectorized attempts in impure regions.
_SCALAR_QUOTA = 8
#: Engine disengagement: when the decayed average acceptance per attempt
#: drops below the engine's ``engage_min`` (a per-composition break-even
#: scaled by kernel count), a vectorized attempt costs more than walking
#: its yield through the scalar path, so the driver walks
#: ``_DISENGAGE_QUOTA`` packets scalar between probes instead.
_DISENGAGE_QUOTA = 24


def trace_stream(
    trace: BranchTrace, max_instructions: Optional[int] = None
) -> Iterator[ArchRecord]:
    """Reconstruct the architectural record stream from a branch trace.

    Between consecutive control-flow records the PC advances sequentially,
    so every non-CFI record is ``(pc, pc + 1, False, False)``; each CFI
    record carries its stored direction and next PC (the trace stores
    ``next_pc`` for not-taken branches too, so no fall-through special
    case is needed).
    """
    total = trace.instruction_count
    n = total if max_instructions is None else min(total, max_instructions)
    n_br = len(trace)
    pc = trace.entry_pc
    emitted = 0
    base = 0
    while emitted < n:
        if base < n_br:
            end = min(base + _CHUNK, n_br)
            pcs = trace.pcs[base:end].tolist()
            conds = (trace.types[base:end] == TYPE_COND).tolist()
            takens = trace.taken[base:end].tolist()
            targets = trace.targets[base:end].tolist()
            base = end
        else:
            # No control flow left: the tail is purely sequential.
            while emitted < n:
                yield (pc, pc + 1, False, False)
                emitted += 1
                pc += 1
            return
        for i in range(len(pcs)):
            branch_pc = pcs[i]
            while pc != branch_pc:
                yield (pc, pc + 1, False, False)
                emitted += 1
                pc += 1
                if emitted >= n:
                    return
            next_pc = targets[i]
            yield (pc, next_pc, conds[i], takens[i])
            emitted += 1
            pc = next_pc
            if emitted >= n:
                return


def trace_packets(trace: BranchTrace, fetch_width: int) -> PacketCache:
    """Pre-decoded packets rebuilt from the trace's static slot tables.

    Produces slots field-identical to what
    :func:`~repro.core.prediction.predecode_slot` yields from the program
    image (SFB conversion is a cycle-core decode feature and does not
    apply to the trace-driven backends).
    """
    if trace.slot_kinds is None or trace.slot_targets is None:
        raise ValueError(
            "trace has no pre-decode slot tables (schema-1 capture); "
            "re-capture it with this version to make it replayable"
        )
    kinds = trace.slot_kinds.tolist()
    targets = trace.slot_targets.tolist()
    n = len(kinds)

    def slot_fn(pc: int) -> PreDecodedSlot:
        if pc < 0 or pc >= n:
            return INVALID_SLOT
        kind = kinds[pc]
        if kind == SLOT_PLAIN:
            return PLAIN_SLOT
        target = targets[pc]
        direct = None if target < 0 else target
        if kind == SLOT_COND:
            return PreDecodedSlot(is_cond_branch=True, direct_target=direct)
        if kind == SLOT_JAL:
            return PreDecodedSlot(is_jal=True, direct_target=direct)
        if kind == SLOT_JAL_CALL:
            return PreDecodedSlot(is_jal=True, is_call=True, direct_target=direct)
        if kind == SLOT_JALR:
            return PreDecodedSlot(is_jalr=True)
        if kind == SLOT_JALR_RET:
            return PreDecodedSlot(is_jalr=True, is_ret=True)
        raise ValueError(f"corrupt slot table: unknown kind {kind} at pc {pc}")

    return PacketCache(slot_fn, fetch_width)


def drive_columns(
    predictor: ComposedPredictor,
    trace: BranchTrace,
    packets: PacketCache,
    max_instructions: Optional[int] = None,
    engine=None,
) -> WalkCounts:
    """Drive ``predictor`` straight off the branch columns of ``trace``.

    Record-free equivalent of
    :func:`~repro.backends.packets.drive_stream` with ``skip_inert`` for a
    :attr:`~repro.core.composer.ComposedPredictor.branchless_inert`
    predictor: between two control-flow records the PC stream is a known
    sequential run, so every aligned packet that fits entirely before the
    next branch PC is branchless and state-neutral — its instructions are
    *counted*, never walked.  Only packets containing a branch record (and
    plain packets inside an active no-replay stale-history window, which
    must still be queried, §VI-B) go through the standard
    predict/resolve/commit protocol, replicating ``drive_stream``'s walk
    record for record.  Callers must check ``branchless_inert`` and that
    no telemetry collector is attached before using this walker.

    With a :class:`~repro.kernels.engine.SegmentEngine` (built by
    :func:`repro.kernels.engine.engine_for` when every component
    advertises a ``columnar_kernel``), branchy packets are additionally
    batch-predicted in vectorized segments between mispredicts; the
    scalar loop here remains the fallback inside impure regions and
    stale-history windows.
    """
    if engine is not None:
        return _drive_columns_kernels(
            predictor, trace, packets, engine, max_instructions
        )
    total = trace.instruction_count
    n = total if max_instructions is None else min(total, max_instructions)
    width = packets.fetch_width
    packet = packets.packet
    predict = predictor.predict
    commit = predictor.commit_packet
    resolve = predictor.resolve_mispredict

    n_br = len(trace)

    def chunks():
        for start in range(0, n_br, _CHUNK):
            end = min(start + _CHUNK, n_br)
            yield (
                trace.pcs[start:end].tolist(),
                (trace.types[start:end] == TYPE_COND).tolist(),
                trace.taken[start:end].tolist(),
                trace.targets[start:end].tolist(),
            )

    chunk_iter = chunks()
    first = next(chunk_iter, None)
    if first is None:
        b_pcs, b_conds, b_takens, b_targets = (), (), (), ()
    else:
        b_pcs, b_conds, b_takens, b_targets = first
    ci = 0
    next_branch = b_pcs[0] if b_pcs else None

    instructions = 0
    branches = 0
    mispredicts = 0
    pc = trace.entry_pc
    while instructions < n:
        fetch_pc = pc
        span = width - (fetch_pc % width)
        gap = n if next_branch is None else next_branch - fetch_pc
        if gap >= span and not predictor.stale_window_active:
            # Whole packet is branch-free: account it without walking.
            if instructions + span <= n:
                instructions += span
                pc = fetch_pc + span
            else:
                instructions = n
            continue

        slots, _has_cfi = packet(fetch_pc)
        result = predict(fetch_pc, slots, None)
        final_slots = result.final.slots
        mispredict_info = None
        consumed = 0
        while True:
            # The record at ``pc``: a stored branch record, or sequential.
            if next_branch == pc:
                next_pc = b_targets[ci]
                is_cond = b_conds[ci]
                taken = b_takens[ci]
                ci += 1
                if ci == len(b_pcs):
                    refill = next(chunk_iter, None)
                    ci = 0
                    if refill is None:
                        b_pcs = ()
                        next_branch = None
                    else:
                        b_pcs, b_conds, b_takens, b_targets = refill
                        next_branch = b_pcs[0]
                else:
                    next_branch = b_pcs[ci]
            else:
                next_pc = pc + 1
                is_cond = False
                taken = False
            slot_idx = consumed
            instructions += 1
            if is_cond:
                branches += 1
                if final_slots[slot_idx].taken != taken:
                    mispredicts += 1
                    if mispredict_info is None:
                        mispredict_info = (
                            slot_idx,
                            taken,
                            next_pc if taken else None,
                        )
            consumed += 1
            ends_packet = (
                next_pc != pc + 1
                or consumed >= span
                or (mispredict_info is not None and result.cut == slot_idx)
            )
            pc = next_pc
            if ends_packet or instructions >= n:
                break
        if mispredict_info is not None:
            slot_idx, taken, target = mispredict_info
            resolve(result.ftq_id, slot_idx, taken, target)
        commit(result.ftq_id)
    return WalkCounts(instructions, branches, mispredicts)


def _drive_columns_kernels(
    predictor: ComposedPredictor,
    trace: BranchTrace,
    packets: PacketCache,
    engine,
    max_instructions: Optional[int] = None,
) -> WalkCounts:
    """:func:`drive_columns` with vectorized pure-packet segments.

    Identical walk semantics, with one addition: whenever the scalar loop
    is about to fetch a branchy packet, the segment engine first tries to
    batch-predict a window of upcoming branch records against the frozen
    tables and commit the maximal pure prefix in one step
    (:meth:`~repro.kernels.engine.SegmentEngine.run`).  The scalar body
    then resumes at the first impure packet — the mispredicting or
    state-writing one — so resolve/repair ordering is untouched.  Stale
    no-replay history windows disable the engine (and the arithmetic
    skip) until they drain, exactly like the scalar walker.
    """
    from repro.kernels.engine import TraceColumns

    total = trace.instruction_count
    n = total if max_instructions is None else min(total, max_instructions)
    width = packets.fetch_width
    packet = packets.packet
    predict = predictor.predict
    commit = predictor.commit_packet
    resolve = predictor.resolve_mispredict

    cols = TraceColumns.from_trace(trace)
    n_br = cols.n_records

    b_pcs: list = []
    b_conds: list = []
    b_takens: list = []
    b_targets: list = []
    chunk_start = 0

    def load_chunk(start: int) -> None:
        nonlocal chunk_start, b_pcs, b_conds, b_takens, b_targets
        chunk_start = start
        end = min(start + _CHUNK, n_br)
        b_pcs = cols.pcs[start:end].tolist()
        b_conds = (cols.types[start:end] == TYPE_COND).tolist()
        b_takens = cols.taken[start:end].tolist()
        b_targets = cols.targets[start:end].tolist()

    bi = 0
    if n_br:
        load_chunk(0)
    next_branch = b_pcs[0] if n_br else None

    instructions = 0
    branches = 0
    mispredicts = 0
    pc = trace.entry_pc
    window = _WINDOW_START
    scalar_quota = 0
    accept_avg = float(_WINDOW_START)
    probe_backoff = 1
    engage_min = engine.engage_min
    while instructions < n:
        if (
            scalar_quota == 0
            and bi < n_br
            and not predictor.stale_window_active
        ):
            k = min(window, n_br - bi)
            seg = engine.run(cols, pc, bi, k, n - instructions)
            accept_avg = 0.5 * accept_avg + 0.5 * seg.records
            if seg.packets:
                instructions += seg.instructions
                branches += seg.branches
                bi += seg.records
                pc = seg.next_pc
                window = min(max(2 * seg.records, _WINDOW_MIN), _WINDOW_MAX)
                if bi < n_br:
                    if bi - chunk_start >= len(b_pcs):
                        load_chunk(bi - bi % _CHUNK)
                    next_branch = b_pcs[bi - chunk_start]
                else:
                    next_branch = None
                if accept_avg < engage_min:
                    # Mispredict-dense region: segments are too short to
                    # amortize attempts; walk scalar between probes,
                    # backing off while the region stays dense.
                    scalar_quota = _DISENGAGE_QUOTA * probe_backoff
                    probe_backoff = min(probe_backoff * 2, 8)
                elif seg.impure_next:
                    # The next packet is known to mispredict or write
                    # state: walk exactly it scalar, then retry.
                    probe_backoff = 1
                    scalar_quota = 1
                else:
                    probe_backoff = 1
                    continue
            elif accept_avg < engage_min:
                scalar_quota = _DISENGAGE_QUOTA * probe_backoff
                probe_backoff = min(probe_backoff * 2, 8)
            elif seg.impure_next:
                scalar_quota = 1
            else:
                # Nothing pure up front for window-shape reasons: walk
                # scalar for a while before the next (costly) attempt.
                window = max(window // 2, _WINDOW_MIN)
                scalar_quota = _SCALAR_QUOTA

        fetch_pc = pc
        span = width - (fetch_pc % width)
        gap = n if next_branch is None else next_branch - fetch_pc
        if gap >= span and not predictor.stale_window_active:
            if instructions + span <= n:
                instructions += span
                pc = fetch_pc + span
            else:
                instructions = n
            continue

        if scalar_quota:
            scalar_quota -= 1
        slots, _has_cfi = packet(fetch_pc)
        result = predict(fetch_pc, slots, None)
        final_slots = result.final.slots
        mispredict_info = None
        consumed = 0
        while True:
            if next_branch == pc:
                ci = bi - chunk_start
                next_pc = b_targets[ci]
                is_cond = b_conds[ci]
                taken = b_takens[ci]
                bi += 1
                if bi < n_br:
                    if bi - chunk_start >= len(b_pcs):
                        load_chunk(bi)
                    next_branch = b_pcs[bi - chunk_start]
                else:
                    next_branch = None
            else:
                next_pc = pc + 1
                is_cond = False
                taken = False
            slot_idx = consumed
            instructions += 1
            if is_cond:
                branches += 1
                if final_slots[slot_idx].taken != taken:
                    mispredicts += 1
                    if mispredict_info is None:
                        mispredict_info = (
                            slot_idx,
                            taken,
                            next_pc if taken else None,
                        )
            consumed += 1
            ends_packet = (
                next_pc != pc + 1
                or consumed >= span
                or (mispredict_info is not None and result.cut == slot_idx)
            )
            pc = next_pc
            if ends_packet or instructions >= n:
                break
        if mispredict_info is not None:
            slot_idx, taken, target = mispredict_info
            resolve(result.ftq_id, slot_idx, taken, target)
        commit(result.ftq_id)
    return WalkCounts(instructions, branches, mispredicts)


class ReplayBackend(ExecutionBackend):
    name = "replay"

    def run(
        self,
        predictor: ComposedPredictor,
        source: WorkloadSource,
        limits: RunLimits,
        core_config: Optional[CoreConfig] = None,
        system: Optional[str] = None,
        trace: Optional[object] = None,
    ) -> RunResult:
        branch_trace = source.branch_trace(limits.max_instructions)
        collector = attach_collector(predictor, core_config, trace)
        try:
            packets = trace_packets(branch_trace, predictor.config.fetch_width)
            if predictor.branchless_inert and predictor.telemetry is None:
                from repro.kernels.engine import engine_for

                counts = drive_columns(
                    predictor,
                    branch_trace,
                    packets,
                    limits.max_instructions,
                    engine=engine_for(predictor),
                )
            else:
                counts = drive_stream(
                    predictor,
                    trace_stream(branch_trace, limits.max_instructions),
                    packets,
                    skip_inert=True,
                )
            summary = collector.summary() if collector is not None else None
        finally:
            if collector is not None:
                predictor.detach_telemetry()
        return counts_result(
            system or predictor.describe(),
            source.name,
            counts,
            self.name,
            telemetry=summary,
        )


register_backend(ReplayBackend())
