"""The execution-backend contract and registry.

An :class:`ExecutionBackend` turns (predictor, workload source, limits)
into a :class:`~repro.eval.metrics.RunResult`.  Three implementations ship
(see :mod:`repro.backends`): ``cycle`` (the cycle-level host-core model),
``trace`` (commit-order trace-driven simulation, §II-B), and ``replay``
(trace-driven over stored :class:`~repro.workloads.traces.BranchTrace`
columns, no interpreter in the loop).  Backends register themselves by
name; everything above this layer — ``run_workload``, the parallel engine,
the result cache, the CLI — selects one with ``backend="..."``.

The contract, precisely:

- The predictor is used as given (not reset); callers own warm-up
  semantics, exactly as ``run_workload`` always did.
- ``limits.max_instructions`` bounds committed (architectural)
  instructions; ``limits.max_cycles`` only applies to backends that model
  time (``cycle``) and is ignored by the trace-driven ones.
- The returned ``RunResult`` carries ``backend`` so cached and archived
  results are self-describing.  Trace-driven backends report zero for the
  purely microarchitectural fields (cycles, IPC, flushes, indirect-target
  mispredicts): per §II-B they cannot model them, and reporting zero rather
  than a guess keeps the modelling gap visible (see ``docs/backends.md``).
- ``core_config.telemetry`` attaches a collector for any backend;
  ``trace`` is an optional bounded JSONL event trace (implies telemetry).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.composer import ComposedPredictor
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.workloads.registry import WorkloadSource

DEFAULT_BACKEND = "cycle"

#: Instruction cap the trace-driven backends apply when the caller gives
#: none (matches the historical ``trace_accuracy`` default, and the default
#: capture length of ``repro trace capture`` — so an uncapped ``trace`` run
#: and a replay of a default capture cover the same stream).
DEFAULT_TRACE_INSTRUCTIONS = 1_000_000


@dataclass(frozen=True)
class RunLimits:
    """Run bounds, backend-interpreted (see the module docstring)."""

    max_instructions: Optional[int] = None
    max_cycles: Optional[int] = None


class ExecutionBackend(abc.ABC):
    """One way of running a workload through a composed predictor."""

    #: Registry key; also stamped on every result this backend produces.
    name: str = ""

    @abc.abstractmethod
    def run(
        self,
        predictor: ComposedPredictor,
        source: WorkloadSource,
        limits: RunLimits,
        core_config: Optional[CoreConfig] = None,
        system: Optional[str] = None,
        trace: Optional[object] = None,
    ) -> RunResult:
        """Run ``source`` on ``predictor`` and measure the result."""


_REGISTRY: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def get_backend(name: str) -> ExecutionBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; have {sorted(_REGISTRY)}"
        ) from None


# ----------------------------------------------------------------------
# Shared helpers for the trace-driven backends
# ----------------------------------------------------------------------
def attach_collector(
    predictor: ComposedPredictor,
    core_config: Optional[CoreConfig],
    trace: Optional[object],
):
    """Attach a telemetry collector when the run asks for one, or None."""
    wants = trace is not None or bool(core_config and core_config.telemetry)
    if not wants:
        return None
    from repro.telemetry import TelemetryCollector

    collector = TelemetryCollector(trace=trace)
    predictor.attach_telemetry(collector)
    return collector


def counts_result(
    system: str,
    workload: str,
    counts,
    backend: str,
    telemetry: Optional[dict] = None,
) -> RunResult:
    """Build the RunResult a trace-driven walk produces.

    ``counts`` is a :class:`~repro.backends.packets.WalkCounts`.  Cycles,
    IPC, flush and indirect-target counts are structurally zero — the
    trace-driven methodology cannot observe them (§II-B).
    """
    instructions = counts.instructions
    mpki = 1000.0 * counts.mispredicts / instructions if instructions else 0.0
    accuracy = (
        1.0 - counts.mispredicts / counts.branches if counts.branches else 1.0
    )
    return RunResult(
        system=system,
        workload=workload,
        cycles=0,
        instructions=instructions,
        ipc=0.0,
        mpki=mpki,
        total_mpki=mpki,
        branch_accuracy=accuracy,
        branches=counts.branches,
        branch_mispredicts=counts.mispredicts,
        target_mispredicts=0,
        flushes=0,
        stats=None,
        telemetry=telemetry,
        backend=backend,
    )
