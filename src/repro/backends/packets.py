"""Shared pre-decode packet cache and architectural packet walker.

Every execution backend presents the same unit of work to a composed
predictor: an aligned fetch packet of pre-decoded slots.  This module holds
the two helpers all backends share so their packet semantics cannot
diverge:

- :class:`PacketCache` memoizes pre-decoded packets per fetch PC (the
  program image is immutable during a run), replacing the private caches
  the cycle core and the trace simulator used to keep separately.
- :func:`drive_stream` walks an architectural instruction stream through a
  predictor packet by packet — the commit-order protocol the trace-driven
  methodology of §II-B prescribes (no wrong path, no update delay).  The
  ``trace`` and ``replay`` backends both run on this one walker; ``replay``
  additionally enables the branchless-packet fast path.

The fast path rests on a provable equivalence: a packet with no
control-flow instruction cannot change predictor state.  The composed
pipeline shifts zero outcomes into its histories and components observe an
all-False ``br_mask`` (the :attr:`~repro.core.interface.PredictorComponent.
branchless_inert` contract, enforced by rule CON008).  Skipping such
packets therefore yields bit-identical branch and mispredict counts while
making replay cost proportional to *branchy* packets only.  The skip is
gated off whenever it could be observed: a non-inert component, an
attached telemetry collector (event counts must stay faithful), or an
active no-replay stale-history window (eliding a query would stretch the
corruption window, §VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.composer import ComposedPredictor
from repro.core.prediction import (  # noqa: F401  (PacketCache re-exported)
    PacketCache,
    predecode_slot,
)
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program

#: One architectural record: (pc, next_pc, is_cond_branch, taken).  Plain
#: tuples, not objects — both producers (the interpreter adapter and the
#: columnar trace reconstruction) emit them cheaply in the hot loop.
ArchRecord = Tuple[int, int, bool, bool]


def program_packets(program: Program, fetch_width: int) -> PacketCache:
    """Pre-decoded packets read from the program image.

    Uses the same shared, memoized pre-decode rule as the cycle-level
    frontend, so trace-vs-core comparisons measure modelling error, never
    classification skew.
    """
    return PacketCache(lambda pc: predecode_slot(program.fetch(pc)), fetch_width)


def interpreter_stream(
    program: Program, max_instructions: int
) -> Iterator[ArchRecord]:
    """Architectural records straight from the ISA interpreter."""
    for record in Interpreter(program).run(max_instructions):
        yield (record.pc, record.next_pc, record.instr.is_cond_branch, record.taken)


@dataclass
class WalkCounts:
    """What one architectural walk observed."""

    instructions: int
    branches: int
    mispredicts: int


def drive_stream(
    predictor: ComposedPredictor,
    stream: Iterator[ArchRecord],
    packets: PacketCache,
    skip_inert: bool = False,
) -> WalkCounts:
    """Drive ``predictor`` down an architectural record stream.

    Presents one fetch packet per control-flow transfer in commit order:
    predict, count conditional-branch outcomes against the final
    prediction, resolve the first direction mispredict (if any), commit.
    Packet boundaries follow the fetched instruction flow — a packet ends
    at a taken transfer, at the aligned packet edge, or at the predictor's
    own cut when the cut slot mispredicted.

    With ``skip_inert`` (the replay fast path), packets containing no
    control-flow instruction are consumed without querying the predictor at
    all; see the module docstring for why this is exact.
    """
    skip = (
        skip_inert
        and predictor.branchless_inert
        and predictor.telemetry is None
    )
    instructions = 0
    branches = 0
    mispredicts = 0
    record = next(stream, None)
    while record is not None:
        fetch_pc = record[0]
        slots, has_cfi = packets.packet(fetch_pc)
        span = len(slots)

        if skip and not has_cfi and not predictor.stale_window_active:
            # Branchless packet: state-neutral, so just walk the stream.
            consumed = 0
            while record is not None and record[0] == fetch_pc + consumed:
                instructions += 1
                consumed += 1
                ends_packet = record[1] != record[0] + 1 or consumed >= span
                record = next(stream, None)
                if ends_packet:
                    break
            continue

        result = predictor.predict(fetch_pc, slots, None)
        final_slots = result.final.slots

        # Walk the architectural records covered by this packet: they
        # follow sequentially until a taken transfer or the packet ends.
        mispredict_info = None
        consumed = 0
        while record is not None and record[0] == fetch_pc + consumed:
            slot_idx = consumed
            instructions += 1
            if record[2]:  # conditional branch
                branches += 1
                if final_slots[slot_idx].taken != record[3]:
                    mispredicts += 1
                    if mispredict_info is None:
                        mispredict_info = (
                            slot_idx,
                            record[3],
                            record[1] if record[3] else None,
                        )
            consumed += 1
            ends_packet = (
                record[1] != record[0] + 1
                or consumed >= span
                or (mispredict_info is not None and result.cut == slot_idx)
            )
            record = next(stream, None)
            if ends_packet:
                break
        if mispredict_info is not None:
            slot_idx, taken, target = mispredict_info
            predictor.resolve_mispredict(result.ftq_id, slot_idx, taken, target)
        predictor.commit_packet(result.ftq_id)
    return WalkCounts(instructions, branches, mispredicts)
