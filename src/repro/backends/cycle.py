"""The ``cycle`` backend: the cycle-level host-core model.

Wraps :class:`~repro.frontend.core.Core` — speculation, superscalar fetch,
wrong-path predictor pollution, update delay, and timing are all modelled,
so this is the reference methodology the paper's FPGA simulations stand
for.  It is also the only backend that measures cycles and IPC.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import ExecutionBackend, RunLimits, register_backend
from repro.core.composer import ComposedPredictor
from repro.eval.metrics import RunResult
from repro.frontend.config import CoreConfig
from repro.frontend.core import Core
from repro.workloads.registry import WorkloadSource


class CycleBackend(ExecutionBackend):
    name = "cycle"

    def run(
        self,
        predictor: ComposedPredictor,
        source: WorkloadSource,
        limits: RunLimits,
        core_config: Optional[CoreConfig] = None,
        system: Optional[str] = None,
        trace: Optional[object] = None,
    ) -> RunResult:
        program = source.require_program(self.name)
        core = Core(program, predictor, core_config or CoreConfig(), trace=trace)
        stats = core.run(
            max_instructions=limits.max_instructions,
            max_cycles=limits.max_cycles,
        )
        return RunResult.from_stats(
            system or predictor.describe(), source.name, stats, backend=self.name
        )


register_backend(CycleBackend())
