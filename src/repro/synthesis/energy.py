"""Predictor energy model (§VI-A future work).

The paper: "Predictor energy consumption is expected to be an important
concern, as the energy cost of continuously reading predictor SRAMs is
significant [Parikh et al. 2002]."  This module implements that feedback
path: components report the bits they read per prediction
(``StorageReport.access_bits``), the composer's statistics count prediction,
update, mispredict, and repair events, and the energy model turns the two
into per-component and per-instruction energy.

Every prediction reads *every* sub-component's memories in parallel (the
pipeline cannot know in advance which will provide the final prediction) —
the structural reason big predictors burn read energy continuously.  The
metadata mechanism (§III-D) is what keeps *update* energy to one write:
without it, each update would need a second read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.composer import ComposedPredictor


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-access energies in the model's arbitrary-but-consistent pJ."""

    sram_read_pj_per_bit: float = 0.012
    sram_write_pj_per_bit: float = 0.018
    #: Fixed wordline/decoder cost per array access.
    sram_access_overhead_pj: float = 1.1
    #: Flop-array (CAM) access, per bit touched.
    flop_access_pj_per_bit: float = 0.004


class EnergyModel:
    """Turns composer activity counters into energy estimates."""

    def __init__(self, coefficients: EnergyCoefficients = EnergyCoefficients()):
        self.coefficients = coefficients

    # ------------------------------------------------------------------
    def _read_energy(self, access_bits: int, is_sram: bool) -> float:
        c = self.coefficients
        if access_bits <= 0:
            return 0.0
        if is_sram:
            return access_bits * c.sram_read_pj_per_bit + c.sram_access_overhead_pj
        return access_bits * c.flop_access_pj_per_bit

    def _write_energy(self, access_bits: int, is_sram: bool) -> float:
        c = self.coefficients
        if access_bits <= 0:
            return 0.0
        if is_sram:
            return access_bits * c.sram_write_pj_per_bit + c.sram_access_overhead_pj
        return access_bits * c.flop_access_pj_per_bit

    # ------------------------------------------------------------------
    def component_energy(self, predictor: ComposedPredictor) -> Dict[str, float]:
        """Energy per component over the predictor's recorded activity.

        Reads: one per component per prediction (parallel lookup).
        Writes: one per component per committed packet (commit-time update)
        plus one per mispredict (fast update) and per repaired entry.
        """
        stats = predictor.stats
        repairs = predictor.repair_stats.entries_repaired
        energies: Dict[str, float] = {}
        for component in predictor.components:
            report = component.storage()
            is_sram = report.sram_bits > 0
            read = self._read_energy(report.access_bits, is_sram)
            write = self._write_energy(report.access_bits, is_sram)
            energies[component.name] = (
                stats.predictions * read
                + stats.committed_packets * write
                + (stats.mispredicts + repairs) * write
            )
        # History file: one write per prediction, one read per commit/repair.
        meta_bits = sum(c.meta_bits for c in predictor.components)
        entry_bits = meta_bits + predictor.config.global_history_bits + 32
        energies["meta"] = (
            stats.predictions * self._write_energy(entry_bits, True)
            + (stats.committed_packets + stats.mispredicts + repairs)
            * self._read_energy(entry_bits, True)
        )
        return energies

    def total_energy(self, predictor: ComposedPredictor) -> float:
        return sum(self.component_energy(predictor).values())

    def energy_per_instruction(
        self, predictor: ComposedPredictor, committed_instructions: int
    ) -> float:
        """pJ of predictor energy per committed instruction."""
        if committed_instructions <= 0:
            raise ValueError("committed_instructions must be positive")
        return self.total_energy(predictor) / committed_instructions
