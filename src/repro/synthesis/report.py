"""Text rendering for area and measurement breakdowns."""

from __future__ import annotations

from typing import Dict, Mapping


def format_breakdown(
    breakdown: Mapping[str, float], unit: str = "um^2", indent: str = "  "
) -> str:
    """Aligned name/value/percent listing, largest first."""
    total = sum(breakdown.values())
    lines = []
    for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = 100.0 * value / total if total else 0.0
        lines.append(f"{indent}{name:24s} {value:12.0f} {unit}  ({share:5.1f}%)")
    lines.append(f"{indent}{'TOTAL':24s} {total:12.0f} {unit}")
    return "\n".join(lines)


def bar_chart(
    series: Mapping[str, float], width: int = 48, unit: str = ""
) -> str:
    """ASCII horizontal bar chart for quick visual comparison."""
    if not series:
        return "(empty)"
    peak = max(series.values())
    lines = []
    for name, value in series.items():
        bar = "#" * max(1, int(round(width * value / peak))) if peak else ""
        lines.append(f"  {name:16s} |{bar:<{width}s}| {value:10.2f}{unit}")
    return "\n".join(lines)


def format_matrix(
    results: Mapping[str, Mapping[str, float]],
    value_format: str = "{:8.2f}",
    col_width: int = 12,
) -> str:
    """Rows = outer keys, columns = inner keys (workloads)."""
    systems = list(results)
    workloads: Dict[str, None] = {}
    for row in results.values():
        for workload in row:
            workloads.setdefault(workload)
    header = f"{'':16s}" + "".join(f"{w[:col_width - 1]:>{col_width}s}" for w in workloads)
    lines = [header]
    for system in systems:
        cells = "".join(
            f"{value_format.format(results[system].get(w, float('nan'))):>{col_width}s}"
            for w in workloads
        )
        lines.append(f"{system:16s}" + cells)
    return "\n".join(lines)
