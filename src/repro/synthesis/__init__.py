"""Analytical area model (the Cadence Genus / FinFET substitute, §V-A).

The paper synthesizes each predictor at 1 GHz on a commercial FinFET
process and reports relative area breakdowns (Figs. 8-9).  Real synthesis
is out of reach here; instead, components report bit-accurate storage
(:class:`~repro.core.interface.StorageReport`) and this package converts
bits to area with calibrated per-bit SRAM/flop costs plus per-structure
overheads.  The absolute unit is arbitrary; the *relations* Figs. 8-9 turn
on — tagged structures cost more than untagged, management ("Meta") is
non-trivial, the whole predictor is a small slice of the core — follow
from the bit accounting.
"""

from repro.synthesis.sram import SramMacroModel
from repro.synthesis.area import AreaModel, CORE_BLOCKS_UM2
from repro.synthesis.energy import EnergyCoefficients, EnergyModel
from repro.synthesis.report import format_breakdown, bar_chart

__all__ = [
    "SramMacroModel",
    "AreaModel",
    "CORE_BLOCKS_UM2",
    "EnergyCoefficients",
    "EnergyModel",
    "format_breakdown",
    "bar_chart",
]
