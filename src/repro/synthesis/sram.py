"""SRAM macro model.

Synchronous predictor memories map to SRAM macros in the target technology
(§V-A: "Synchronous memories in the core, including most branch predictor
memories, were mapped to available SRAMs in that technology").  Macros come
in discrete sizes, so small logical tables pay quantization overhead — one
of the physical-design effects invisible to a software model.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Available macro capacities in bits (power-of-two "compiler" offerings).
MACRO_SIZES_BITS = (4096, 8192, 16384, 32768, 65536)


@dataclass(frozen=True)
class SramMacroModel:
    """Converts storage bits into macro-quantized area.

    ``um2_per_bit`` is the large-array asymptotic density; each macro also
    pays ``periphery_um2`` for decoders/sense-amps, and dual-ported macros
    cost ``dual_port_factor`` more per bit.
    """

    um2_per_bit: float = 0.22
    periphery_um2: float = 900.0
    dual_port_factor: float = 1.6

    def macro_area(self, macro_bits: int, dual_port: bool = False) -> float:
        per_bit = self.um2_per_bit * (self.dual_port_factor if dual_port else 1.0)
        return macro_bits * per_bit + self.periphery_um2

    def array_area(self, bits: int, dual_port: bool = False) -> float:
        """Area of the cheapest macro set covering ``bits``."""
        if bits <= 0:
            return 0.0
        remaining = bits
        area = 0.0
        largest = MACRO_SIZES_BITS[-1]
        while remaining > 0:
            if remaining >= largest:
                area += self.macro_area(largest, dual_port)
                remaining -= largest
                continue
            candidate = next(
                size for size in MACRO_SIZES_BITS if size >= remaining
            )
            area += self.macro_area(candidate, dual_port)
            remaining = 0
        return area
