"""Area estimation for predictors and the surrounding core (Figs. 8-9)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.composer import ComposedPredictor
from repro.core.interface import StorageReport
from repro.synthesis.sram import SramMacroModel

#: Fixed areas of the non-predictor core blocks of a 4-wide BOOM-class core
#: in the model's arbitrary-but-consistent um^2 (Fig. 9 analogue).  The
#: paper locates the critical paths in the issue units and shows even the
#: TAGE-L predictor is a small slice of the core; these values embed that
#: calibration.
CORE_BLOCKS_UM2: Dict[str, float] = {
    "icache (32KB)": 72_000.0,
    "dcache (32KB)": 78_000.0,
    "fetch (other)": 24_000.0,
    "decode/rename": 52_000.0,
    "issue units": 135_000.0,
    "regfiles": 95_000.0,
    "int exec (4x ALU)": 58_000.0,
    "fp exec (2x FPU)": 142_000.0,
    "load-store unit": 88_000.0,
    "rob": 66_000.0,
    "tlbs": 30_000.0,
}


@dataclass
class AreaModel:
    """Bits-to-area conversion with per-structure overheads.

    ``flop_um2_per_bit`` is much larger than the SRAM density — the reason
    the fully-associative uBTB must stay small.  ``logic_per_component``
    approximates the comparators/muxing each sub-component contributes, and
    ``logic_per_meta_bit`` the history-file write/read datapath per
    metadata bit.
    """

    sram: SramMacroModel = field(default_factory=SramMacroModel)
    flop_um2_per_bit: float = 2.1
    logic_per_component_um2: float = 1_500.0
    logic_per_meta_bit_um2: float = 9.0

    def report_area(self, report: StorageReport, dual_port: bool = False) -> float:
        return (
            self.sram.array_area(report.sram_bits, dual_port)
            + report.flop_bits * self.flop_um2_per_bit
        )

    # ------------------------------------------------------------------
    def predictor_breakdown(self, predictor: ComposedPredictor) -> Dict[str, float]:
        """Per-structure area of a composed predictor (Fig. 8 analogue).

        The ``meta`` entry covers the generated management structures:
        history file, history providers, and the per-component metadata
        datapath.
        """
        reports = predictor.storage_reports()
        breakdown: Dict[str, float] = {}
        for name, report in reports.items():
            area = self.report_area(report)
            area += self.logic_per_component_um2
            if name == "meta":
                meta_bits = sum(c.meta_bits for c in predictor.components)
                area += meta_bits * self.logic_per_meta_bit_um2
            breakdown[name] = area
        return breakdown

    def predictor_total(self, predictor: ComposedPredictor) -> float:
        return sum(self.predictor_breakdown(predictor).values())

    # ------------------------------------------------------------------
    def core_breakdown(self, predictor: ComposedPredictor) -> Dict[str, float]:
        """Whole-core area with this predictor attached (Fig. 9 analogue)."""
        breakdown = dict(CORE_BLOCKS_UM2)
        breakdown["branch predictor"] = self.predictor_total(predictor)
        return breakdown

    def core_total(self, predictor: ComposedPredictor) -> float:
        return sum(self.core_breakdown(predictor).values())

    def predictor_fraction(self, predictor: ComposedPredictor) -> float:
        """Fraction of core area spent on the predictor."""
        return self.predictor_total(predictor) / self.core_total(predictor)


def spec_area(spec, name: str = "spec", model: AreaModel = None) -> float:
    """Area of a declarative :class:`repro.spec.ComponentSpec`.

    Routes the spec's SRAM/flop bit totals through the same
    :meth:`AreaModel.report_area` mapping the implementation's
    :meth:`storage` report uses, so SPEC002 can assert the two agree not
    just in bits but in modeled silicon.
    """
    model = model or AreaModel()
    return model.report_area(spec.storage_report(name))
