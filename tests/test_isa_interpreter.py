"""Semantics tests for the tiny ISA interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Opcode, ProgramBuilder, RA, run_program
from repro.isa.interpreter import Interpreter, InterpreterError


def run_and_regs(build_fn):
    b = ProgramBuilder("t")
    build_fn(b)
    b.halt()
    interp = Interpreter(b.build())
    list(interp.run())
    return interp


class TestAlu:
    def test_add_sub(self):
        interp = run_and_regs(lambda b: b.li(1, 7).li(2, 3).add(3, 1, 2).sub(4, 1, 2))
        assert interp.regs[3] == 10
        assert interp.regs[4] == 4

    def test_logic(self):
        interp = run_and_regs(
            lambda b: b.li(1, 0b1100).li(2, 0b1010)
            .and_(3, 1, 2).or_(4, 1, 2).xor(5, 1, 2)
        )
        assert interp.regs[3] == 0b1000
        assert interp.regs[4] == 0b1110
        assert interp.regs[5] == 0b0110

    def test_shifts(self):
        interp = run_and_regs(lambda b: b.li(1, 5).li(2, 2).shl(3, 1, 2).shr(4, 1, 2))
        assert interp.regs[3] == 20
        assert interp.regs[4] == 1

    def test_mul_div(self):
        interp = run_and_regs(lambda b: b.li(1, 6).li(2, 7).mul(3, 1, 2).div(4, 3, 2))
        assert interp.regs[3] == 42
        assert interp.regs[4] == 6

    def test_div_by_zero_is_zero(self):
        interp = run_and_regs(lambda b: b.li(1, 5).li(2, 0).div(3, 1, 2))
        assert interp.regs[3] == 0

    def test_immediates(self):
        interp = run_and_regs(lambda b: b.li(1, 10).addi(2, 1, -3).andi(3, 1, 6).xori(4, 1, 3))
        assert interp.regs[2] == 7
        assert interp.regs[3] == 2
        assert interp.regs[4] == 9

    def test_r0_hardwired_zero(self):
        interp = run_and_regs(lambda b: b.li(0, 99).addi(1, 0, 5))
        assert interp.regs[0] == 0
        assert interp.regs[1] == 5

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add_matches_python(self, x, y):
        interp = run_and_regs(lambda b: b.li(1, x).li(2, y).add(3, 1, 2))
        assert interp.regs[3] == (x + y) & ((1 << 64) - 1)


class TestMemory:
    def test_store_load(self):
        interp = run_and_regs(
            lambda b: b.li(1, 500).li(2, 42).st(2, 1, 0).ld(3, 1, 0)
        )
        assert interp.regs[3] == 42
        assert interp.memory[500] == 42

    def test_load_uninitialized_is_zero(self):
        interp = run_and_regs(lambda b: b.li(1, 777).ld(2, 1, 0))
        assert interp.regs[2] == 0

    def test_offset_addressing(self):
        interp = run_and_regs(
            lambda b: b.li(1, 100).li(2, 7).st(2, 1, 3).ld(3, 1, 3)
        )
        assert interp.memory[103] == 7
        assert interp.regs[3] == 7

    def test_initial_data(self):
        b = ProgramBuilder("t")
        b.data_word(50, 1234)
        b.li(1, 50).ld(2, 1, 0).halt()
        interp = Interpreter(b.build())
        list(interp.run())
        assert interp.regs[2] == 1234

    def test_mem_addr_recorded(self):
        b = ProgramBuilder("t")
        b.li(1, 60).ld(2, 1, 0).halt()
        trace = run_program(b.build())
        load = [r for r in trace if r.instr.op is Opcode.LD][0]
        assert load.mem_addr == 60


class TestControlFlow:
    def test_branch_taken_and_not(self):
        b = ProgramBuilder("t")
        b.li(1, 5).li(2, 5)
        b.beq(1, 2, "eq")
        b.li(3, 111)  # skipped
        b.label("eq")
        b.li(4, 222)
        b.halt()
        interp = Interpreter(b.build())
        list(interp.run())
        assert interp.regs[3] == 0
        assert interp.regs[4] == 222

    def test_loop_counts(self):
        b = ProgramBuilder("t")
        b.li(1, 0).li(2, 10)
        b.label("loop")
        b.addi(1, 1, 1)
        b.blt(1, 2, "loop")
        b.halt()
        interp = Interpreter(b.build())
        trace = list(interp.run())
        assert interp.regs[1] == 10
        branches = [r for r in trace if r.instr.is_cond_branch]
        assert len(branches) == 10
        assert sum(r.taken for r in branches) == 9

    def test_bge_and_bne(self):
        interp = run_and_regs(lambda b: b.li(1, 3).li(2, 3))
        b = ProgramBuilder("t")
        b.li(1, 3).li(2, 3)
        b.bge(1, 2, "a")
        b.halt()
        b.label("a")
        b.bne(1, 2, "b")
        b.li(5, 1)
        b.halt()
        b.label("b")
        b.li(5, 2)
        b.halt()
        interp = Interpreter(b.build())
        list(interp.run())
        assert interp.regs[5] == 1

    def test_call_ret(self):
        b = ProgramBuilder("t")
        b.call("fn")
        b.li(2, 2)
        b.halt()
        b.label("fn")
        b.li(1, 1)
        b.ret()
        interp = Interpreter(b.build())
        list(interp.run())
        assert interp.regs[1] == 1
        assert interp.regs[2] == 2

    def test_call_records_link(self):
        b = ProgramBuilder("t")
        b.call("fn")
        b.halt()
        b.label("fn")
        b.ret()
        trace = run_program(b.build())
        call = trace[0]
        assert call.instr.is_call
        assert call.next_pc == 2  # the fn label
        ret = trace[1]
        assert ret.instr.is_ret
        assert ret.next_pc == 1

    def test_indirect_jump(self):
        b = ProgramBuilder("t")
        b.li(1, 4)
        b.jalr(1)
        b.li(2, 111)  # skipped
        b.halt()
        b.li(2, 222)  # pc 4
        b.halt()
        interp = Interpreter(b.build())
        list(interp.run())
        assert interp.regs[2] == 222

    def test_negative_compare_signed(self):
        b = ProgramBuilder("t")
        b.li(1, -1).li(2, 1)
        b.blt(1, 2, "yes")
        b.li(3, 0)
        b.halt()
        b.label("yes")
        b.li(3, 1)
        b.halt()
        interp = Interpreter(b.build())
        list(interp.run())
        assert interp.regs[3] == 1


class TestTermination:
    def test_halt_stops(self):
        b = ProgramBuilder("t")
        b.halt()
        b.li(1, 5)
        trace = run_program(b.build())
        assert len(trace) == 1
        assert trace[0].instr.op is Opcode.HALT

    def test_pc_out_of_range_raises(self):
        b = ProgramBuilder("t")
        b.li(1, 1)  # runs off the end
        interp = Interpreter(b.build())
        interp.step()
        with pytest.raises(InterpreterError):
            interp.step()

    def test_instruction_cap(self):
        b = ProgramBuilder("t")
        b.label("spin")
        b.jump("spin")
        trace = list(Interpreter(b.build()).run(max_instructions=100))
        assert len(trace) == 100

    def test_seq_numbers_monotonic(self):
        b = ProgramBuilder("t")
        b.li(1, 1).li(2, 2).halt()
        trace = run_program(b.build())
        assert [r.seq for r in trace] == [0, 1, 2]


class TestInstructionProperties:
    def test_forward_distance(self):
        br = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=10)
        assert br.forward_distance(7) == 3
        assert br.forward_distance(10) is None  # backward/zero
        assert Instruction(Opcode.ADD, rd=1).forward_distance(0) is None

    def test_kind_flags(self):
        assert Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0).is_cond_branch
        assert Instruction(Opcode.JAL, rd=RA, target=0).is_call
        assert Instruction(Opcode.JALR, rs1=RA).is_ret
        assert not Instruction(Opcode.JALR, rs1=3).is_ret
        assert Instruction(Opcode.JALR, rs1=3).is_indirect

    def test_latencies(self):
        assert Instruction(Opcode.ADD).latency == 1
        assert Instruction(Opcode.MUL).latency == 3
        assert Instruction(Opcode.DIV).latency == 12
        assert Instruction(Opcode.LD).latency == 2
