"""Unit and property tests for the bit-manipulation utilities."""

import pytest
from hypothesis import given, strategies as st

from repro._util import (
    counter_is_weak,
    counter_taken,
    fold_history,
    hash_combine,
    hash_pc,
    is_power_of_two,
    log2_exact,
    mask,
    popcount,
    saturating_update,
    shift_in,
    sign_extend,
    truncate,
)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(3) == 0b111
        assert mask(8) == 0xFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    def test_truncate(self):
        assert truncate(0x1234, 8) == 0x34
        assert truncate(0xFF, 0) == 0


class TestFoldHistory:
    def test_zero_fold_width(self):
        assert fold_history(0b1010, 4, 0) == 0

    def test_identity_when_fits(self):
        assert fold_history(0b1010, 4, 4) == 0b1010

    def test_two_chunk_xor(self):
        # 8-bit history 0b1100_0101 folded to 4: 0b1100 ^ 0b0101.
        assert fold_history(0b11000101, 8, 4) == 0b1100 ^ 0b0101

    def test_truncates_history_first(self):
        assert fold_history(0b111100001111, 4, 4) == 0b1111

    def test_zero_history(self):
        assert fold_history(0, 64, 10) == 0

    @given(st.integers(0, 2**64 - 1), st.integers(1, 64), st.integers(1, 16))
    def test_result_fits_width(self, history, hist_bits, fold_bits):
        assert 0 <= fold_history(history, hist_bits, fold_bits) <= mask(fold_bits)

    @given(st.integers(0, 2**64 - 1), st.integers(1, 16))
    def test_deterministic(self, history, fold_bits):
        a = fold_history(history, 64, fold_bits)
        b = fold_history(history, 64, fold_bits)
        assert a == b

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1), st.integers(1, 12))
    def test_xor_distributes(self, h1, h2, fold_bits):
        """Folding is linear over XOR, like the hardware CSR fold."""
        assert fold_history(h1 ^ h2, 32, fold_bits) == fold_history(
            h1, 32, fold_bits
        ) ^ fold_history(h2, 32, fold_bits)


class TestHashes:
    def test_hash_pc_width(self):
        for pc in (0, 1, 12345, 2**40):
            assert 0 <= hash_pc(pc, 10) <= mask(10)

    def test_hash_pc_zero_bits(self):
        assert hash_pc(1234, 0) == 0

    def test_nearby_pcs_distinct(self):
        values = {hash_pc(pc, 10) for pc in range(64)}
        assert len(values) == 64  # shifted-XOR hash keeps low PCs distinct

    def test_hash_combine(self):
        assert hash_combine(0b1100, 0b1010, bits=4) == 0b0110


class TestSaturatingCounters:
    def test_increments_to_top(self):
        c = 0
        for _ in range(5):
            c = saturating_update(c, True, 2)
        assert c == 3

    def test_decrements_to_zero(self):
        c = 3
        for _ in range(5):
            c = saturating_update(c, False, 2)
        assert c == 0

    def test_taken_msb(self):
        assert not counter_taken(0, 2)
        assert not counter_taken(1, 2)
        assert counter_taken(2, 2)
        assert counter_taken(3, 2)

    def test_weak_values(self):
        assert counter_is_weak(1, 2)
        assert counter_is_weak(2, 2)
        assert not counter_is_weak(0, 2)
        assert not counter_is_weak(3, 2)

    def test_3bit_weak(self):
        assert counter_is_weak(3, 3)
        assert counter_is_weak(4, 3)
        assert not counter_is_weak(7, 3)

    @given(st.integers(0, 7), st.booleans())
    def test_stays_in_range_3bit(self, counter, taken):
        assert 0 <= saturating_update(counter, taken, 3) <= 7

    @given(st.integers(0, 7), st.booleans())
    def test_moves_toward_outcome(self, counter, taken):
        updated = saturating_update(counter, taken, 3)
        if taken:
            assert updated >= counter
        else:
            assert updated <= counter


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0b011, 3) == 3

    def test_negative(self):
        assert sign_extend(0b100, 3) == -4
        assert sign_extend(0b111, 3) == -1

    @given(st.integers(-128, 127))
    def test_roundtrip_8bit(self, value):
        assert sign_extend(value & 0xFF, 8) == value


class TestShiftIn:
    def test_shift_and_truncate(self):
        assert shift_in(0b101, True, 3) == 0b011
        assert shift_in(0b101, False, 3) == 0b010

    @given(st.integers(0, 2**16 - 1), st.booleans())
    def test_lsb_is_outcome(self, history, taken):
        assert shift_in(history, taken, 16) & 1 == int(taken)


class TestPowersOfTwo:
    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(1024) == 10

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(24)

    def test_is_power_of_two(self):
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
