"""The evaluation service: protocol, admission, pool recovery, HTTP surface.

Everything except the two :class:`WorkerPool` process tests runs with an
injected ``run_job`` stub, so coalescing, shedding, caching, draining, and
the wire protocol are exercised deterministically — gated by asyncio
events, never by sleeps.  The pool tests use real spawned processes with a
worker that kills itself exactly once (a deterministic stand-in for an OOM
kill), so recovery is asserted without racing a signal against a running
job.
"""

import asyncio
import os
import signal

import pytest

from repro.eval.cache import ResultCache
from repro.eval.parallel import _execute_job
from repro.service import (
    EvalService,
    JobSpec,
    JobTable,
    LatencyHistogram,
    ProtocolError,
    QueueFull,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceDraining,
    ServiceMetrics,
    WorkerPool,
    WorkerPoolBroken,
    parse_job_spec,
    parse_jobs_body,
)

SPEC = {
    "predictor": "b2",
    "workload": "biased",
    "backend": "trace",
    "scale": 0.2,
    "max_instructions": 2000,
}


@pytest.fixture(scope="module")
def run_result():
    """One real RunResult (tiny trace-backend run) for the stub runners."""
    return _execute_job(parse_job_spec(SPEC).prepare().eval_job)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_minimal_spec_gets_defaults(self):
        spec = parse_job_spec({"predictor": "b2", "workload": "biased"})
        assert spec == JobSpec(predictor="b2", workload="biased")
        assert spec.backend == "cycle" and spec.scale == 0.5

    def test_missing_and_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="missing required"):
            parse_job_spec({"predictor": "b2"})
        with pytest.raises(ProtocolError, match="unknown job spec field"):
            parse_job_spec({**SPEC, "workers": 4})

    def test_type_and_bound_validation(self):
        with pytest.raises(ProtocolError, match="must be int"):
            parse_job_spec({**SPEC, "max_instructions": "many"})
        with pytest.raises(ProtocolError, match="must be positive"):
            parse_job_spec({**SPEC, "max_instructions": 0})
        with pytest.raises(ProtocolError, match="'scale' must be positive"):
            parse_job_spec({**SPEC, "scale": -1.0})
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            parse_job_spec(["b2"])

    def test_batch_body(self):
        specs = parse_jobs_body({"jobs": [SPEC, SPEC]})
        assert len(specs) == 2 and specs[0] == specs[1]
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_jobs_body({"jobs": []})
        with pytest.raises(ProtocolError, match="unknown batch field"):
            parse_jobs_body({"jobs": [SPEC], "priority": 9})

    def test_prepare_rejects_unsatisfiable_specs(self):
        with pytest.raises(ProtocolError, match="unknown backend"):
            parse_job_spec({**SPEC, "backend": "gpu"}).prepare()
        with pytest.raises(ProtocolError, match="unknown workload"):
            parse_job_spec({**SPEC, "workload": "nonesuch"}).prepare()
        with pytest.raises(ProtocolError, match="unparsable topology"):
            parse_job_spec({**SPEC, "predictor": "no such ^ thing"}).prepare()
        with pytest.raises(ProtocolError, match="stored trace not found"):
            parse_job_spec({**SPEC, "workload": "missing.npz"}).prepare()

    def test_equal_specs_share_one_cache_key(self):
        explicit = parse_job_spec(dict(SPEC))
        defaulted = parse_job_spec(
            {k: SPEC[k] for k in ("predictor", "workload", "backend",
                                  "scale", "max_instructions")}
        )
        assert explicit.normalized() == defaulted.normalized()
        assert explicit.prepare().cache_key == defaulted.prepare().cache_key

    def test_topology_string_prepares_and_pickles(self):
        import pickle

        prepared = parse_job_spec({**SPEC, "predictor": "BIM1"}).prepare()
        clone = pickle.loads(pickle.dumps(prepared.eval_job))
        assert clone.spec() is not None  # factory survives the trip


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_summary(self):
        h = LatencyHistogram()
        assert h.quantile(0.5) is None
        for ms in (1, 1, 2, 100):
            h.record(ms / 1000.0)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["max_ms"] == pytest.approx(100.0)
        assert snap["p50_ms"] <= snap["p99_ms"] <= snap["max_ms"]
        assert sum(snap["buckets"].values()) == 4

    def test_snapshot_mirrors_counters(self):
        metrics = ServiceMetrics()
        metrics.cache_hits += 3
        metrics.cache_misses += 1
        metrics.record_latency("trace", 0.25)
        snap = metrics.snapshot()
        assert snap["cache_hits"] == 3
        assert snap["cache_hit_rate"] == pytest.approx(0.75)
        assert snap["latency_by_backend"]["trace"]["count"] == 1


# ----------------------------------------------------------------------
# JobTable admission (stub runner, gated by events, no sleeps)
# ----------------------------------------------------------------------
def _gated_runner(gate, result):
    async def run(eval_job):
        await gate.wait()
        return result

    return run


class TestJobTable:
    def test_duplicates_coalesce_to_one_execution(self, tmp_path, run_result):
        async def main():
            gate = asyncio.Event()
            cache = ResultCache(tmp_path / "cache")
            table = JobTable(cache=cache, run_job=_gated_runner(gate, run_result))
            table.start(dispatchers=2)
            spec = parse_job_spec(SPEC)
            leader = table.submit(spec)
            followers = [table.submit(spec) for _ in range(3)]
            assert all(f.coalesced for f in followers)
            assert table.metrics.dedup_coalesced == 3
            assert table.backlog == 1  # followers consume no queue slot
            gate.set()
            await followers[-1].done.wait()
            assert table.metrics.executions == 1
            assert {j.state for j in (leader, *followers)} == {"done"}
            assert all(j.result is run_result for j in (leader, *followers))

            # The execution warmed the cache: a fresh submission of the
            # same spec completes synchronously without a worker.
            warm = table.submit(spec)
            assert warm.cache_hit and warm.done.is_set()
            assert table.metrics.cache_hits == 1
            assert table.metrics.executions == 1
            await table.drain()

        asyncio.run(main())

    def test_high_water_sheds_but_never_sheds_followers(self, run_result):
        async def main():
            gate = asyncio.Event()
            table = JobTable(
                run_job=_gated_runner(gate, run_result), high_water=1
            )
            table.start(dispatchers=1)
            spec_a = parse_job_spec(SPEC)
            spec_b = parse_job_spec({**SPEC, "max_instructions": 1000})
            table.submit(spec_a)
            with pytest.raises(QueueFull) as excinfo:
                table.submit(spec_b)
            assert excinfo.value.retry_after >= 1.0
            assert table.metrics.jobs_shed == 1
            # An identical duplicate still coalesces at the high-water mark.
            follower = table.submit(spec_a)
            assert follower.coalesced
            gate.set()
            await follower.done.wait()
            # Capacity freed: the previously shed spec is admitted now.
            assert table.submit(spec_b) is not None
            await table.drain()

        asyncio.run(main())

    def test_failures_propagate_to_followers(self):
        async def main():
            async def boom(eval_job):
                raise ValueError("synthetic backend failure")

            table = JobTable(run_job=boom)
            table.start(dispatchers=1)
            spec = parse_job_spec(SPEC)
            leader = table.submit(spec)
            follower = table.submit(spec)
            await follower.done.wait()
            assert leader.state == follower.state == "failed"
            assert "synthetic backend failure" in follower.error
            assert table.metrics.jobs_failed == 2
            await table.drain()

        asyncio.run(main())

    def test_drain_finishes_backlog_then_rejects(self, run_result):
        async def main():
            gate = asyncio.Event()
            table = JobTable(run_job=_gated_runner(gate, run_result))
            table.start(dispatchers=1)
            job = table.submit(parse_job_spec(SPEC))
            drainer = asyncio.create_task(table.drain())
            await asyncio.sleep(0)  # let the drainer sample the backlog
            gate.set()
            assert await drainer == 1
            assert job.state == "done"
            with pytest.raises(ServiceDraining):
                table.submit(parse_job_spec(SPEC))

        asyncio.run(main())

    def test_completed_history_is_bounded(self, run_result):
        async def main():
            async def instant(eval_job):
                return run_result

            table = JobTable(run_job=instant, max_jobs=4)
            table.start(dispatchers=1)
            jobs = []
            for bound in range(100, 110):
                job = table.submit(
                    parse_job_spec({**SPEC, "max_instructions": bound})
                )
                await job.done.wait()
                jobs.append(job)
            assert len(table._jobs) <= 4
            assert table.get(jobs[0].id) is None  # oldest evicted
            assert table.get(jobs[-1].id) is jobs[-1]
            await table.drain()

        asyncio.run(main())


# ----------------------------------------------------------------------
# WorkerPool recovery (real spawned processes)
# ----------------------------------------------------------------------
def _die_once_then_answer(flag_path):
    """First execution SIGKILLs its own worker; the retry answers."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("died\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return 42


def _always_die():
    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerPool:
    def test_job_survives_worker_death(self, tmp_path):
        async def main():
            metrics = ServiceMetrics()
            pool = WorkerPool(workers=1, max_retries=2, metrics=metrics)
            try:
                flag = str(tmp_path / "died.flag")
                assert await pool.run(_die_once_then_answer, flag) == 42
                assert metrics.worker_restarts == 1
                assert metrics.worker_retries == 1
                assert pool.generation == 1
            finally:
                pool.shutdown()

        asyncio.run(main())

    def test_retry_budget_exhaustion_raises(self):
        async def main():
            pool = WorkerPool(workers=1, max_retries=0)
            try:
                with pytest.raises(WorkerPoolBroken):
                    await pool.run(_always_die)
            finally:
                pool.shutdown()

        asyncio.run(main())


# ----------------------------------------------------------------------
# HTTP surface (real sockets, stub runner)
# ----------------------------------------------------------------------
async def _start_service(run_job, **config_kwargs):
    service = EvalService(
        ServiceConfig(port=0, quiet=True, **config_kwargs), run_job=run_job
    )
    serve_task = asyncio.create_task(service.serve())
    while service._server is None:
        await asyncio.sleep(0)
    port = service._server.sockets[0].getsockname()[1]
    return service, serve_task, ServiceClient(port=port, timeout=30.0)


class TestHttpServer:
    def test_submit_roundtrip_and_introspection(self, tmp_path, run_result):
        async def main():
            async def instant(eval_job):
                return run_result

            service, serve_task, client = await _start_service(
                instant, cache_dir=str(tmp_path / "cache")
            )
            view = await client.submit(SPEC)
            final = await client.wait_job(view["id"])
            assert final["state"] == "done"
            assert final["result"]["instructions"] > 0
            assert final["result"]["backend"] == "trace"
            assert 0.0 <= final["result"]["branch_accuracy"] <= 1.0

            # Resubmission is a warm hit: terminal in the POST response.
            warm = await client.submit(SPEC)
            assert warm["state"] == "done" and warm["cache_hit"]

            health = await client.healthz()
            assert health["status"] == "ok" and health["backlog"] == 0
            metrics = await client.metrics()
            assert metrics["cache_hits"] == 1
            assert metrics["executions"] == 1
            assert metrics["cache"]["entries"] == 1
            assert metrics["cache_hit_latency"]["count"] == 1

            service.request_shutdown()
            assert await serve_task == 0

        asyncio.run(main())

    def test_duplicate_batch_coalesces_over_http(self, run_result):
        async def main():
            gate = asyncio.Event()
            service, serve_task, client = await _start_service(
                _gated_runner(gate, run_result)
            )
            batch = await client.submit_batch([SPEC, SPEC, SPEC])
            assert batch["accepted"] == 3
            flags = [job["coalesced"] for job in batch["jobs"]]
            assert flags == [False, True, True]
            gate.set()
            for job in batch["jobs"]:
                assert (await client.wait_job(job["id"]))["state"] == "done"
            metrics = await client.metrics()
            assert metrics["executions"] == 1
            assert metrics["dedup_coalesced"] == 2
            service.request_shutdown()
            assert await serve_task == 0

        asyncio.run(main())

    def test_client_errors_and_shedding(self, run_result):
        async def main():
            gate = asyncio.Event()
            service, serve_task, client = await _start_service(
                _gated_runner(gate, run_result), high_water=1
            )
            with pytest.raises(ServiceClientError) as excinfo:
                await client.submit({"predictor": "b2"})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceClientError) as excinfo:
                await client.job("job-999999")
            assert excinfo.value.status == 404
            status, _, _ = await client.request("PUT", "/jobs")
            assert status == 405
            status, _, _ = await client.request("GET", "/nonesuch")
            assert status == 404

            await client.submit(SPEC)  # occupies the single backlog slot
            with pytest.raises(ServiceClientError) as excinfo:
                await client.submit({**SPEC, "max_instructions": 1000})
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1.0
            assert (await client.metrics())["jobs_shed"] == 1

            gate.set()
            service.request_shutdown()
            assert await serve_task == 0

        asyncio.run(main())

    def test_sigterm_drains_inflight_job_before_exit(self, run_result):
        async def main():
            gate = asyncio.Event()
            service, serve_task, client = await _start_service(
                _gated_runner(gate, run_result)
            )
            view = await client.submit(SPEC)
            # The loop's SIGTERM handler is request_shutdown; deliver the
            # real signal rather than calling it, to cover the wiring.
            os.kill(os.getpid(), signal.SIGTERM)
            gate.set()
            assert await serve_task == 0
            job = service.table.get(view["id"])
            assert job is not None and job.state == "done"
            assert service.metrics.jobs_completed == 1

        asyncio.run(main())
