"""Differential fuzzing subsystem tests.

Fast tier-1 coverage of the generator/oracle/minimizer/reproducer stack,
the injected-bug fixture proving the oracles have teeth, and regression
tests riding along (``TraceResult.mpki`` per-instruction semantics,
schema-2 ``BranchTrace`` round trip through the reproducer format).  The
long campaign sweeps are marked ``fuzz`` and deselected by default — run
them with ``pytest -m fuzz``.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.diagnostics import ERROR
from repro.analysis.topology_check import check_spec
from repro.cli import main as cli_main
from repro.eval.tracesim import TraceResult
from repro.fuzz import (
    FuzzCase,
    FuzzConfig,
    KernelSpec,
    ProgramSpec,
    build_program,
    campaign_rng,
    case_for_iteration,
    ddmin,
    load_reproducer,
    minimize_case,
    random_program_spec,
    random_topology_spec,
    replay_reproducer,
    run_campaign,
    run_oracle,
    run_oracles,
    save_reproducer,
)
from repro.fuzz.generate import (
    TopologyFactory,
    spec_from_payload,
    spec_to_payload,
)
from repro.workloads.traces import capture_trace
from tests.fixtures import injected_bug

#: A small deterministic workload used by the fast oracle tests.
TINY_SPEC = ProgramSpec(
    seed=11,
    outer_iterations=1,
    kernels=(
        KernelSpec("stream", (("n", 16),)),
        KernelSpec("hammock", (("n", 8),)),
    ),
)


def tiny_case(**overrides) -> FuzzCase:
    fields = dict(
        case_id=0,
        seed=0,
        label="tiny",
        predictor_spec=TopologyFactory("GSHARE2 > BTB2 > BIM2"),
        topology="GSHARE2 > BTB2 > BIM2",
        program_spec=TINY_SPEC,
        max_instructions=800,
    )
    fields.update(overrides)
    return FuzzCase(**fields)


def injected_case() -> FuzzCase:
    """The fixture case: a multi-kernel workload on the lying component."""
    return FuzzCase(
        case_id=0,
        seed=0,
        label="phantom",
        predictor_spec=injected_bug.build_injected_predictor,
        topology=injected_bug.INJECTED_TOPOLOGY,
        program_spec=ProgramSpec(
            seed=7,
            outer_iterations=3,
            kernels=(
                KernelSpec("stream", (("n", 48),)),
                KernelSpec("data_branches", (("n", 32),)),
                KernelSpec("hammock", (("n", 16),)),
            ),
        ),
        max_instructions=4_000,
    )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
class TestGenerators:
    def test_campaign_is_deterministic(self):
        config = FuzzConfig(seed=3)
        for iteration in range(6):
            a = case_for_iteration(config, iteration)
            b = case_for_iteration(config, iteration)
            assert a.topology == b.topology
            assert a.program_spec == b.program_spec
            assert (
                build_program(a.program_spec).instructions
                == build_program(b.program_spec).instructions
            )

    def test_seeds_draw_different_cases(self):
        a = case_for_iteration(FuzzConfig(seed=0), 0)
        b = case_for_iteration(FuzzConfig(seed=1), 0)
        assert (a.topology, a.program_spec) != (b.topology, b.program_spec)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_topologies_are_check_clean(self, seed):
        spec = random_topology_spec(campaign_rng(seed, 0))
        errors = [d for d in check_spec(spec) if d.severity == ERROR]
        assert not errors, f"{spec!r}: {[d.format() for d in errors]}"

    def test_program_spec_payload_round_trip(self):
        spec = random_program_spec(campaign_rng(5, 2))
        assert spec_from_payload(spec_to_payload(spec)) == spec

    def test_preset_cases_mix_into_the_stream(self):
        config = FuzzConfig(seed=0, include_presets=True)
        labels = {case_for_iteration(config, i).label for i in range(8)}
        assert labels & {"tage_l", "b2", "tourney"}
        none = FuzzConfig(seed=0, include_presets=False)
        labels = {case_for_iteration(none, i).label for i in range(8)}
        assert not labels & {"tage_l", "b2", "tourney"}


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_all_oracles_clean_on_healthy_case(self, tmp_path):
        mismatches = run_oracles(
            ("backends", "parallel", "cache", "telemetry", "check"),
            tiny_case(),
            tmp_path,
        )
        assert mismatches == []

    def test_oracles_clean_on_preset_case(self, tmp_path):
        case = tiny_case(
            label="b2", predictor_spec="b2", topology="GTAG3 > BTB2 > BIM2"
        )
        assert run_oracles(("backends", "check"), case, tmp_path) == []

    def test_unknown_oracle_is_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown oracle"):
            run_oracle("nope", tiny_case(), tmp_path)

    def test_crash_becomes_a_mismatch(self, tmp_path):
        case = tiny_case(
            predictor_spec=TopologyFactory("NOSUCH2"), topology="NOSUCH2"
        )
        found = run_oracle("backends", case, tmp_path)
        assert [m.subject for m in found] == ["crash"]
        assert "completes" in str(found[0].expected)


# ----------------------------------------------------------------------
# Injected bug: the oracles must have teeth
# ----------------------------------------------------------------------
class TestInjectedBug:
    def test_backends_oracle_catches_lying_inert_component(self, tmp_path):
        found = run_oracle("backends", injected_case(), tmp_path)
        subjects = {m.subject for m in found}
        # Both the replay backend and the skip-enabled stream walker
        # diverge from the honest commit-order walk.
        assert "trace-vs-replay" in subjects
        assert "trace-vs-stream-skip" in subjects

    def test_minimizer_shrinks_the_failing_case(self, tmp_path):
        result = minimize_case(
            injected_case(), "backends", tmp_path, max_evals=100
        )
        shrunk = result.case
        assert result.mismatches, "minimized case must still fail"
        assert len(shrunk.program_spec.kernels) == 1
        assert shrunk.program_spec.outer_iterations == 1
        assert shrunk.max_instructions <= 256
        # The shrunk workload is genuinely tiny.
        assert len(build_program(shrunk.program_spec)) <= 120

    def test_honest_component_passes_the_same_battery(self, tmp_path):
        case = dataclasses.replace(
            injected_case(),
            predictor_spec=TopologyFactory("BIM2"),
            topology="BIM2",
        )
        assert run_oracle("backends", case, tmp_path) == []


# ----------------------------------------------------------------------
# Minimizer internals
# ----------------------------------------------------------------------
class TestMinimize:
    def test_ddmin_finds_minimal_subset(self):
        evals = []

        def predicate(subset):
            evals.append(tuple(subset))
            return {3, 6} <= set(subset)

        assert ddmin(list(range(1, 9)), predicate) == [3, 6]

    def test_ddmin_single_item(self):
        assert ddmin([5], lambda s: True) == [5]

    def test_topology_candidates_are_strictly_simpler(self):
        from repro.fuzz.minimize import topology_candidates

        spec = "TOURNEY3 > [GBIM2 > BTB2, LBIM2]"
        candidates = topology_candidates(spec)
        assert "LBIM2" in candidates
        assert spec not in candidates
        assert all(len(c) < len(spec) for c in candidates)


# ----------------------------------------------------------------------
# Reproducer artifacts
# ----------------------------------------------------------------------
class TestReproducer:
    def _failing_artifact(self, tmp_path):
        result = minimize_case(
            injected_case(), "backends", tmp_path, max_evals=100
        )
        trace = capture_trace(
            result.case.program(),
            max_instructions=result.case.max_instructions,
        )
        path = save_reproducer(
            tmp_path / "repro.npz",
            result.case,
            "backends",
            result.mismatches,
            trace=trace,
        )
        return path, result

    def test_round_trip_preserves_the_case(self, tmp_path):
        path, result = self._failing_artifact(tmp_path)
        loaded = load_reproducer(path)
        assert loaded.oracle == "backends"
        assert not loaded.generator_drift
        assert loaded.case.program_spec == result.case.program_spec
        assert loaded.case.max_instructions == result.case.max_instructions
        assert (
            loaded.case.program().instructions
            == result.case.program().instructions
        )
        assert loaded.recorded_mismatches == [
            m.payload() for m in result.mismatches
        ]

    def test_embedded_branch_trace_round_trips_schema2(self, tmp_path):
        path, result = self._failing_artifact(tmp_path)
        loaded = load_reproducer(path)
        original = capture_trace(
            result.case.program(),
            max_instructions=result.case.max_instructions,
        )
        trace = loaded.trace
        assert trace is not None and trace.replayable
        np.testing.assert_array_equal(trace.pcs, original.pcs)
        np.testing.assert_array_equal(trace.types, original.types)
        np.testing.assert_array_equal(trace.taken, original.taken)
        np.testing.assert_array_equal(trace.targets, original.targets)
        np.testing.assert_array_equal(trace.slot_kinds, original.slot_kinds)
        np.testing.assert_array_equal(
            trace.slot_targets, original.slot_targets
        )
        assert trace.instruction_count == original.instruction_count
        assert trace.entry_pc == original.entry_pc

    def test_replay_reproduces_the_recorded_failure(self, tmp_path):
        path, _ = self._failing_artifact(tmp_path)
        outcome = replay_reproducer(
            path, predictor_factory=injected_bug.build_injected_predictor
        )
        assert outcome.status == "reproduced"
        assert outcome.exit_code == 1

    def test_replay_reports_clean_when_the_bug_is_fixed(self, tmp_path):
        path, _ = self._failing_artifact(tmp_path)
        # "Fixing" the bug = replacing the predictor with an honest one.
        outcome = replay_reproducer(
            path, predictor_factory=TopologyFactory("BIM2")
        )
        assert outcome.status == "clean"
        assert outcome.exit_code == 0

    def test_stored_columns_win_on_generator_drift(self, tmp_path):
        case = tiny_case()
        path = save_reproducer(tmp_path / "drift.npz", case, "backends", [])
        # Simulate a generator change: rewrite the stored spec so it no
        # longer rebuilds the stored instruction columns.
        import json

        data = dict(np.load(path))
        meta = json.loads(str(data["meta"][()]))
        meta["program_spec"]["seed"] = 999_999
        data["meta"] = json.dumps(meta)
        np.savez_compressed(path, **data)
        loaded = load_reproducer(path)
        assert loaded.generator_drift
        assert (
            loaded.case.program().instructions
            == case.program().instructions
        )


# ----------------------------------------------------------------------
# Campaigns and CLI
# ----------------------------------------------------------------------
class TestCampaign:
    def test_failing_campaign_minimizes_and_writes_artifacts(self, tmp_path):
        config = FuzzConfig(
            seed=0,
            iterations=1,
            oracles=("backends",),
            predictor_factory=injected_bug.build_injected_predictor,
            factory_label="phantom",
            out_dir=tmp_path / "artifacts",
            stop_after=1,
        )
        report = run_campaign(config)
        assert not report.ok
        (failure,) = report.failures
        assert failure.oracle == "backends"
        assert failure.minimized is not None
        assert failure.reproducer_path is not None
        assert failure.reproducer_path.exists()
        assert "phantom" in report.summary()

    def test_time_budget_bounds_the_campaign(self):
        config = FuzzConfig(seed=0, iterations=1_000, time_budget=0.0)
        report = run_campaign(config)
        assert report.iterations_run <= 1

    def test_cli_run_exits_zero_on_clean_campaign(self, capsys):
        code = cli_main(
            [
                "fuzz",
                "run",
                "--seed",
                "0",
                "--iterations",
                "1",
                "--no-artifacts",
                "--quiet",
                "--max-instructions",
                "800",
            ]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_repro_replays_an_artifact(self, tmp_path, capsys):
        case = tiny_case()
        path = save_reproducer(
            tmp_path / "clean.npz", case, "backends", []
        )
        assert cli_main(["fuzz", "repro", str(path)]) == 0
        assert "CLEAN" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Satellite regressions riding along
# ----------------------------------------------------------------------
class TestMetricRegressions:
    def test_trace_result_mpki_is_per_kilo_instruction(self):
        # 25 mispredicts over 10_000 instructions: 2.5 MPKI; the legacy
        # per-branch rate (25/500 per kilo-branch) stays available under
        # its own name.
        result = TraceResult(
            branches=500, mispredicts=25, instructions=10_000
        )
        assert result.mpki == pytest.approx(2.5)
        assert result.mpki_per_branch == pytest.approx(50.0)

    def test_trace_result_rates_handle_zero_denominators(self):
        empty = TraceResult(branches=0, mispredicts=0, instructions=0)
        assert empty.mpki == 0.0
        assert empty.mpki_per_branch == 0.0


# ----------------------------------------------------------------------
# Long sweeps (opt-in: pytest -m fuzz)
# ----------------------------------------------------------------------
@pytest.mark.fuzz
class TestFuzzSweep:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_campaign_runs_clean(self, seed):
        report = run_campaign(
            FuzzConfig(seed=seed, iterations=15, out_dir=None)
        )
        assert report.ok, report.summary()
