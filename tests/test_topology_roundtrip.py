"""Property test: ``parse_topology(node.describe())`` is the identity.

The paper notation emitted by :meth:`TopologyNode.describe` must parse
back to a structurally equivalent tree — same node kinds, same component
base names, same latencies — for every shipped preset and for a seeded
population of randomized topologies.  The random population comes from
the differential fuzzer's generator (:mod:`repro.fuzz.generate`), so the
round-trip property and the fuzz campaigns exercise the same topology
distribution.
"""

import random

import pytest

from repro import presets
from repro.components.library import standard_library
from repro.core.parser import parse_topology
from repro.core.topology import Arbitrate, Leaf, Override
from repro.fuzz.generate import random_topology_spec


def equivalent(a, b):
    """Structural equality: node kind, component base name, latency."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Leaf):
        pair = (a.component, b.component)
    elif isinstance(a, Override):
        pair = (a.hi, b.hi)
        if not equivalent(a.lo, b.lo):
            return False
    elif isinstance(a, Arbitrate):
        pair = (a.selector, b.selector)
        if len(a.children) != len(b.children):
            return False
        if not all(equivalent(x, y) for x, y in zip(a.children, b.children)):
            return False
    else:  # pragma: no cover - no other node kinds exist
        raise AssertionError(f"unknown node type {type(a)!r}")
    lhs, rhs = pair
    return lhs.base_name == rhs.base_name and lhs.latency == rhs.latency


class TestPresetRoundTrip:
    @pytest.mark.parametrize("name", presets.PRESET_NAMES)
    def test_preset_describe_reparses_equivalently(self, name):
        predictor = presets.build(name)
        library = standard_library(fetch_width=predictor.config.fetch_width)
        reparsed = parse_topology(predictor.topology.describe(), library)
        assert equivalent(reparsed, predictor.topology)
        assert reparsed.describe() == predictor.topology.describe()


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_topologies_round_trip(self, seed):
        rng = random.Random(0xC0B7A ^ seed)
        library = standard_library()
        spec = random_topology_spec(rng)
        node = parse_topology(spec, library)
        notation = node.describe()
        reparsed = parse_topology(notation, standard_library())
        assert equivalent(reparsed, node), (
            f"spec {spec!r} described as {notation!r} did not round-trip"
        )
        # describe() is a fixed point: a second round adds nothing.
        assert reparsed.describe() == notation

    def test_equivalence_is_discriminating(self):
        library = standard_library()
        a = parse_topology("BIM2 > BTB2", library)
        b = parse_topology("BIM3 > BTB2", standard_library())
        c = parse_topology("GBIM2 > BTB2", standard_library())
        assert not equivalent(a, b)  # latency differs
        assert not equivalent(a, c)  # base name differs
        assert not equivalent(a, Leaf(next(a.components())))  # kind differs
