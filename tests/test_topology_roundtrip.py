"""Property test: ``parse_topology(node.describe())`` is the identity.

The paper notation emitted by :meth:`TopologyNode.describe` must parse
back to a structurally equivalent tree — same node kinds, same component
base names, same latencies — for every shipped preset and for a seeded
population of randomized topologies.
"""

import random

import pytest

from repro import presets
from repro.components.library import standard_library
from repro.core.parser import parse_topology
from repro.core.topology import Arbitrate, Leaf, Override

#: Components that read a history register need latency >= 2 (Fig. 2).
_HISTORY_BASES = ("GSHARE", "GBIM", "LBIM", "PSHARE", "GSELECT", "GTAG", "TAGE")
#: PC-only components may respond in a single cycle.
_FAST_BASES = ("BIM", "BTB", "UBTB")


def equivalent(a, b):
    """Structural equality: node kind, component base name, latency."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Leaf):
        pair = (a.component, b.component)
    elif isinstance(a, Override):
        pair = (a.hi, b.hi)
        if not equivalent(a.lo, b.lo):
            return False
    elif isinstance(a, Arbitrate):
        pair = (a.selector, b.selector)
        if len(a.children) != len(b.children):
            return False
        if not all(equivalent(x, y) for x, y in zip(a.children, b.children)):
            return False
    else:  # pragma: no cover - no other node kinds exist
        raise AssertionError(f"unknown node type {type(a)!r}")
    lhs, rhs = pair
    return lhs.base_name == rhs.base_name and lhs.latency == rhs.latency


def random_spec(rng, depth=0):
    """A random well-formed topology spec in paper notation."""

    def unit():
        if rng.random() < 0.4:
            return f"{rng.choice(_FAST_BASES)}{rng.randint(1, 4)}"
        return f"{rng.choice(_HISTORY_BASES)}{rng.randint(2, 4)}"

    roll = rng.random()
    if depth < 2 and roll < 0.25:
        # TOURNEY takes exactly two predict_in inputs, so exactly two
        # children; it must be at least as slow as what it arbitrates.
        children = ", ".join(random_spec(rng, depth + 1) for _ in range(2))
        return f"TOURNEY{rng.randint(2, 4)} > [{children}]"
    if depth < 3 and roll < 0.75:
        return f"{unit()} > {random_spec(rng, depth + 1)}"
    return unit()


class TestPresetRoundTrip:
    @pytest.mark.parametrize("name", presets.PRESET_NAMES)
    def test_preset_describe_reparses_equivalently(self, name):
        predictor = presets.build(name)
        library = standard_library(fetch_width=predictor.config.fetch_width)
        reparsed = parse_topology(predictor.topology.describe(), library)
        assert equivalent(reparsed, predictor.topology)
        assert reparsed.describe() == predictor.topology.describe()


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_topologies_round_trip(self, seed):
        rng = random.Random(0xC0B7A ^ seed)
        library = standard_library()
        spec = random_spec(rng)
        node = parse_topology(spec, library)
        notation = node.describe()
        reparsed = parse_topology(notation, standard_library())
        assert equivalent(reparsed, node), (
            f"spec {spec!r} described as {notation!r} did not round-trip"
        )
        # describe() is a fixed point: a second round adds nothing.
        assert reparsed.describe() == notation

    def test_equivalence_is_discriminating(self):
        library = standard_library()
        a = parse_topology("BIM2 > BTB2", library)
        b = parse_topology("BIM3 > BTB2", standard_library())
        c = parse_topology("GBIM2 > BTB2", standard_library())
        assert not equivalent(a, b)  # latency differs
        assert not equivalent(a, c)  # base name differs
        assert not equivalent(a, Leaf(next(a.components())))  # kind differs
