"""Direct coverage of eval/profiler.py and eval/metrics.py."""

import pytest

from repro.eval.metrics import RunResult, arithmetic_mean, harmonic_mean
from repro.eval.profiler import (
    AttributedSite,
    coverage,
    format_attribution,
    format_profile,
    site_attribution,
    top_offenders,
)
from repro.frontend.core import CoreStats
from repro.isa.program import Program
from repro.isa.instructions import Instruction, Opcode


def _stats(mispredicts, executions=None):
    stats = CoreStats()
    stats.mispredicts_by_pc = dict(mispredicts)
    stats.executions_by_pc = dict(executions or {})
    return stats


class TestMeans:
    def test_harmonic_mean_basic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8.0 / 3.0)

    def test_harmonic_mean_dominated_by_smallest(self):
        values = [0.1, 10.0, 10.0, 10.0]
        assert harmonic_mean(values) < arithmetic_mean(values)

    def test_harmonic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_harmonic_mean_rejects_zero(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_harmonic_mean_rejects_negative(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    def test_harmonic_mean_consumes_generators(self):
        assert harmonic_mean(v for v in (2.0, 2.0)) == pytest.approx(2.0)

    def test_arithmetic_mean_basic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([0.0]) == 0.0

    def test_arithmetic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_from_stats_copies_all_fields(self):
        stats = CoreStats(
            cycles=100,
            committed_instructions=200,
            committed_branches=40,
            branch_mispredicts=4,
        )
        result = RunResult.from_stats("sys", "wl", stats)
        assert result.cycles == 100
        assert result.mpki == pytest.approx(20.0)
        assert result.branch_accuracy == pytest.approx(0.9)
        assert result.stats is stats
        assert result.telemetry is None


class TestTopOffenders:
    def test_ordering_is_by_absolute_mispredicts(self):
        stats = _stats({10: 3, 20: 9, 30: 6}, {10: 100, 20: 10, 30: 60})
        pcs = [r.pc for r in top_offenders(stats)]
        assert pcs == [20, 30, 10]

    def test_limit_truncates(self):
        stats = _stats({pc: pc for pc in range(1, 30)})
        assert len(top_offenders(stats, limit=5)) == 5
        worst = top_offenders(stats, limit=1)[0]
        assert worst.pc == 29

    def test_executions_fall_back_to_miss_count(self):
        stats = _stats({7: 4})
        report = top_offenders(stats)[0]
        assert report.executions == 4
        assert report.mispredict_rate == 1.0

    def test_zero_executions_rate(self):
        from repro.eval.profiler import SiteReport

        assert SiteReport(0, 0, 0, "").mispredict_rate == 0.0

    def test_instruction_text_from_program(self):
        program = Program(
            name="p",
            instructions=[Instruction(Opcode.BEQ, rs1=1, imm=2)],
            entry=0,
        )
        report = top_offenders(_stats({0: 1}), program)[0]
        assert report.instruction != ""

    def test_unknown_pc_renders_question_mark(self):
        program = Program(name="p", instructions=[], entry=0)
        report = top_offenders(_stats({99: 1}), program)[0]
        assert report.instruction == "?"


class TestCoverage:
    def test_no_mispredicts(self):
        assert coverage(_stats({})) == 0.0

    def test_concentrated(self):
        stats = _stats({1: 98, 2: 1, 3: 1})
        assert coverage(stats, top_n=1) == pytest.approx(0.98)

    def test_diffuse(self):
        stats = _stats({pc: 1 for pc in range(100)})
        assert coverage(stats, top_n=5) == pytest.approx(0.05)

    def test_top_n_larger_than_sites(self):
        stats = _stats({1: 2, 2: 2})
        assert coverage(stats, top_n=10) == pytest.approx(1.0)


class TestFormatProfile:
    def test_empty(self):
        assert "no mispredicts" in format_profile(_stats({}))

    def test_contains_rows_and_coverage(self):
        stats = _stats({10: 3, 20: 9}, {10: 30, 20: 90})
        text = format_profile(stats)
        assert "10" in text and "20" in text
        assert "coverage" in text


class TestSiteAttribution:
    PAYLOAD = {
        "sites": {
            "10": {"tage": [90, 2], "(none)": [0, 1]},
            "20": {"bim": [10, 8]},
            "30": {"tage": [50, 0]},
        }
    }

    def test_ranked_by_wrong_count(self):
        sites = site_attribution(self.PAYLOAD)
        assert [s.pc for s in sites] == [20, 10, 30]

    def test_limit(self):
        assert len(site_attribution(self.PAYLOAD, limit=1)) == 1

    def test_counts_aggregate_providers(self):
        site = site_attribution(self.PAYLOAD)[1]
        assert site.pc == 10
        assert site.right == 90
        assert site.wrong == 3
        assert site.worst_provider() == "tage"

    def test_worst_provider_none_when_clean(self):
        site = site_attribution(self.PAYLOAD)[2]
        assert site.wrong == 0
        assert site.worst_provider() is None
        assert AttributedSite(pc=0).worst_provider() is None

    def test_format_attribution(self):
        text = format_attribution(self.PAYLOAD)
        assert "bim" in text and "tage" in text
        assert "30" not in text.split("\n", 1)[1]  # clean site filtered out

    def test_format_attribution_empty(self):
        assert "no attributed" in format_attribution({"sites": {}})
        assert "no attributed" in format_attribution({})
