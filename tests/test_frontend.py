"""End-to-end tests of the host-core model."""

import pytest

from repro import presets
from repro.frontend import Core, CoreConfig
from repro.frontend.caches import DataCacheModel
from repro.frontend.config import CacheConfig
from repro.frontend.oracle import OracleStream
from repro.isa import ProgramBuilder, run_program


def simple_loop(n=50, name="loop"):
    b = ProgramBuilder(name)
    b.li(1, 0)
    b.li(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


def run(program, preset="b2", config=None, **kwargs):
    core = Core(program, presets.build(preset), config or CoreConfig())
    return core.run(**kwargs)


class TestArchitecturalCorrectness:
    """The speculative core must commit exactly the oracle's stream."""

    @pytest.mark.parametrize("preset", ["tage_l", "b2", "tourney"])
    def test_commits_match_oracle(self, preset):
        program = simple_loop(60)
        oracle_len = len(run_program(program))
        stats = run(program, preset)
        assert stats.committed_instructions == oracle_len

    def test_call_ret_program(self):
        b = ProgramBuilder("callret")
        b.li(5, 0)
        b.li(6, 20)
        b.label("main")
        b.call("leaf")
        b.addi(5, 5, 1)
        b.blt(5, 6, "main")
        b.halt()
        b.label("leaf")
        b.addi(7, 7, 1)
        b.ret()
        program = b.build()
        oracle_len = len(run_program(program))
        stats = run(program, "tage_l")
        assert stats.committed_instructions == oracle_len

    def test_indirect_jump_program(self):
        b = ProgramBuilder("indirect")
        b.li(1, 0)
        b.li(2, 12)
        b.label("top")
        b.andi(3, 1, 1)
        b.li(4, 0)
        b.beq(3, 4, "even")
        b.li(5, 20)
        b.jalr(5)
        b.label("even")
        b.addi(6, 6, 1)
        b.label("join")
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        while b.pc < 20:
            b.nop()
        b.jump("join")  # pc 20
        program = b.build()
        oracle_len = len(run_program(program))
        stats = run(program)
        assert stats.committed_instructions == oracle_len
        assert stats.target_mispredicts >= 1  # first indirect is unknown

    def test_branch_counts_match_oracle(self):
        program = simple_loop(40)
        trace = run_program(program)
        oracle_branches = sum(1 for r in trace if r.instr.is_cond_branch)
        stats = run(program)
        assert stats.committed_branches == oracle_branches


class TestPredictionQuality:
    def test_warm_loop_nearly_perfect(self):
        stats = run(simple_loop(400), "tage_l")
        # One hard exit mispredict, a handful of warmup misses.
        assert stats.branch_mispredicts <= 8

    def test_unpredictable_branch_mispredicts(self):
        b = ProgramBuilder("lcg")
        b.li(1, 0)
        b.li(2, 64)
        b.li(7, 12345)
        b.li(8, 6364136223846793005)
        b.li(9, 33)
        b.label("top")
        b.mul(7, 7, 8)
        b.addi(7, 7, 99)
        b.shr(3, 7, 9)
        b.andi(3, 3, 1)
        b.beq(3, 0, "skip")
        b.addi(4, 4, 1)
        b.label("skip")
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        stats = run(b.build(), "tage_l")
        assert stats.branch_mispredicts >= 15  # ~50% of 64 hard branches

    def test_ipc_positive_and_bounded(self):
        stats = run(simple_loop(200), "tage_l")
        assert 0.1 < stats.ipc <= 4.0


class TestLatencyEffects:
    def test_ubtb_reduces_taken_branch_bubbles(self):
        """TAGE-L's 1-cycle uBTB should beat B2 (no stage-1 component) on a
        tight taken loop."""
        program = simple_loop(300)
        cycles_tage = run(program, "tage_l").cycles
        cycles_b2 = run(program, "b2").cycles
        assert cycles_tage < cycles_b2

    def test_stage_redirects_recorded(self):
        stats = run(simple_loop(100), "b2")
        assert sum(stats.stage_redirects.values()) > 0


class TestConfigChecks:
    def test_fetch_width_mismatch_rejected(self):
        program = simple_loop(10)
        predictor = presets.build("b2", fetch_width=2)
        with pytest.raises(ValueError, match="fetch width"):
            Core(program, predictor, CoreConfig(fetch_width=4))

    def test_max_cycles_stops(self):
        stats = run(simple_loop(10_000), max_cycles=200)
        assert stats.cycles <= 201

    def test_max_instructions_stops(self):
        stats = run(simple_loop(10_000), max_instructions=500)
        assert stats.committed_instructions >= 500
        assert stats.committed_instructions < 1200


class TestSerializedFetch:
    def test_serialization_costs_cycles(self):
        """§I: serializing fetch behind branches reduces IPC.

        The cost appears on packets containing *not-taken* branches, which
        a superscalar predictor sails past but a serialized fetch cuts at.
        """
        b = ProgramBuilder("dense")
        b.li(1, 0)
        b.li(2, 300)
        b.li(3, -1)
        b.label("top")
        b.beq(1, 3, "never")  # never taken
        b.addi(4, 4, 1)
        b.beq(1, 3, "never")  # never taken
        b.addi(5, 5, 1)
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.label("never")
        b.halt()
        program = b.build()
        normal = Core(program, presets.build("tage_l"), CoreConfig()).run()
        serial_pred = presets.build("tage_l", serialize_cfi=True)
        serial = Core(program, serial_pred, CoreConfig()).run()
        assert serial.ipc < 0.9 * normal.ipc


class TestSfb:
    def _hammock_program(self, n=200):
        b = ProgramBuilder("hammock")
        b.li(1, 0)
        b.li(2, n)
        b.li(7, 9973)
        b.li(8, 6364136223846793005)
        b.li(9, 40)
        b.label("top")
        b.mul(7, 7, 8)
        b.addi(7, 7, 7)
        b.shr(3, 7, 9)
        b.andi(3, 3, 1)
        b.beq(3, 0, "skip")  # short forward branch over 2 ALU ops
        b.addi(4, 4, 1)
        b.xori(4, 4, 3)
        b.label("skip")
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        return b.build()

    def test_sfb_eliminates_hammock_mispredicts(self):
        program = self._hammock_program()
        base = Core(program, presets.build("tage_l"), CoreConfig()).run()
        sfb = Core(
            program, presets.build("tage_l"), CoreConfig(sfb_enabled=True)
        ).run()
        assert base.branch_mispredicts > 40
        assert sfb.branch_mispredicts < base.branch_mispredicts / 4
        assert sfb.sfb_converted > 0
        # Predicated shadow work commits as no-ops.
        assert sfb.committed_predicated > 0
        assert sfb.ipc > base.ipc

    def test_sfb_does_not_change_architectural_count(self):
        program = self._hammock_program(100)
        oracle_len = len(run_program(program))
        sfb = Core(
            program, presets.build("tage_l"), CoreConfig(sfb_enabled=True)
        ).run()
        assert sfb.committed_instructions == oracle_len

    def test_sfb_detection_requires_clean_shadow(self):
        b = ProgramBuilder("dirty")
        b.li(1, 0)
        b.beq(1, 0, "target")
        b.call("target")  # CFI in shadow: not an SFB
        b.label("target")
        b.halt()
        core = Core(b.build(), presets.build("b2"), CoreConfig(sfb_enabled=True))
        assert core._sfb_pcs == frozenset()


class TestCaches:
    def test_lru_hit_after_access(self):
        cache = DataCacheModel(CacheConfig())
        assert cache.load_penalty(100) > 0  # cold miss
        assert cache.load_penalty(100) == 0  # now hot

    def test_same_line_hits(self):
        cache = DataCacheModel(CacheConfig(line_words=8))
        cache.load_penalty(64)
        assert cache.load_penalty(65) == 0

    def test_l2_catches_l1_evictions(self):
        config = CacheConfig(l1_sets=2, l1_ways=1, l2_sets=64, l2_ways=8)
        cache = DataCacheModel(config)
        cache.load_penalty(0)
        cache.load_penalty(16)  # same L1 set (2 sets, line 8): evicts 0
        penalty = cache.load_penalty(0)
        assert penalty == config.l2_hit_penalty

    def test_stats_counted(self):
        cache = DataCacheModel(CacheConfig())
        cache.load_penalty(0)
        cache.load_penalty(0)
        assert cache.stats.accesses == 2
        assert cache.stats.l1_misses == 1


class TestOracle:
    def test_get_and_trim(self):
        program = simple_loop(5)
        oracle = OracleStream(program)
        first = oracle.get(0)
        assert first.pc == 0
        tenth = oracle.get(9)
        oracle.trim(5)
        assert oracle.get(5) is not None
        with pytest.raises(IndexError):
            oracle.get(2)

    def test_end_returns_none(self):
        oracle = OracleStream(simple_loop(2))
        assert oracle.get(10_000) is None

    def test_rewind_supported_until_trim(self):
        oracle = OracleStream(simple_loop(5))
        a = oracle.get(3)
        oracle.get(8)
        assert oracle.get(3) is a
