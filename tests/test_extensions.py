"""Tests for the extension features: path history, the energy model,
branch-trace capture, and the command-line interface."""

import numpy as np
import pytest

from repro import presets
from repro.cli import main as cli_main
from repro.components.library import standard_library
from repro.core import ComposerConfig, PreDecodedSlot, compose
from repro.core.history import PathHistoryProvider
from repro.eval import run_workload
from repro.synthesis import EnergyModel
from repro.workloads import build_specint, capture_trace
from repro.workloads.traces import BranchTrace, TYPE_COND, TYPE_CALL
from repro.isa import ProgramBuilder


class TestPathHistoryProvider:
    def test_folds_taken_targets(self):
        path = PathHistoryProvider(history_bits=16, pc_bits=4)
        path.speculate_taken(0b1011)
        path.speculate_taken(0b0110)
        assert path.read() == 0b1011_0110

    def test_not_affected_by_other_bits(self):
        path = PathHistoryProvider(history_bits=8, pc_bits=4)
        path.speculate_taken(0xF3)
        assert path.read() == 0x3

    def test_restore(self):
        path = PathHistoryProvider(history_bits=16)
        path.speculate_taken(5)
        snap = path.read()
        path.speculate_taken(9)
        path.restore(snap)
        assert path.read() == snap

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            PathHistoryProvider(history_bits=0)


class TestPathHistoryComposition:
    def _pshare(self):
        library = standard_library(global_history_bits=32)
        return compose("PSHARE2 > BTB2", library,
                       ComposerConfig(global_history_bits=32))

    def test_pshare_component_declares_usage(self):
        pred = self._pshare()
        assert any(getattr(c, "uses_path_history", False) for c in pred.components)
        assert pred._path is not None

    def test_path_history_advances_on_taken_cfi(self):
        pred = self._pshare()
        jal = PreDecodedSlot(is_jal=True, direct_target=20)
        result = pred.predict(0, [jal] + [PreDecodedSlot()] * 3)
        assert pred._path.read() != 0
        pred.commit_packet(result.ftq_id)

    def test_path_history_repaired_on_mispredict(self):
        pred = self._pshare()
        br = PreDecodedSlot(is_cond_branch=True, direct_target=40)
        result = pred.predict(0, [br] + [PreDecodedSlot()] * 3)
        snapshot = pred.history_file.get(result.ftq_id).phist_snapshot
        predicted = result.final.slots[0].taken
        # Pollute with younger packets then mispredict.
        pred.predict(4, [PreDecodedSlot()] * 4)
        pred.resolve_mispredict(result.ftq_id, 0, not predicted,
                                40 if not predicted else None)
        expected = snapshot
        if not predicted:  # corrected to taken: fold the target
            probe = PathHistoryProvider(pred._path.history_bits,
                                        pred._path.pc_bits)
            probe.restore(snapshot)
            probe.speculate_taken(40)
            expected = probe.read()
        assert pred._path.read() == expected

    def test_pshare_runs_end_to_end(self):
        program = build_specint("xz", scale=0.15)
        result = run_workload(self._pshare(), program, system_name="pshare")
        assert result.instructions > 0

    def test_b2_has_no_path_provider(self):
        assert presets.b2()._path is None


class TestEnergyModel:
    def test_energy_accumulates_with_activity(self):
        program = build_specint("xz", scale=0.15)
        predictor = presets.build("b2")
        model = EnergyModel()
        assert model.total_energy(predictor) == 0.0
        run_workload(predictor, program)
        assert model.total_energy(predictor) > 0.0

    def test_big_design_costs_more(self):
        program = build_specint("xz", scale=0.15)
        energies = {}
        for name in ("b2", "tage_l"):
            predictor = presets.build(name)
            result = run_workload(predictor, program)
            energies[name] = EnergyModel().energy_per_instruction(
                predictor, result.instructions
            )
        assert energies["tage_l"] > energies["b2"]

    def test_meta_energy_counted(self):
        program = build_specint("xz", scale=0.1)
        predictor = presets.build("b2")
        run_workload(predictor, program)
        components = EnergyModel().component_energy(predictor)
        assert components["meta"] > 0

    def test_epi_requires_instructions(self):
        with pytest.raises(ValueError):
            EnergyModel().energy_per_instruction(presets.build("b2"), 0)


class TestTraces:
    def _program(self):
        b = ProgramBuilder("t")
        b.li(1, 0)
        b.li(2, 10)
        b.label("top")
        b.call("leaf")
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        b.label("leaf")
        b.ret()
        return b.build()

    def test_capture_counts_transfers(self):
        trace = capture_trace(self._program())
        cond = (trace.types == TYPE_COND).sum()
        calls = (trace.types == TYPE_CALL).sum()
        assert cond == 10
        assert calls == 10
        assert trace.instruction_count > 0

    def test_taken_flags(self):
        trace = capture_trace(self._program())
        cond_taken = trace.taken[trace.types == TYPE_COND]
        assert cond_taken.sum() == 9  # last back-edge falls through

    def test_save_load_roundtrip(self, tmp_path):
        trace = capture_trace(self._program())
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = BranchTrace.load(path)
        assert np.array_equal(loaded.pcs, trace.pcs)
        assert np.array_equal(loaded.taken, trace.taken)
        assert loaded.instruction_count == trace.instruction_count

    def test_characterization_fields(self):
        stats = capture_trace(self._program()).characterize()
        assert 0 < stats["branch_density"] < 1
        assert 0 <= stats["taken_rate"] <= 1
        assert stats["static_cond_sites"] == 1
        assert stats["call_ret_share"] > 0


class TestCli:
    def test_topology_command(self, capsys):
        assert cli_main(["topology", "GTAG3 > BTB2 > BIM2"]) == 0
        out = capsys.readouterr().out
        assert "depth:     3" in out
        assert "gtag" in out

    def test_storage_command(self, capsys):
        assert cli_main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "tage_l" in out and "KiB" in out

    def test_run_command(self, capsys):
        assert cli_main([
            "run", "--predictor", "b2", "--workload", "dhrystone",
            "--scale", "0.1", "--energy",
        ]) == 0
        out = capsys.readouterr().out
        assert "IPC=" in out and "pJ/instruction" in out

    def test_run_with_topology_string(self, capsys):
        assert cli_main([
            "run", "--predictor", "GSHARE2 > BTB2", "--workload", "xz",
            "--scale", "0.1",
        ]) == 0
        assert "IPC=" in capsys.readouterr().out

    def test_area_command(self, capsys):
        assert cli_main(["area", "--predictor", "tourney"]) == 0
        out = capsys.readouterr().out
        assert "share of core area" in out

    def test_sweep_command(self, capsys):
        assert cli_main([
            "sweep", "--predictors", "b2", "--workloads", "xz",
            "--scale", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "MPKI:" in out and "IPC:" in out
